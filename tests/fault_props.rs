//! Property-based tests of the fault-injection invariants, exercised
//! end-to-end through all three RSIN classes (shared bus, crossbar,
//! Omega) plus the centralized baseline:
//!
//! * **conservation** — no task is silently lost: every arrival is either
//!   completed, still queued, or still in flight when the run ends, under
//!   arbitrary stochastic fail/repair schedules;
//! * **counter monotonicity** — a repair is only ever recorded against an
//!   earlier failure;
//! * **capacity restoration** — failing and repairing every resource pool
//!   and element leaves the network able to hold exactly as many
//!   simultaneous allocations as a never-faulted twin.

use rsin::core::{simulate_faulty, FaultOptions, ResourceNetwork, SimError, SimOptions, Workload};
use rsin::des::{FaultPlan, FaultTarget, SimRng, StochasticFault};
use rsin::omega::{Admission, CentralOmegaNetwork, OmegaNetwork};
use rsin::sbus::{Arbitration, SharedBusNetwork};
use rsin::xbar::{CrossbarNetwork, CrossbarPolicy};
use rsin_minicheck::{check, Gen};

/// Builds one randomly sized network of each class.
fn build_networks(g: &mut Gen) -> Vec<Box<dyn ResourceNetwork>> {
    let sbus = SharedBusNetwork::new(
        g.usize_in(1, 3),
        g.usize_in(1, 4),
        g.u32_in(1, 3),
        Arbitration::FixedPriority,
    );
    let xbar = CrossbarNetwork::new(
        g.usize_in(1, 2),
        g.usize_in(1, 4),
        g.usize_in(1, 4),
        g.u32_in(1, 3),
        CrossbarPolicy::FixedPriority,
    );
    let omega = OmegaNetwork::new(
        g.usize_in(1, 2),
        1 << g.u32_in(1, 3),
        g.u32_in(1, 2),
        Admission::Simultaneous,
    );
    let central =
        CentralOmegaNetwork::new(1 << g.u32_in(1, 3), g.u32_in(1, 2)).expect("power of two");
    vec![
        Box::new(sbus),
        Box::new(xbar),
        Box::new(omega),
        Box::new(central),
    ]
}

/// A stochastic plan hitting a random subset of resources and elements.
fn random_plan(g: &mut Gen, net: &dyn ResourceNetwork) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let processes = g.usize_in(1, 3);
    for _ in 0..processes {
        let target = if g.bool() && net.fault_elements() > 0 {
            FaultTarget::Element(g.usize_in(0, net.fault_elements()))
        } else {
            FaultTarget::Resource(g.usize_in(0, net.total_resources()))
        };
        plan = plan.stochastic(StochasticFault {
            target,
            mtbf: g.f64_in(0.5, 5.0),
            mttr: g.f64_in(0.1, 2.0),
        });
    }
    plan
}

/// How many allocations the network can hold at once: grant and complete
/// transmissions until nothing more is grantable. A healthy network ends
/// with every reachable resource busy.
fn saturate(net: &mut dyn ResourceNetwork, seed: u64) -> usize {
    let mut rng = SimRng::new(seed);
    let p = net.processors();
    let mut total = 0;
    loop {
        let grants = net.request_cycle(&vec![true; p], &mut rng);
        if grants.is_empty() {
            break;
        }
        for grant in grants {
            net.end_transmission(grant);
            total += 1;
        }
        assert!(total <= net.total_resources(), "over-allocation");
    }
    total
}

#[test]
fn no_task_is_silently_lost_under_stochastic_faults() {
    check(24, |g| {
        let seed = g.u64();
        for mut net in build_networks(g) {
            let plan = random_plan(g, net.as_ref());
            let workload = Workload::new(g.f64_in(0.05, 0.4) * net.processors() as f64, 10.0, 1.0)
                .expect("valid workload");
            let opts = SimOptions {
                warmup_tasks: 50,
                measured_tasks: 400,
            };
            let mut rng = SimRng::new(seed);
            match simulate_faulty(
                net.as_mut(),
                &workload,
                &opts,
                &plan,
                &FaultOptions::default(),
                &mut rng,
            ) {
                Ok(report) => {
                    assert_eq!(
                        report.arrivals,
                        report.completions + report.queued_at_end + report.in_flight_at_end,
                        "{}: task conservation",
                        net.label()
                    );
                }
                Err(SimError::Stalled { queued, .. }) => {
                    // The watchdog fired instead of hanging: acceptable for
                    // fault schedules that starve the system, but a stall
                    // must have stranded work by definition.
                    assert!(queued > 0, "{}: stall implies queued work", net.label());
                }
            }
        }
    });
}

#[test]
fn fault_counters_never_record_more_repairs_than_failures() {
    check(24, |g| {
        let seed = g.u64();
        for mut net in build_networks(g) {
            let plan = random_plan(g, net.as_ref());
            let workload = Workload::new(0.2 * net.processors() as f64, 10.0, 1.0).expect("valid");
            let opts = SimOptions {
                warmup_tasks: 20,
                measured_tasks: 200,
            };
            let mut rng = SimRng::new(seed);
            let _ = simulate_faulty(
                net.as_mut(),
                &workload,
                &opts,
                &plan,
                &FaultOptions::default(),
                &mut rng,
            );
            let c = net.take_counters();
            assert!(
                c.resource_repairs <= c.resource_failures,
                "{}: resource repairs {} > failures {}",
                net.label(),
                c.resource_repairs,
                c.resource_failures
            );
            assert!(
                c.element_repairs <= c.element_failures,
                "{}: element repairs {} > failures {}",
                net.label(),
                c.element_repairs,
                c.element_failures
            );
        }
    });
}

#[test]
fn repair_restores_pre_fault_capacity() {
    check(24, |g| {
        let seed = g.u64();
        let mut fresh = build_networks(g);
        // Rebuild identical twins: Gen is deterministic per case, so replay
        // the same dimension draws by saving them via a second pass is not
        // possible — instead, fail/repair the *same* instance and compare
        // against its own pre-fault saturation measured on the twin below.
        for net in &mut fresh {
            let net = net.as_mut();
            // Measure healthy capacity first (leaves resources busy), then
            // drain by ending every service.
            let healthy = saturate(net, seed);
            // Knock everything over, then repair everything.
            for port in 0..net.total_resources() {
                net.fail_resource(port);
            }
            for e in 0..net.fault_elements() {
                net.fail_element(e);
            }
            for port in 0..net.total_resources() {
                net.repair_resource(port);
            }
            for e in 0..net.fault_elements() {
                net.repair_element(e);
            }
            // Failing every pool cleared all the busy counts, so the
            // repaired network starts idle: it must saturate to exactly
            // the healthy capacity again.
            let repaired = saturate(net, seed);
            assert_eq!(
                healthy,
                repaired,
                "{}: capacity after full fail/repair cycle",
                net.label()
            );
        }
    });
}

#[test]
fn scripted_total_outage_and_recovery_round_trips() {
    // Deterministic end-to-end: kill every pool early, repair midway; the
    // run must complete (no stall) and conserve tasks.
    check(12, |g| {
        let seed = g.u64();
        for mut net in build_networks(g) {
            let mut plan = FaultPlan::new();
            for port in 0..net.total_resources() {
                plan = plan
                    .fail_at(rsin::des::SimTime::new(0.5), FaultTarget::Resource(port))
                    .repair_at(rsin::des::SimTime::new(2.0), FaultTarget::Resource(port));
            }
            let workload = Workload::new(0.1 * net.processors() as f64, 10.0, 1.0).expect("valid");
            let opts = SimOptions {
                warmup_tasks: 20,
                measured_tasks: 300,
            };
            let mut rng = SimRng::new(seed);
            let report = simulate_faulty(
                net.as_mut(),
                &workload,
                &opts,
                &plan,
                &FaultOptions::default(),
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("{}: outage with repair must recover: {e}", net.label()));
            assert_eq!(
                report.arrivals,
                report.completions + report.queued_at_end + report.in_flight_at_end,
                "{}: task conservation through outage",
                net.label()
            );
        }
    });
}
