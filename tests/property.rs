//! Property-based tests over the core data structures and invariants,
//! spanning several crates through the umbrella API.

use rsin::core::SystemConfig;
use rsin::des::stats::{Histogram, Welford};
use rsin::des::{Calendar, SimRng, SimTime};
use rsin::omega::{Admission, OmegaState};
use rsin::topology::{log2_exact, shuffle, unshuffle, Link, Multistage, OmegaTopology};
use rsin_minicheck::check;

/// Formatting and parsing a configuration is the identity.
#[test]
fn config_display_parse_roundtrip() {
    check(256, |g| {
        let i = g.u32_in(1, 8);
        let j_exp = g.u32_in(0, 4);
        let kind = g.u32_in(0, 4);
        let r = g.u32_in(1, 9);
        let j = 1u32 << j_exp;
        let (kind_tok, k) = match kind {
            0 => ("SBUS", 1),
            1 => ("XBAR", j * 2),
            2 if j >= 2 => ("OMEGA", j),
            _ if j >= 2 => ("CUBE", j),
            _ => ("SBUS", 1),
        };
        let s = format!("{}/{}x{}x{} {}/{}", i * j, i, j, k, kind_tok, r);
        let cfg: SystemConfig = s.parse().expect("constructed to be valid");
        assert_eq!(cfg.to_string(), s);
        assert_eq!(cfg.processors(), i * j);
        assert_eq!(cfg.total_resources(), i * k * r);
    });
}

/// The perfect shuffle is a bijection and unshuffle inverts it.
#[test]
fn shuffle_bijection() {
    check(256, |g| {
        let bits = g.u32_in(1, 10);
        let n = 1usize << bits;
        let w = g.usize_in(0, 1024) % n;
        assert_eq!(unshuffle(bits, shuffle(bits, w)), w);
        assert!(shuffle(bits, w) < n);
    });
}

/// log2_exact answers exactly the powers of two.
#[test]
fn log2_exact_consistent() {
    check(256, |g| {
        let n = g.usize_in(1, 100_000);
        match log2_exact(n) {
            Some(b) => assert_eq!(1usize << b, n),
            None => assert!(!n.is_power_of_two()),
        }
    });
}

/// Welford merge is equivalent to sequential accumulation.
#[test]
fn welford_merge_matches_sequential() {
    check(256, |g| {
        let xs = g.vec_f64(-1e6, 1e6, 1, 200);
        let split = g.usize_in(0, 200) % (xs.len() + 1);
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        assert!(
            (a.sample_variance() - all.sample_variance()).abs()
                <= 1e-5 * (1.0 + all.sample_variance().abs())
        );
    });
}

/// K-way Welford shard merge is order-insensitive: observations scattered
/// over K shards in *interleaved* order (the broker's per-thread shard
/// pattern, not a contiguous split) merge to exactly the single-stream
/// accumulator.
#[test]
fn welford_interleaved_shard_merge_matches_single_stream() {
    check(256, |g| {
        let k = g.usize_in(2, 6);
        let xs = g.vec_f64(-1e6, 1e6, 1, 300);
        let mut all = Welford::new();
        let mut shards = vec![Welford::new(); k];
        for &x in &xs {
            all.push(x);
            shards[g.usize_in(0, k - 1)].push(x);
        }
        let mut merged = Welford::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.min(), all.min(), "min is exact under merge");
        assert_eq!(merged.max(), all.max(), "max is exact under merge");
        assert!((merged.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        assert!(
            (merged.sample_variance() - all.sample_variance()).abs()
                <= 1e-5 * (1.0 + all.sample_variance().abs())
        );
    });
}

/// K-way Histogram shard merge on interleaved observations is *exactly*
/// the single-stream histogram: same total, overflow, every bin, and
/// therefore every quantile (counts are integers — no tolerance).
#[test]
fn histogram_interleaved_shard_merge_matches_single_stream() {
    check(256, |g| {
        let k = g.usize_in(2, 6);
        let bins = g.usize_in(1, 32);
        let upper = g.f64_in(0.5, 100.0);
        // Range straddles the upper bound so the overflow bin is exercised,
        // and dips slightly negative to exercise the clamp-to-bin-0 path.
        let xs = g.vec_f64(-1.0, 1.5 * upper, 1, 300);
        let mut all = Histogram::new(bins, upper);
        let mut shards = vec![Histogram::new(bins, upper); k];
        for &x in &xs {
            all.record(x);
            shards[g.usize_in(0, k - 1)].record(x);
        }
        let mut merged = Histogram::new(bins, upper);
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.overflow(), all.overflow());
        for i in 0..bins {
            assert_eq!(merged.bin_count(i), all.bin_count(i), "bin {i}");
        }
        for q in [0.25, 0.5, 0.9] {
            assert_eq!(merged.quantile(q), all.quantile(q), "q = {q}");
        }
    });
}

/// The calendar delivers events in nondecreasing time order regardless
/// of insertion order.
#[test]
fn calendar_is_time_ordered() {
    check(256, |g| {
        let times = g.vec_f64(0.0, 1e6, 1, 100);
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::new(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((t, _)) = cal.pop() {
            assert!(t >= last);
            last = t;
            seen += 1;
        }
        assert_eq!(seen, times.len());
    });
}

/// Omega destination-tag routes always terminate at their destination
/// and use exactly one link per stage.
#[test]
fn omega_routes_are_well_formed() {
    check(256, |g| {
        let bits = g.u32_in(1, 7);
        let n = 1usize << bits;
        let src = g.usize_in(0, 64) % n;
        let dst = g.usize_in(0, 64) % n;
        let net = OmegaTopology::new(n).expect("power of two");
        let route = net.route(src, dst);
        assert_eq!(route.links.len(), bits as usize);
        assert_eq!(route.links.last().expect("nonempty").wire, dst);
        for (k, l) in route.links.iter().enumerate() {
            assert_eq!(l.stage as usize, k);
            assert!(l.wire < n);
        }
    });
}

/// Resolver invariants on random scenarios: grants never exceed
/// min(requests, free resources), every granted port was free, circuits
/// never share links, and resolution is deterministic.
#[test]
fn omega_resolver_invariants() {
    check(256, |g| {
        let bits = g.u32_in(1, 5);
        let req_mask = g.u64();
        let busy_mask = g.u64();
        let n = 1usize << bits;
        let requesters: Vec<usize> = (0..n).filter(|&i| req_mask >> i & 1 == 1).collect();
        let busy: Vec<usize> = (0..n).filter(|&i| busy_mask >> i & 1 == 1).collect();

        let build = || {
            let mut net = OmegaState::new(n, 1).expect("power of two");
            for &b in &busy {
                net.occupy_resource(b);
            }
            net
        };
        let mut net = build();
        let res = net.resolve(&requesters, Admission::Simultaneous);

        let free = n - busy.len();
        assert!(res.granted.len() <= requesters.len().min(free));
        let mut used_ports: Vec<usize> = res.granted.iter().map(|c| c.port).collect();
        used_ports.sort_unstable();
        let before = used_ports.len();
        used_ports.dedup();
        assert_eq!(before, used_ports.len(), "ports granted at most once");
        for p in &used_ports {
            assert!(!busy.contains(p), "granted port {p} was busy");
        }
        let mut links: Vec<Link> = res
            .granted
            .iter()
            .flat_map(|c| c.links.iter().copied())
            .collect();
        let total = links.len();
        links.sort_unstable();
        links.dedup();
        assert_eq!(total, links.len(), "links are exclusive");
        assert_eq!(
            res.granted.len() + res.rejected.len() + res.not_submitted.len(),
            requesters.len(),
            "every request is accounted for"
        );

        // Determinism.
        let mut net2 = build();
        let res2 = net2.resolve(&requesters, Admission::Simultaneous);
        assert_eq!(res, res2);
    });
}

/// The SimRng exponential sampler is always positive and finite.
#[test]
fn exponential_samples_valid() {
    check(256, |g| {
        let seed = g.u64();
        let rate = g.f64_in(0.001, 1000.0);
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            let x = rng.exponential(rate);
            assert!(x.is_finite() && x >= 0.0);
        }
    });
}
