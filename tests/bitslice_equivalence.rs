//! Umbrella byte-identity tests for the bit-sliced resolver engine.
//!
//! The compiled evaluators in `rsin-bitslice` are only admissible as the
//! *default* engine if they are observationally indistinguishable from the
//! naive reference oracles through the full discrete-event simulation:
//! same grants in the same order, same RNG consumption, and therefore a
//! field-for-field identical [`SimReport`] — for every discipline and
//! policy, healthy and under fault injection alike. These tests run each
//! network twice, once per engine, and demand exact (bitwise `f64`)
//! equality of everything the report records.

use rsin::core::{
    simulate, simulate_faulty, FaultOptions, ResolverEngine, ResourceNetwork, SimOptions,
    SimReport, Workload,
};
use rsin::des::{FaultPlan, FaultTarget, SimRng, StochasticFault};
use rsin::omega::{Admission, OmegaNetwork, Wiring};
use rsin::sbus::{Arbitration, SharedBusNetwork};
use rsin::xbar::{CrossbarNetwork, CrossbarPolicy};

/// Demands exact equality of every statistic a run reports. Any divergence
/// between the engines — an extra RNG draw, a reordered grant, a different
/// winner — shows up here as a hard mismatch, not a tolerance miss.
fn assert_reports_identical(a: &SimReport, b: &SimReport, label: &str) {
    assert_eq!(
        a.queueing_delay, b.queueing_delay,
        "{label}: queueing delay"
    );
    assert_eq!(a.response_time, b.response_time, "{label}: response time");
    assert_eq!(
        a.mean_queue_length.to_bits(),
        b.mean_queue_length.to_bits(),
        "{label}: mean queue length"
    );
    assert_eq!(
        a.throughput.to_bits(),
        b.throughput.to_bits(),
        "{label}: throughput"
    );
    assert_eq!(
        a.measured_time.to_bits(),
        b.measured_time.to_bits(),
        "{label}: measured time"
    );
    assert_eq!(a.counters, b.counters, "{label}: network counters");
    assert_eq!(a.arrivals, b.arrivals, "{label}: arrivals");
    assert_eq!(a.completions, b.completions, "{label}: completions");
    assert_eq!(a.requeues, b.requeues, "{label}: requeues");
    assert_eq!(a.queued_at_end, b.queued_at_end, "{label}: queued at end");
    assert_eq!(
        a.in_flight_at_end, b.in_flight_at_end,
        "{label}: in flight at end"
    );
    assert_eq!(
        a.delivered_throughput.to_bits(),
        b.delivered_throughput.to_bits(),
        "{label}: delivered throughput"
    );
}

/// Every network under test, built twice — index 0 on the bit-sliced
/// engine, index 1 on the reference oracle. Engines are pinned with the
/// explicit constructors/setters (never the process-wide env knob, which
/// is racy under the threaded test harness).
fn engine_pairs() -> Vec<(String, [Box<dyn ResourceNetwork>; 2])> {
    let mut pairs: Vec<(String, [Box<dyn ResourceNetwork>; 2])> = Vec::new();

    for arb in [
        Arbitration::FixedPriority,
        Arbitration::Random,
        Arbitration::RoundRobin,
    ] {
        let pair = [ResolverEngine::Bitslice, ResolverEngine::Reference].map(|engine| {
            let mut net = SharedBusNetwork::new(2, 3, 2, arb);
            net.set_resolver_engine(engine);
            Box::new(net) as Box<dyn ResourceNetwork>
        });
        pairs.push((format!("sbus/{arb:?}"), pair));
    }

    for policy in [CrossbarPolicy::FixedPriority, CrossbarPolicy::RandomToken] {
        let pair = [ResolverEngine::Bitslice, ResolverEngine::Reference].map(|engine| {
            Box::new(CrossbarNetwork::new_with_engine(2, 4, 3, 2, policy, engine))
                as Box<dyn ResourceNetwork>
        });
        pairs.push((format!("xbar/{policy:?}"), pair));
    }

    for wiring in [Wiring::Omega, Wiring::Cube] {
        for admission in [Admission::Simultaneous, Admission::Staggered] {
            let pair = [ResolverEngine::Bitslice, ResolverEngine::Reference].map(|engine| {
                let mut net = OmegaNetwork::with_wiring(1, 8, 2, admission, wiring);
                net.set_resolver_engine(engine);
                Box::new(net) as Box<dyn ResourceNetwork>
            });
            pairs.push((format!("omega/{wiring:?}/{admission:?}"), pair));
        }
    }

    pairs
}

#[test]
fn engines_produce_identical_reports_on_healthy_networks() {
    for (label, [mut bits, mut reference]) in engine_pairs() {
        let workload =
            Workload::new(0.3 * bits.processors() as f64, 10.0, 1.0).expect("valid workload");
        let opts = SimOptions {
            warmup_tasks: 100,
            measured_tasks: 1_500,
        };
        let fast = simulate(bits.as_mut(), &workload, &opts, &mut SimRng::new(42));
        let slow = simulate(reference.as_mut(), &workload, &opts, &mut SimRng::new(42));
        assert_reports_identical(&fast, &slow, &label);
    }
}

#[test]
fn engines_produce_identical_reports_under_fault_injection() {
    for (label, [mut bits, mut reference]) in engine_pairs() {
        let mut plan = FaultPlan::new().stochastic(StochasticFault {
            target: FaultTarget::Resource(0),
            mtbf: 2.0,
            mttr: 0.5,
        });
        if bits.fault_elements() > 0 {
            plan = plan.stochastic(StochasticFault {
                target: FaultTarget::Element(bits.fault_elements() / 2),
                mtbf: 1.5,
                mttr: 0.8,
            });
        }
        let workload =
            Workload::new(0.25 * bits.processors() as f64, 10.0, 1.0).expect("valid workload");
        let opts = SimOptions {
            warmup_tasks: 50,
            measured_tasks: 800,
        };
        let fopts = FaultOptions::default();
        let fast = simulate_faulty(
            bits.as_mut(),
            &workload,
            &opts,
            &plan,
            &fopts,
            &mut SimRng::new(7),
        );
        let slow = simulate_faulty(
            reference.as_mut(),
            &workload,
            &opts,
            &plan,
            &fopts,
            &mut SimRng::new(7),
        );
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => assert_reports_identical(&fast, &slow, &label),
            (Err(fast), Err(slow)) => {
                assert_eq!(
                    fast.to_string(),
                    slow.to_string(),
                    "{label}: both stalled, but differently"
                );
            }
            (fast, slow) => panic!(
                "{label}: engines diverged on the run outcome: \
                 bitslice {fast:?} vs reference {slow:?}"
            ),
        }
    }
}
