//! Cross-crate integration: the three network families under the same
//! workload, exercised through the umbrella API.

use rsin::core::{simulate, SimOptions, SystemConfig, Workload};
use rsin::des::SimRng;
use rsin::omega::{Admission, OmegaNetwork};
use rsin::sbus::{Arbitration, SharedBusNetwork};
use rsin::xbar::{CrossbarNetwork, CrossbarPolicy};

fn opts() -> SimOptions {
    SimOptions {
        warmup_tasks: 2_000,
        measured_tasks: 30_000,
    }
}

fn delay_of(net: &mut dyn rsin::core::ResourceNetwork, w: &Workload, seed: u64) -> f64 {
    let mut rng = SimRng::new(seed);
    simulate(net, w, &opts(), &mut rng).normalized_delay(w)
}

/// The crossbar is nonblocking; at identical geometry the Omega's internal
/// blocking can only add delay.
#[test]
fn crossbar_never_loses_to_omega_at_same_geometry() {
    for (rho, ratio) in [(0.5, 0.1), (0.5, 1.0), (0.8, 0.1)] {
        let xc: SystemConfig = "16/1x16x16 XBAR/2".parse().expect("valid");
        let oc: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
        let w = Workload::for_intensity(&xc, rho, ratio).expect("valid");
        let mut xbar =
            CrossbarNetwork::from_config(&xc, CrossbarPolicy::FixedPriority).expect("crossbar");
        let mut omega = OmegaNetwork::from_config(&oc, Admission::Simultaneous).expect("omega");
        let dx = delay_of(&mut xbar, &w, 100);
        let do_ = delay_of(&mut omega, &w, 100);
        assert!(
            dx <= do_ * 1.10 + 1e-3,
            "rho={rho} ratio={ratio}: crossbar {dx} should not exceed omega {do_}"
        );
    }
}

/// A 16×16 crossbar with 2 resources per port must beat 16 isolated buses
/// with 2 resources each — sharing strictly enlarges the feasible set.
#[test]
fn sharing_beats_private_buses_at_moderate_load() {
    let xc: SystemConfig = "16/1x16x16 XBAR/2".parse().expect("valid");
    let sc: SystemConfig = "16/16x1x1 SBUS/2".parse().expect("valid");
    let w = Workload::for_intensity(&xc, 0.5, 0.1).expect("valid");
    let mut xbar =
        CrossbarNetwork::from_config(&xc, CrossbarPolicy::FixedPriority).expect("crossbar");
    let mut sbus = SharedBusNetwork::from_config(&sc, Arbitration::FixedPriority).expect("sbus");
    let dx = delay_of(&mut xbar, &w, 5);
    let ds = delay_of(&mut sbus, &w, 5);
    assert!(
        dx < ds,
        "pooled crossbar {dx} should beat private buses {ds} at rho=0.5"
    );
}

/// Omega delay sits between the crossbar (lower bound, Section IV) and the
/// single shared bus over the whole pool (upper bound, Section III).
#[test]
fn omega_bracketed_by_crossbar_and_single_bus() {
    let oc: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
    let xc: SystemConfig = "16/1x16x16 XBAR/2".parse().expect("valid");
    let w = Workload::for_intensity(&oc, 0.6, 0.5).expect("valid");
    let mut omega = OmegaNetwork::from_config(&oc, Admission::Simultaneous).expect("omega");
    let mut xbar =
        CrossbarNetwork::from_config(&xc, CrossbarPolicy::FixedPriority).expect("crossbar");
    let d_omega = delay_of(&mut omega, &w, 8);
    let d_xbar = delay_of(&mut xbar, &w, 8);
    // Single bus serving all 16 processors with all 32 resources.
    let single = rsin::queueing::SharedBusChain::new(rsin::queueing::SharedBusParams {
        processors: 16,
        resources: 32,
        lambda: w.lambda(),
        mu_n: w.mu_n(),
        mu_s: w.mu_s(),
    });
    match single.and_then(|c| c.solve()) {
        Ok(sol) => {
            assert!(
                d_xbar <= d_omega * 1.10 + 1e-3 && d_omega <= sol.normalized_delay * 1.10,
                "expected XBAR {d_xbar} <= OMEGA {d_omega} <= SBUS {}",
                sol.normalized_delay
            );
        }
        Err(_) => {
            // Single bus saturated at this load: the bracket holds trivially
            // (its delay is infinite) — still check the lower bound.
            assert!(d_xbar <= d_omega * 1.10 + 1e-3);
        }
    }
}

/// Every network family reports consistent identity metadata through the
/// trait object.
#[test]
fn labels_and_counts_are_consistent() {
    use rsin::core::ResourceNetwork;
    let nets: Vec<(Box<dyn ResourceNetwork>, &str, usize, usize)> = vec![
        (
            Box::new(
                SharedBusNetwork::from_config(
                    &"16/2x8x1 SBUS/16".parse().expect("valid"),
                    Arbitration::FixedPriority,
                )
                .expect("sbus"),
            ),
            "SBUS",
            16,
            32,
        ),
        (
            Box::new(
                CrossbarNetwork::from_config(
                    &"16/4x4x4 XBAR/2".parse().expect("valid"),
                    CrossbarPolicy::FixedPriority,
                )
                .expect("xbar"),
            ),
            "XBAR",
            16,
            32,
        ),
        (
            Box::new(
                OmegaNetwork::from_config(
                    &"16/4x4x4 OMEGA/2".parse().expect("valid"),
                    Admission::Simultaneous,
                )
                .expect("omega"),
            ),
            "OMEGA",
            16,
            32,
        ),
    ];
    for (net, label, procs, res) in nets {
        assert_eq!(net.label(), label);
        assert_eq!(net.processors(), procs);
        assert_eq!(net.total_resources(), res);
    }
}
