//! End-to-end checks of the paper's headline claims, through the umbrella
//! crate exactly as a downstream user would drive it.

use rsin::des::SimRng;
use rsin::omega::blocking::{run_blocking_experiment, BlockingExperiment};
use rsin::omega::{Admission, OmegaState};
use rsin::topology::{matching, OmegaTopology};

/// Section V: the RSIN roughly halves the 8×8 Omega blocking probability
/// relative to address mapping (≈ 0.15 vs ≈ 0.3).
#[test]
fn blocking_probability_halves_under_distributed_scheduling() {
    let mut rng = SimRng::new(2026);
    let exp = BlockingExperiment {
        size: 8,
        p_request: 0.5,
        p_free: 0.5,
        trials: 6_000,
    };
    let res = run_blocking_experiment(&exp, &mut rng);
    // Total blocking: the RSIN sits between the structural floor (~0.20,
    // requests in excess of free resources) and the address-mapping level
    // near the paper's 0.3. See EXPERIMENTS.md for the 0.15-vs-0.23
    // denominator discussion.
    assert!(
        res.rsin < res.address_mapping,
        "RSIN {} must block less than address mapping {}",
        res.rsin,
        res.address_mapping
    );
    assert!(
        (0.2..=0.4).contains(&res.address_mapping),
        "address mapping {} should sit near the paper's 0.3",
        res.address_mapping
    );
    // The discipline's own (network-caused) blocking shows the paper's 2x
    // gap clearly.
    assert!(
        res.rsin_network * 2.0 < res.address_mapping_network,
        "network-caused: RSIN {} vs address mapping {}",
        res.rsin_network,
        res.address_mapping_network
    );
}

/// Section II: the good mappings allocate 3, the bad allocate at most 2.
#[test]
fn section2_mapping_example_reproduces() {
    let net = OmegaTopology::new(8).expect("8x8");
    let good: [&[(usize, usize)]; 4] = [
        &[(0, 0), (1, 1), (2, 2)],
        &[(0, 1), (1, 0), (2, 2)],
        &[(0, 2), (1, 0), (2, 1)],
        &[(0, 2), (1, 1), (2, 0)],
    ];
    let bad: [&[(usize, usize)]; 2] = [&[(0, 0), (1, 2), (2, 1)], &[(0, 1), (1, 2), (2, 0)]];
    for m in good {
        assert!(matching::mapping_is_conflict_free(&net, m), "{m:?}");
    }
    for m in bad {
        assert!(!matching::mapping_is_conflict_free(&net, m), "{m:?}");
        // "a maximum of two out of three resources can be allocated": some
        // (not every) two-pair subset is realizable.
        let some_pair_fits = (0..3).any(|skip| {
            let sub: Vec<(usize, usize)> = m
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &p)| p)
                .collect();
            matching::mapping_is_conflict_free(&net, &sub)
        });
        assert!(some_pair_fits, "two of three must fit for {m:?}");
    }
}

/// Fig. 11: the distributed algorithm serves all four requests, with about
/// 3.5 interchange-box visits per request.
#[test]
fn fig11_walkthrough_reproduces() {
    let mut net = OmegaState::new(8, 1).expect("8x8");
    for busy in [2, 3, 6, 7] {
        net.occupy_resource(busy);
    }
    let res = net.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
    assert_eq!(res.granted.len(), 4);
    let avg = res.box_visits as f64 / 4.0;
    assert!((3.0..=4.0).contains(&avg), "boxes per request: {avg}");
}

/// Section IV timing: the distributed request cycle is O(p+m) gate delays,
/// so for large p it undercuts a centralized scheduler's O(p log m).
#[test]
fn distributed_cycle_beats_centralized_latency_at_scale() {
    use rsin::xbar::{CentralScheduler, CrossbarFabric};
    let fabric = CrossbarFabric::new(128, 128);
    let central = CentralScheduler::new(128, 128);
    assert!(
        u64::from(fabric.request_cycle_gate_delay()) < central.batch_gate_delay(128) / 2,
        "distributed {} vs centralized {}",
        fabric.request_cycle_gate_delay(),
        central.batch_gate_delay(128)
    );
}

/// Table II is internally consistent with the measured regimes: the advisor
/// flips from multistage to crossbar exactly at the ratio threshold.
#[test]
fn advisor_thresholds() {
    use rsin::core::advisor::{recommend, CostRegime, Recommendation};
    assert_eq!(
        recommend(CostRegime::NetworkMuchCheaper, 0.99),
        Recommendation::SingleMultistage
    );
    assert_eq!(
        recommend(CostRegime::NetworkMuchCheaper, 1.01),
        Recommendation::SingleCrossbar
    );
    for ratio in [0.1, 1.0, 10.0] {
        assert_eq!(
            recommend(CostRegime::NetworkMuchDearer, ratio),
            Recommendation::PrivateBuses
        );
    }
}

/// The paper's degenerate-case remark: with one resource per "type" (here,
/// one resource pool per port and a specific port demanded), resource
/// accesses reduce to address mapping. Routing a specific destination
/// through our topology matches the Omega destination-tag path.
#[test]
fn degenerate_case_is_address_mapping() {
    use rsin::topology::Multistage;
    let net = OmegaTopology::new(16).expect("16x16");
    for (src, dst) in [(0usize, 5usize), (7, 7), (15, 0), (3, 12)] {
        let route = net.route(src, dst);
        assert_eq!(route.links.len(), 4);
        assert_eq!(route.links.last().expect("nonempty").wire, dst);
    }
}
