//! Configuration design with the exact chain: how many resources, and how
//! many partitions, does a delay target require?
//!
//! The paper closes by noting its results "can guide the designers in
//! selecting the appropriate configuration"; this example plays designer
//! for a 16-processor system that must keep the allocation delay under a
//! tenth of a service time.
//!
//! Run with `cargo run --example provisioning`.

use rsin::queueing::provisioning::{min_partitions_for_delay, min_resources_for_delay};

fn main() {
    let (mu_n, mu_s) = (10.0, 1.0); // mu_s/mu_n = 0.1: resource-bound regime
    let target = 0.1;

    println!(
        "delay target: d*mu_s <= {target}, mu_s/mu_n = {}\n",
        mu_s / mu_n
    );

    println!("private bus per processor — fewest resources per processor:");
    for lambda in [0.4, 0.8, 1.2] {
        match min_resources_for_delay(1, lambda, mu_n, mu_s, target, 64) {
            Ok(s) => println!(
                "  lambda = {lambda:>4}: r = {} (achieves {:.4})",
                s.chosen, s.achieved
            ),
            Err(e) => println!("  lambda = {lambda:>4}: infeasible ({e})"),
        }
    }

    println!("\nfixed budget of 32 resources — fewest bus partitions of 16 processors:");
    for lambda in [0.2, 0.5, 1.0] {
        match min_partitions_for_delay(16, 32, lambda, mu_n, mu_s, target) {
            Ok(s) => println!(
                "  lambda = {lambda:>4}: {} partition(s) (achieves {:.4})",
                s.chosen, s.achieved
            ),
            Err(e) => println!("  lambda = {lambda:>4}: infeasible ({e})"),
        }
    }

    println!("\nat mu_s/mu_n = 1.0 the bus itself is the bottleneck — adding resources");
    println!("cannot meet an aggressive target (Table II sends you to private buses):");
    match min_resources_for_delay(16, 0.06, 1.0, 1.0, 0.001, 64) {
        Ok(s) => println!("  unexpectedly feasible with r = {}", s.chosen),
        Err(e) => println!("  {e}"),
    }
}
