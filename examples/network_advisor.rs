//! The Table-II network advisor, backed by measurements.
//!
//! For each cost regime and a sweep of `µ_s/µ_n`, print the paper's
//! recommendation and the measured delays that justify it on the
//! 16-processor / 32-resource reference system.
//!
//! Run with `cargo run --example network_advisor`.

use rsin::core::advisor::{recommend, CostRegime};
use rsin::core::{estimate_delay, SimOptions, SystemConfig, Workload};
use rsin::omega::{Admission, OmegaNetwork};
use rsin::xbar::{CrossbarNetwork, CrossbarPolicy};

fn measure(ratio: f64, rho: f64) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let opts = SimOptions {
        warmup_tasks: 1_000,
        measured_tasks: 15_000,
    };
    let omega_cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse()?;
    let w = Workload::for_intensity(&omega_cfg, rho, ratio)?;
    let omega = estimate_delay(
        || {
            Box::new(
                OmegaNetwork::from_config(&omega_cfg, Admission::Simultaneous)
                    .expect("valid omega config"),
            )
        },
        &w,
        &opts,
        3,
        3,
    );
    let xbar_cfg: SystemConfig = "16/1x16x32 XBAR/1".parse()?;
    let xbar = estimate_delay(
        || {
            Box::new(
                CrossbarNetwork::from_config(&xbar_cfg, CrossbarPolicy::FixedPriority)
                    .expect("valid crossbar config"),
            )
        },
        &w,
        &opts,
        3,
        3,
    );
    Ok((omega.normalized_delay, xbar.normalized_delay))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table II advisor with supporting measurements (rho = 0.6)\n");
    for ratio in [0.1, 1.0, 4.0] {
        let (omega, xbar) = measure(ratio, 0.6)?;
        println!("mu_s/mu_n = {ratio}:");
        println!("  measured OMEGA 16x16/2 delay: {omega:.4}   XBAR 16x32/1 delay: {xbar:.4}");
        for cost in [
            CostRegime::NetworkMuchCheaper,
            CostRegime::Comparable,
            CostRegime::NetworkMuchDearer,
        ] {
            println!("  {:?} -> {}", cost, recommend(cost, ratio));
        }
        println!();
    }
    println!(
        "Note how the measured Omega/crossbar gap widens as mu_s/mu_n grows — \
         the quantitative basis for Table II's split."
    );
    Ok(())
}
