//! Quickstart: configure a resource-sharing system in the paper's notation,
//! simulate it, and compare against the exact analytical model where one
//! exists.
//!
//! Run with `cargo run --example quickstart`.

use rsin::core::{simulate, SimOptions, SystemConfig, Workload};
use rsin::des::SimRng;
use rsin::omega::{Admission, OmegaNetwork};
use rsin::sbus::{analytic, Arbitration, SharedBusNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A partitioned shared-bus system: 16 processors, 16 private
    //        buses, 2 resources each (the paper's 16/16x1x1 SBUS/2). -------
    let cfg: SystemConfig = "16/16x1x1 SBUS/2".parse()?;
    // Offer traffic at half the reference intensity with µ_s/µ_n = 0.1.
    let workload = Workload::for_intensity(&cfg, 0.5, 0.1)?;

    let exact = analytic::partition_delay(&cfg, &workload)?;
    println!("SBUS {cfg}");
    println!(
        "  exact Markov-chain delay : {:.4} service times",
        exact.normalized_delay
    );

    let mut net = SharedBusNetwork::from_config(&cfg, Arbitration::FixedPriority)?;
    let mut rng = SimRng::new(7);
    let opts = SimOptions {
        warmup_tasks: 2_000,
        measured_tasks: 30_000,
    };
    let report = simulate(&mut net, &workload, &opts, &mut rng);
    println!(
        "  simulated delay          : {:.4} service times ({} tasks measured)",
        report.normalized_delay(&workload),
        report.queueing_delay.count()
    );

    // --- 2. The same hardware budget as one 16x16 Omega network. ---------
    let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse()?;
    let workload = Workload::for_intensity(&cfg, 0.5, 0.1)?;
    let mut net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous)?;
    let mut rng = SimRng::new(7);
    let report = simulate(&mut net, &workload, &opts, &mut rng);
    println!("OMEGA {cfg}");
    println!(
        "  simulated delay          : {:.4} service times",
        report.normalized_delay(&workload)
    );
    println!(
        "  scheduling work          : {:.2} boxes per attempt, {:.1}% rejected",
        report.counters.boxes_traversed as f64 / report.counters.attempts.max(1) as f64,
        100.0 * report.counters.rejection_ratio()
    );
    Ok(())
}
