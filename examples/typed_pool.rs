//! Multiple resource types — the paper's Section VII extension in action.
//!
//! A 16-port Omega network hosts two kinds of accelerator: FFT engines and
//! sort engines. Requests carry a type number, status is tracked per type,
//! and each request is routed only toward ports of its type. We measure:
//!
//! 1. the pooling penalty — the same hardware split into two typed pools
//!    queues longer than one universal pool;
//! 2. the placement question the paper leaves open — blocked versus
//!    interleaved type layouts.
//!
//! Run with `cargo run --example typed_pool`.

use rsin::core::typed::{simulate_typed, TypedWorkload};
use rsin::core::{SimOptions, Workload};
use rsin::des::SimRng;
use rsin::omega::{Admission, Placement, TypedOmegaNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = SimOptions {
        warmup_tasks: 2_000,
        measured_tasks: 30_000,
    };
    // 16 processors call accelerators; transmission is 10x faster than
    // the accelerator computation.
    let base = Workload::new(0.5, 10.0, 1.0)?;

    println!("16x16 Omega, 16 ports x 1 resource, lambda = 0.5 per processor\n");

    // --- pooling penalty --------------------------------------------------
    let pooled = {
        let w = TypedWorkload::new(base, vec![1.0])?;
        let mut net =
            TypedOmegaNetwork::new(1, 16, 1, 1, Placement::Blocked, Admission::Simultaneous);
        let mut rng = SimRng::new(21);
        simulate_typed(&mut net, &w, &opts, &mut rng).normalized_delay(&w)
    };
    println!("one universal pool (16 candidates/task) : delay {pooled:.4}");

    let w2 = TypedWorkload::new(base, vec![0.5, 0.5])?;
    for (placement, name) in [
        (Placement::Blocked, "two typed pools, blocked layout    "),
        (
            Placement::Interleaved,
            "two typed pools, interleaved layout",
        ),
    ] {
        let mut net = TypedOmegaNetwork::new(1, 16, 1, 2, placement, Admission::Simultaneous);
        let mut rng = SimRng::new(21);
        let report = simulate_typed(&mut net, &w2, &opts, &mut rng);
        println!(
            "{name}: delay {:.4}  (FFT {:.4}, sort {:.4})",
            report.normalized_delay(&w2),
            report.per_type_delay[0].mean(),
            report.per_type_delay[1].mean(),
        );
    }

    // --- asymmetric demand -------------------------------------------------
    println!("\nasymmetric demand (80% FFT / 20% sort), equal capacity:");
    let w_skew = TypedWorkload::new(base, vec![0.8, 0.2])?;
    let mut net =
        TypedOmegaNetwork::new(1, 16, 1, 2, Placement::Interleaved, Admission::Simultaneous);
    let mut rng = SimRng::new(22);
    let report = simulate_typed(&mut net, &w_skew, &opts, &mut rng);
    println!(
        "  FFT delay {:.4} vs sort delay {:.4} — provisioning per type matters\n  \
         (the paper: \"the problem on the number and placement of each type of\n  \
         resources in the network is still open\")",
        report.per_type_delay[0].mean(),
        report.per_type_delay[1].mean(),
    );
    Ok(())
}
