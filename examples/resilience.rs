//! Fault injection and graceful degradation: distributed vs centralized.
//!
//! The paper's distributed-scheduling argument has a robustness corollary:
//! scheduling state that lives *in* the network has no single point of
//! failure. This example kills interchange boxes of a 16×16 Omega RSIN one
//! at a time — the reject-and-reroute protocol works around the holes —
//! then kills the one scheduler of a centralized baseline, which stalls
//! every allocation in the system at once.
//!
//! Run with `cargo run --example resilience`.

use rsin::core::{simulate_faulty, FaultOptions, SimError, SimOptions, SystemConfig, Workload};
use rsin::des::{FaultPlan, FaultTarget, SimRng, SimTime};
use rsin::omega::{Admission, CentralOmegaNetwork, OmegaNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse()?;
    let workload = Workload::for_intensity(&cfg, 0.5, 0.1)?;
    let opts = SimOptions {
        warmup_tasks: 1_000,
        measured_tasks: 8_000,
    };
    let fopts = FaultOptions::default();

    println!("distributed 16x16 Omega: kill interchange boxes at t = 1.0\n");
    println!(
        "{:>12} {:>12} {:>16}",
        "dead boxes", "throughput", "normalized delay"
    );
    for failed in 0..=3 {
        let mut net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous)?;
        let mut plan = FaultPlan::new();
        // Boxes 0, 11, 22 sit in different stages of the 4-stage fabric.
        for &b in [0usize, 11, 22].iter().take(failed) {
            plan = plan.fail_at(SimTime::new(1.0), FaultTarget::Element(b));
        }
        let mut rng = SimRng::new(1983);
        let report = simulate_faulty(&mut net, &workload, &opts, &plan, &fopts, &mut rng)
            .expect("distributed network keeps delivering");
        println!(
            "{:>12} {:>12.4} {:>16.4}",
            failed,
            report.delivered_throughput,
            report.normalized_delay(&workload)
        );
    }

    println!("\ncentralized scheduler on the same Omega: kill the scheduler at t = 1.0\n");
    let mut net = CentralOmegaNetwork::new(16, 2)?;
    let plan = FaultPlan::new().fail_at(SimTime::new(1.0), FaultTarget::Element(0));
    let mut rng = SimRng::new(1983);
    match simulate_faulty(&mut net, &workload, &opts, &plan, &fopts, &mut rng) {
        Ok(report) => println!(
            "unexpectedly completed: throughput {:.4}",
            report.delivered_throughput
        ),
        Err(SimError::Stalled { queued, .. }) => println!(
            "watchdog: SimError::Stalled with {queued} tasks queued — one dead\n\
             scheduler stops the whole machine, no livelock, no hang."
        ),
    }
    println!(
        "\n→ distributed scheduling degrades gracefully under element failures;\n  \
         the centralized baseline is a single point of total failure."
    );
    Ok(())
}
