//! Walkthrough of the paper's two Omega-network worked examples:
//!
//! 1. **Section II** — with processors {0,1,2} requesting and resources
//!    {0,1,2} free in an 8×8 Omega network, some processor→resource
//!    mappings allocate all three while others strand a resource: the
//!    scheduler determines utilization.
//! 2. **Fig. 11** — the distributed algorithm serves P0, P3, P4, P5 from
//!    resources R0, R1, R4, R5, including a reject-and-reroute, averaging
//!    about 3.5 interchange boxes per request.
//!
//! Run with `cargo run --example omega_walkthrough`.

use rsin::omega::{Admission, OmegaState};
use rsin::topology::{matching, OmegaTopology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Section II: mappings matter -------------------------------------
    println!("Section II example: 8x8 Omega, P{{0,1,2}} requesting, R{{0,1,2}} free\n");
    let net = OmegaTopology::new(8)?;
    let mappings: [&[(usize, usize)]; 6] = [
        &[(0, 0), (1, 1), (2, 2)],
        &[(0, 1), (1, 0), (2, 2)],
        &[(0, 2), (1, 0), (2, 1)],
        &[(0, 2), (1, 1), (2, 0)],
        &[(0, 0), (1, 2), (2, 1)],
        &[(0, 1), (1, 2), (2, 0)],
    ];
    for m in mappings {
        let ok = matching::mapping_is_conflict_free(&net, m);
        println!(
            "  {m:?}: {}",
            if ok {
                "realizable — all 3 allocated"
            } else {
                "blocked — at most 2 allocated"
            }
        );
    }
    let best = matching::max_allocation(&net, &[0, 1, 2], &[0, 1, 2]);
    println!(
        "\n  an optimal (exhaustive) scheduler allocates {} of 3: {:?}",
        best.len(),
        best.pairs
    );

    // --- Fig. 11: the distributed algorithm does it without a scheduler --
    println!("\nFig. 11 example: R0,R1,R4,R5 free; P0,P3,P4,P5 request\n");
    let mut state = OmegaState::new(8, 1)?;
    for busy in [2, 3, 6, 7] {
        state.occupy_resource(busy);
    }
    let res = state.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
    for c in &res.granted {
        let hops: Vec<String> = c
            .links
            .iter()
            .map(|l| format!("(stage {}, wire {})", l.stage, l.wire))
            .collect();
        println!("  P{} --> R{}  via {}", c.processor, c.port, hops.join(" "));
    }
    println!(
        "\n  boxes visited: {} total = {:.2} per request (the paper reports 3.5:\n  \
         its example suffers one stage-1 reject and reroutes; our straight-first\n  \
         box preference happens to route the same scenario conflict-free)",
        res.box_visits,
        res.box_visits as f64 / 4.0
    );
    Ok(())
}
