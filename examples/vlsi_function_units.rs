//! A PUMPS-style pool of special-purpose VLSI units — the paper's primary
//! motivating system: many general processors sharing a pool of identical
//! accelerator chips (FFT / matrix inversion / sorting engines).
//!
//! Sixteen processors generate accelerator calls; thirty-two identical
//! units answer them. We sweep the offered load and print the delay of the
//! three candidate organizations, ending with the advisor's Table-II
//! recommendation for this workload.
//!
//! Run with `cargo run --example vlsi_function_units`.

use rsin::core::advisor::{recommend, CostRegime};
use rsin::core::{estimate_delay, SimOptions, SystemConfig, Workload};
use rsin::omega::{Admission, OmegaNetwork};
use rsin::queueing::{SharedBusChain, SharedBusParams};
use rsin::xbar::{CrossbarNetwork, CrossbarPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Accelerator calls ship a small argument block and then compute for
    // ~10x the shipping time: µ_s/µ_n = 0.1.
    let ratio = 0.1;
    let opts = SimOptions {
        warmup_tasks: 1_500,
        measured_tasks: 20_000,
    };

    println!("16 processors, 32 accelerator units, mu_s/mu_n = {ratio}");
    println!(
        "\n{:>6} {:>18} {:>18} {:>18}",
        "rho", "private buses r=2", "OMEGA 16x16 /2", "XBAR 16x32 /1"
    );
    for rho in [0.2, 0.4, 0.6, 0.8] {
        let sbus_cfg: SystemConfig = "16/16x1x1 SBUS/2".parse()?;
        let w = Workload::for_intensity(&sbus_cfg, rho, ratio)?;

        // Private buses: exact chain.
        let sbus = SharedBusChain::new(SharedBusParams {
            processors: 1,
            resources: 2,
            lambda: w.lambda(),
            mu_n: w.mu_n(),
            mu_s: w.mu_s(),
        })?
        .solve()?;

        let omega_cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse()?;
        let omega = estimate_delay(
            || {
                Box::new(
                    OmegaNetwork::from_config(&omega_cfg, Admission::Simultaneous)
                        .expect("valid omega config"),
                )
            },
            &w,
            &opts,
            5,
            3,
        );

        let xbar_cfg: SystemConfig = "16/1x16x32 XBAR/1".parse()?;
        let xbar = estimate_delay(
            || {
                Box::new(
                    CrossbarNetwork::from_config(&xbar_cfg, CrossbarPolicy::FixedPriority)
                        .expect("valid crossbar config"),
                )
            },
            &w,
            &opts,
            5,
            3,
        );

        println!(
            "{:>6} {:>18.4} {:>18.4} {:>18.4}",
            rho, sbus.normalized_delay, omega.normalized_delay, xbar.normalized_delay
        );
    }

    println!("\nAdvisor (Table II):");
    for cost in [
        CostRegime::NetworkMuchCheaper,
        CostRegime::Comparable,
        CostRegime::NetworkMuchDearer,
    ] {
        let rec = recommend(cost, ratio);
        println!("  {cost:?}: {rec}");
        println!("    because {}", rec.rationale());
    }
    Ok(())
}
