//! Load balancing — one of the paper's motivating applications: "Processors
//! are considered as resources themselves. When a processor is overloaded,
//! the excess load is sent to any available processor in the system."
//!
//! We model a 16-node system in which each node offloads surplus tasks
//! through an RSIN to any idle peer (the 16 "resources" are the peers'
//! execution slots), and ask which interconnect keeps offload latency low
//! as the ratio of shipping time to execution time varies.
//!
//! Run with `cargo run --example load_balancing`.

use rsin::core::{estimate_delay, SimOptions, SystemConfig, Workload};
use rsin::omega::{Admission, OmegaNetwork};
use rsin::xbar::{CrossbarNetwork, CrossbarPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = SimOptions {
        warmup_tasks: 2_000,
        measured_tasks: 25_000,
    };
    println!("offload latency (in mean task-execution times), 16 nodes, rho = 0.6\n");
    println!(
        "{:>24} {:>14} {:>14}",
        "shipping/execution", "OMEGA 16x16", "XBAR 16x16"
    );

    // Small ratio: tasks are big relative to shipping (e.g. matrix jobs);
    // large ratio: shipping dominates (e.g. bulky data, quick jobs).
    for ratio in [0.1, 0.5, 1.0, 2.0] {
        let omega_cfg: SystemConfig = "16/1x16x16 OMEGA/1".parse()?;
        let xbar_cfg: SystemConfig = "16/1x16x16 XBAR/1".parse()?;
        let w = Workload::for_intensity(&omega_cfg, 0.6, ratio)?;

        let omega = estimate_delay(
            || {
                Box::new(
                    OmegaNetwork::from_config(&omega_cfg, Admission::Simultaneous)
                        .expect("valid omega config"),
                )
            },
            &w,
            &opts,
            11,
            3,
        );
        let xbar = estimate_delay(
            || {
                Box::new(
                    CrossbarNetwork::from_config(&xbar_cfg, CrossbarPolicy::FixedPriority)
                        .expect("valid crossbar config"),
                )
            },
            &w,
            &opts,
            11,
            3,
        );
        println!(
            "{:>24} {:>9.4}±{:.3} {:>9.4}±{:.3}",
            format!("mu_s/mu_n = {ratio}"),
            omega.normalized_delay,
            omega.half_width,
            xbar.normalized_delay,
            xbar.half_width,
        );
    }
    println!(
        "\nAs the paper's Section VI predicts, the Omega network tracks the \
         crossbar closely while shipping is cheap,\nand falls behind as \
         shipping time (network occupancy) grows — at O(N log N) instead of \
         O(N^2) hardware."
    );
    Ok(())
}
