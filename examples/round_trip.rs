//! The complete Fig. 1 system: forward RSIN plus the result-return network.
//!
//! Section II routes results back "by a separate address-mapping network
//! with parallel routing since the destination address is known", and then
//! ignores that leg when measuring delay. This example quantifies the
//! justification: how much of the round trip does the return network
//! actually contribute, and when would it start to matter?
//!
//! Run with `cargo run --example round_trip`.

use rsin::core::roundtrip::{simulate_round_trip, InstantReturn};
use rsin::core::{SimOptions, SystemConfig, Workload};
use rsin::des::SimRng;
use rsin::omega::{Admission, OmegaNetwork, OmegaReturnPath};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg: SystemConfig = "16/1x16x16 OMEGA/1".parse()?;
    let opts = SimOptions {
        warmup_tasks: 2_000,
        measured_tasks: 25_000,
    };

    println!("16x16 forward Omega RSIN + 16x16 address-mapped return Omega\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>16}",
        "rho", "delay d", "round trip", "return wait", "return share"
    );
    for rho in [0.3, 0.6, 0.85] {
        let w = Workload::for_intensity(&cfg, rho, 0.1)?;
        let mut fwd = OmegaNetwork::from_config(&cfg, Admission::Simultaneous)?;
        let mut ret = OmegaReturnPath::new(16)?;
        let mut rng = SimRng::new(17);
        let report = simulate_round_trip(&mut fwd, &mut ret, &w, w.mu_n(), &opts, &mut rng);
        let rt = report.round_trip.mean();
        let wait = report.return_wait.mean();
        println!(
            "{:>6} {:>12.4} {:>14.4} {:>14.4} {:>15.2}%",
            rho,
            report.queueing_delay.mean(),
            rt,
            wait,
            100.0 * wait / rt,
        );
    }

    // The ideal-return baseline for one load point.
    let w = Workload::for_intensity(&cfg, 0.6, 0.1)?;
    let mut fwd = OmegaNetwork::from_config(&cfg, Admission::Simultaneous)?;
    let mut rng = SimRng::new(17);
    let ideal = simulate_round_trip(&mut fwd, &mut InstantReturn, &w, w.mu_n(), &opts, &mut rng);
    println!(
        "\nwith an ideal (never-blocking) return network at rho = 0.6: round trip {:.4}",
        ideal.round_trip.mean()
    );
    println!(
        "→ the paper's decision to exclude the return leg from d is sound: the\n  \
         return network's waiting contribution stays a tiny share of the trip."
    );
    Ok(())
}
