//! # rsin — resource-sharing interconnection networks
//!
//! A production-quality Rust reproduction of Benjamin W. Wah,
//! *"A Comparative Study of Distributed Resource Sharing on
//! Multiprocessors"* (ISCA 1983 / IEEE TC 1984).
//!
//! In a resource-sharing multiprocessor a request targets *any* free member
//! of a pool of identical resources. The paper embeds the scheduling of
//! such requests into the interconnection network itself — status
//! information about free resources flows backward, requests flow forward,
//! and every switching element routes locally — and compares three network
//! families: the single shared bus (analyzed exactly by a Markov chain),
//! the crossbar with gate-level distributed cells, and the Omega multistage
//! network with scheduling interchange boxes.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`des`] | `rsin-des` | discrete-event kernel, RNG, statistics |
//! | [`queueing`] | `rsin-queueing` | M/M/1, M/M/r, CTMC solvers, the shared-bus chain |
//! | [`topology`] | `rsin-topology` | shuffle/Omega/cube wiring, routing, matching |
//! | [`core`] | `rsin-core` | configs, workload, simulator, advisor |
//! | [`sbus`] | `rsin-sbus` | Section III network |
//! | [`xbar`] | `rsin-xbar` | Section IV network |
//! | [`omega`] | `rsin-omega` | Section V network |
//!
//! # Quickstart
//!
//! ```
//! use rsin::core::{simulate, SimOptions, SystemConfig, Workload};
//! use rsin::des::SimRng;
//! use rsin::omega::{Admission, OmegaNetwork};
//!
//! // One 16×16 Omega network, two resources per output port (Fig. 12).
//! let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse()?;
//! let workload = Workload::for_intensity(&cfg, 0.5, 0.1)?;
//! let mut net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous)?;
//! let mut rng = SimRng::new(7);
//! let opts = SimOptions { warmup_tasks: 500, measured_tasks: 5_000 };
//! let report = simulate(&mut net, &workload, &opts, &mut rng);
//! println!("normalized delay = {:.3}", report.normalized_delay(&workload));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use rsin_core as core;
pub use rsin_des as des;
pub use rsin_omega as omega;
pub use rsin_queueing as queueing;
pub use rsin_sbus as sbus;
pub use rsin_topology as topology;
pub use rsin_xbar as xbar;
