//! Benchmarks the three shared-bus chain solvers of `rsin-queueing`:
//! the exact matrix-geometric method, the paper's stage-recursion, and the
//! truncated Gauss–Seidel reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_queueing::{SharedBusChain, SharedBusParams};
use std::hint::black_box;

fn chain(resources: u32) -> SharedBusChain {
    SharedBusChain::new(SharedBusParams {
        processors: 16,
        resources,
        // Λ = 0.32 against a bus-pipeline capacity of ≥ 0.8 for every r —
        // stable at all benchmarked sizes.
        lambda: 0.02,
        mu_n: 1.0,
        mu_s: 1.0,
    })
    .expect("stable")
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbus_chain");
    for r in [2u32, 8, 32] {
        let ch = chain(r);
        group.bench_with_input(BenchmarkId::new("matrix_geometric", r), &ch, |b, ch| {
            b.iter(|| black_box(ch.solve().expect("solves")));
        });
        group.bench_with_input(BenchmarkId::new("paper_iterative", r), &ch, |b, ch| {
            b.iter(|| black_box(ch.solve_paper_iterative().expect("solves")));
        });
        group.bench_with_input(BenchmarkId::new("truncated_gs_64", r), &ch, |b, ch| {
            b.iter(|| black_box(ch.solve_truncated(64).expect("solves")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
