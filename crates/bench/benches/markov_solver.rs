//! Benchmarks the three shared-bus chain solvers of `rsin-queueing`:
//! the exact matrix-geometric method, the paper's stage-recursion, and the
//! truncated Gauss–Seidel reference.

use rsin_bench::microbench::bench;
use rsin_queueing::{SharedBusChain, SharedBusParams};

fn chain(resources: u32) -> SharedBusChain {
    SharedBusChain::new(SharedBusParams {
        processors: 16,
        resources,
        // Λ = 0.32 against a bus-pipeline capacity of ≥ 0.8 for every r —
        // stable at all benchmarked sizes.
        lambda: 0.02,
        mu_n: 1.0,
        mu_s: 1.0,
    })
    .expect("stable")
}

fn main() {
    for r in [2u32, 8, 32] {
        let ch = chain(r);
        bench(&format!("sbus_chain/matrix_geometric/{r}"), || {
            ch.solve().expect("solves")
        });
        bench(&format!("sbus_chain/paper_iterative/{r}"), || {
            ch.solve_paper_iterative().expect("solves")
        });
        bench(&format!("sbus_chain/truncated_gs_64/{r}"), || {
            ch.solve_truncated(64).expect("solves")
        });
    }
}
