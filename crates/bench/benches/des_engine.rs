//! Benchmarks the discrete-event kernel: calendar throughput and variate
//! generation.

use rsin_bench::microbench::bench;
use rsin_des::{Calendar, SimRng, SimTime};
use std::hint::black_box;

fn main() {
    let mut rng = SimRng::new(1);
    bench("calendar_schedule_pop_1k", || {
        let mut cal = Calendar::new();
        for i in 0..1_000u32 {
            cal.schedule(SimTime::new(rng.uniform() * 100.0 + 100.0), i);
        }
        let mut count = 0;
        while cal.pop().is_some() {
            count += 1;
        }
        black_box(count)
    });

    let mut rng = SimRng::new(2);
    bench("exponential_variates_10k", || {
        let mut acc = 0.0;
        for _ in 0..10_000 {
            acc += rng.exponential(1.0);
        }
        black_box(acc)
    });
}
