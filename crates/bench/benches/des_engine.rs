//! Benchmarks the discrete-event kernel: calendar throughput and variate
//! generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rsin_des::{Calendar, SimRng, SimTime};
use std::hint::black_box;

fn bench_calendar(c: &mut Criterion) {
    c.bench_function("calendar_schedule_pop_1k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..1_000u32 {
                cal.schedule(SimTime::new(rng.uniform() * 100.0 + 100.0), i);
            }
            let mut count = 0;
            while cal.pop().is_some() {
                count += 1;
            }
            black_box(count)
        });
    });

    c.bench_function("exponential_variates_10k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exponential(1.0);
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_calendar);
criterion_main!(benches);
