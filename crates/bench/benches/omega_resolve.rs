//! Benchmarks the Omega distributed-resolution engine at several network
//! sizes and contention levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_omega::{Admission, OmegaState};
use std::hint::black_box;

fn bench_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("omega_resolve");
    for size in [8usize, 16, 64] {
        let requesters: Vec<usize> = (0..size).step_by(2).collect();
        group.bench_with_input(BenchmarkId::new("half_requesting", size), &size, |b, &size| {
            b.iter_batched(
                || OmegaState::new(size, 1).expect("power of two"),
                |mut net| black_box(net.resolve(&requesters, Admission::Simultaneous)),
                criterion::BatchSize::SmallInput,
            );
        });
        let everyone: Vec<usize> = (0..size).collect();
        group.bench_with_input(BenchmarkId::new("all_requesting", size), &size, |b, &size| {
            b.iter_batched(
                || OmegaState::new(size, 1).expect("power of two"),
                |mut net| black_box(net.resolve(&everyone, Admission::Simultaneous)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resolve);
criterion_main!(benches);
