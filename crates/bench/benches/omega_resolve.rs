//! Benchmarks the Omega distributed-resolution engine at several network
//! sizes and contention levels.

use rsin_bench::microbench::bench_with_setup;
use rsin_omega::{Admission, OmegaState};

fn main() {
    for size in [8usize, 16, 64] {
        let requesters: Vec<usize> = (0..size).step_by(2).collect();
        bench_with_setup(
            &format!("omega_resolve/half_requesting/{size}"),
            || OmegaState::new(size, 1).expect("power of two"),
            |mut net| net.resolve(&requesters, Admission::Simultaneous),
        );
        let everyone: Vec<usize> = (0..size).collect();
        bench_with_setup(
            &format!("omega_resolve/all_requesting/{size}"),
            || OmegaState::new(size, 1).expect("power of two"),
            |mut net| net.resolve(&everyone, Admission::Simultaneous),
        );
    }
}
