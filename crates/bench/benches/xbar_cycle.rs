//! Benchmarks the gate-level crossbar request/reset waves against the
//! centralized-scheduler cost model (Section IV's latency comparison).

use rsin_bench::microbench::{bench, bench_with_setup};
use rsin_xbar::{CentralScheduler, CrossbarFabric};
use std::hint::black_box;

fn main() {
    for (p, m) in [(16usize, 32usize), (64, 64), (128, 128)] {
        let requests = vec![true; p];
        let available = vec![true; m];
        bench_with_setup(
            &format!("xbar/request_cycle/{p}x{m}"),
            || CrossbarFabric::new(p, m),
            |mut fabric| fabric.request_cycle(&requests, &available),
        );
        {
            let mut fabric = CrossbarFabric::new(p, m);
            let _ = fabric.request_cycle(&requests, &available);
            let resets = vec![true; p];
            bench(&format!("xbar/reset_cycle/{p}x{m}"), || {
                fabric.reset_cycle(black_box(&resets));
            });
        }
        {
            let sched = CentralScheduler::new(p, m);
            bench(&format!("xbar/central_allocate/{p}x{m}"), || {
                sched.allocate(&requests, &available)
            });
        }
    }
}
