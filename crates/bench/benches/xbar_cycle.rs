//! Benchmarks the gate-level crossbar request/reset waves against the
//! centralized-scheduler cost model (Section IV's latency comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_xbar::{CentralScheduler, CrossbarFabric};
use std::hint::black_box;

fn bench_waves(c: &mut Criterion) {
    let mut group = c.benchmark_group("xbar");
    for (p, m) in [(16usize, 32usize), (64, 64), (128, 128)] {
        let requests = vec![true; p];
        let available = vec![true; m];
        group.bench_with_input(
            BenchmarkId::new("request_cycle", format!("{p}x{m}")),
            &(p, m),
            |b, &(p, m)| {
                b.iter_batched(
                    || CrossbarFabric::new(p, m),
                    |mut fabric| black_box(fabric.request_cycle(&requests, &available)),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reset_cycle", format!("{p}x{m}")),
            &(p, m),
            |b, &(p, m)| {
                let mut fabric = CrossbarFabric::new(p, m);
                let _ = fabric.request_cycle(&requests, &available);
                let resets = vec![true; p];
                b.iter(|| {
                    fabric.reset_cycle(black_box(&resets));
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("central_allocate", format!("{p}x{m}")),
            &(p, m),
            |b, &(p, m)| {
                let sched = CentralScheduler::new(p, m);
                b.iter(|| black_box(sched.allocate(&requests, &available)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_waves);
criterion_main!(benches);
