//! End-to-end simulation throughput for each network family at the paper's
//! reference configuration (16 processors, 32 resources, ρ = 0.5).

use rsin_bench::figures::workload_at;
use rsin_bench::microbench::bench;
use rsin_core::{simulate, SimOptions, SystemConfig};
use rsin_des::SimRng;
use rsin_omega::{Admission, OmegaNetwork};
use rsin_sbus::{Arbitration, SharedBusNetwork};
use rsin_xbar::{CrossbarNetwork, CrossbarPolicy};

fn main() {
    let opts = SimOptions {
        warmup_tasks: 200,
        measured_tasks: 3_000,
    };
    let w = workload_at(0.5, 0.1);

    {
        let cfg: SystemConfig = "16/16x1x1 SBUS/2".parse().expect("valid");
        bench("simulate_3k_tasks/sbus_16x1x1_r2", || {
            let mut net =
                SharedBusNetwork::from_config(&cfg, Arbitration::FixedPriority).expect("sbus");
            let mut rng = SimRng::new(1);
            simulate(&mut net, &w, &opts, &mut rng).mean_delay()
        });
    }

    {
        let cfg: SystemConfig = "16/1x16x16 XBAR/2".parse().expect("valid");
        bench("simulate_3k_tasks/xbar_1x16x16_r2", || {
            let mut net =
                CrossbarNetwork::from_config(&cfg, CrossbarPolicy::FixedPriority).expect("xbar");
            let mut rng = SimRng::new(1);
            simulate(&mut net, &w, &opts, &mut rng).mean_delay()
        });
    }

    {
        let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
        bench("simulate_3k_tasks/omega_1x16x16_r2", || {
            let mut net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous).expect("omega");
            let mut rng = SimRng::new(1);
            simulate(&mut net, &w, &opts, &mut rng).mean_delay()
        });
    }
}
