//! The fault-injection resilience experiment: delivered throughput and
//! normalized delay versus the number of failed elements, for the
//! distributed 16×16 Omega RSIN and the centralized-scheduler baseline.
//!
//! The study quantifies the robustness claim implicit in the paper's
//! distributed-scheduling argument: scheduling state that lives *in* the
//! network degrades gracefully — killing interchange boxes removes paths
//! and ports but leaves the reject-and-reroute protocol working around the
//! holes — while a centralized scheduler is a single point of failure whose
//! death stalls every allocation in the system at once.
//!
//! All runs are scripted (faults land at a fixed model time) and fully
//! seeded, so the emitted artifact is byte-identical for a given seed.

use crate::quality::RunQuality;
use rsin_core::experiment::{Experiment, Series};
use rsin_core::{simulate_faulty, FaultOptions, ResourceNetwork, SimError, SystemConfig, Workload};
use rsin_des::{FaultPlan, FaultTarget, SimRng, SimTime};
use rsin_omega::{Admission, CentralOmegaNetwork, OmegaNetwork};

/// The configuration under study: one 16×16 Omega network, two resources
/// per output port.
pub const CONFIG: &str = "16/1x16x16 OMEGA/2";

/// Traffic intensity of the sweep (a mid-load Fig. 12 point).
pub const INTENSITY: f64 = 0.5;

/// Service/transmission rate ratio `µ_s/µ_n` of the sweep.
pub const SERVICE_RATIO: f64 = 0.1;

/// Model time at which every scripted fault lands (after the warm-up
/// transient at quick quality, well inside the measurement window).
pub const FAULT_TIME: f64 = 1.0;

/// Interchange boxes killed by the distributed sweep, in kill order —
/// spread over different stages of the 4-stage, 8-boxes-per-stage fabric.
pub const KILLED_BOXES: [usize; 3] = [0, 11, 22];

/// Outcome of one fault scenario.
#[derive(Clone, Debug)]
pub struct ResiliencePoint {
    /// Short label of the network variant.
    pub network: &'static str,
    /// Number of elements failed for the whole measured window.
    pub failed_elements: usize,
    /// Measured completions per unit time (0 when the run stalled).
    pub delivered_throughput: f64,
    /// Mean queueing delay in service-time units (`NaN` when stalled).
    pub normalized_delay: f64,
    /// Whether the livelock watchdog aborted the run.
    pub stalled: bool,
}

fn run_scenario(
    net: &mut dyn ResourceNetwork,
    network: &'static str,
    failed_elements: usize,
    workload: &Workload,
    q: &RunQuality,
) -> ResiliencePoint {
    let mut plan = FaultPlan::new();
    for (e, &killed_box) in KILLED_BOXES.iter().enumerate().take(failed_elements) {
        let element = if net.fault_elements() > 1 {
            killed_box
        } else {
            e
        };
        plan = plan.fail_at(SimTime::new(FAULT_TIME), FaultTarget::Element(element));
    }
    let mut rng = SimRng::new(q.seed);
    match simulate_faulty(
        net,
        workload,
        &q.sim_options(),
        &plan,
        &FaultOptions::default(),
        &mut rng,
    ) {
        Ok(report) => ResiliencePoint {
            network,
            failed_elements,
            delivered_throughput: report.delivered_throughput,
            normalized_delay: report.normalized_delay(workload),
            stalled: false,
        },
        Err(SimError::Stalled { .. }) => ResiliencePoint {
            network,
            failed_elements,
            delivered_throughput: 0.0,
            normalized_delay: f64::NAN,
            stalled: true,
        },
    }
}

/// Runs the full sweep: the distributed network with 0–3 dead interchange
/// boxes and the centralized baseline with its scheduler alive (0) and
/// dead (1).
#[must_use]
pub fn sweep(q: &RunQuality) -> Vec<ResiliencePoint> {
    let cfg: SystemConfig = CONFIG.parse().expect("valid config");
    let workload = Workload::for_intensity(&cfg, INTENSITY, SERVICE_RATIO).expect("valid workload");
    let mut points = Vec::new();
    for failed in 0..=KILLED_BOXES.len() {
        let mut net =
            OmegaNetwork::from_config(&cfg, Admission::Simultaneous).expect("omega config");
        points.push(run_scenario(
            &mut net,
            "OMEGA distributed",
            failed,
            &workload,
            q,
        ));
    }
    for failed in 0..=1 {
        let mut net = CentralOmegaNetwork::new(cfg.inputs() as usize, cfg.resources_per_port())
            .expect("power-of-two size");
        points.push(run_scenario(
            &mut net,
            "OMEGA centralized",
            failed,
            &workload,
            q,
        ));
    }
    points
}

/// Renders the sweep as the throughput experiment (one series per network
/// variant; x = failed elements, y = delivered throughput).
#[must_use]
pub fn throughput_experiment(points: &[ResiliencePoint]) -> Experiment {
    let mut e = Experiment::new(
        format!("Resilience: delivered throughput vs failed elements ({CONFIG}, rho={INTENSITY})"),
        "failed elements",
        "delivered throughput",
    );
    for network in ["OMEGA distributed", "OMEGA centralized"] {
        let mut s = Series::new(network);
        for p in points.iter().filter(|p| p.network == network) {
            s.push(p.failed_elements as f64, p.delivered_throughput);
        }
        e.add(s);
    }
    e
}

/// Renders the sweep as the delay experiment (distributed series only —
/// the centralized baseline has no delay once stalled).
#[must_use]
pub fn delay_experiment(points: &[ResiliencePoint]) -> Experiment {
    let mut e = Experiment::new(
        format!("Resilience: normalized delay vs failed boxes ({CONFIG}, rho={INTENSITY})"),
        "failed elements",
        "normalized delay d*mu_s",
    );
    let mut s = Series::new("OMEGA distributed");
    for p in points
        .iter()
        .filter(|p| p.network == "OMEGA distributed" && !p.stalled)
    {
        s.push(p.failed_elements as f64, p.normalized_delay);
    }
    e.add(s);
    e
}

/// One-line-per-scenario text summary, including stall flags.
#[must_use]
pub fn summary(points: &[ResiliencePoint]) -> String {
    let mut out = String::new();
    for p in points {
        let delay = if p.normalized_delay.is_nan() {
            "-".to_string()
        } else {
            format!("{:.4}", p.normalized_delay)
        };
        out.push_str(&format!(
            "{:<18} failed={} throughput={:.5} delay={} {}\n",
            p.network,
            p.failed_elements,
            p.delivered_throughput,
            delay,
            if p.stalled { "STALLED" } else { "ok" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap() -> RunQuality {
        RunQuality {
            warmup: 200,
            measured: 2_000,
            ..RunQuality::quick()
        }
    }

    /// The experiment's headline acceptance criterion: the distributed
    /// network sustains nonzero throughput with 1–3 dead interchange
    /// boxes, while the centralized baseline delivers zero once its
    /// scheduler dies.
    #[test]
    fn distributed_survives_box_faults_centralized_does_not() {
        let points = sweep(&cheap());
        for p in &points {
            match (p.network, p.failed_elements) {
                ("OMEGA distributed", _) => {
                    assert!(
                        p.delivered_throughput > 0.0,
                        "distributed with {} dead boxes must keep delivering",
                        p.failed_elements
                    );
                    assert!(!p.stalled);
                }
                ("OMEGA centralized", 0) => {
                    assert!(p.delivered_throughput > 0.0, "healthy baseline delivers");
                }
                ("OMEGA centralized", _) => {
                    assert_eq!(
                        p.delivered_throughput, 0.0,
                        "dead scheduler must deliver nothing"
                    );
                    assert!(p.stalled, "the watchdog reports the stall");
                }
                other => panic!("unexpected point {other:?}"),
            }
        }
    }

    /// Dead boxes remove capacity, so the surviving system pays in delay.
    #[test]
    fn degradation_is_monotone_in_delay_direction() {
        let points = sweep(&cheap());
        let distributed: Vec<&ResiliencePoint> = points
            .iter()
            .filter(|p| p.network == "OMEGA distributed")
            .collect();
        assert_eq!(distributed.len(), 4);
        let healthy = distributed[0].normalized_delay;
        let worst = distributed[3].normalized_delay;
        assert!(
            worst > healthy,
            "three dead boxes must cost delay: {healthy} -> {worst}"
        );
    }

    /// Byte-identical artifacts per seed: the whole pipeline is
    /// deterministic.
    #[test]
    fn sweep_is_deterministic_per_seed() {
        let q = cheap();
        let a = sweep(&q);
        let b = sweep(&q);
        let render = |p: &[ResiliencePoint]| summary(p) + &throughput_experiment(p).to_csv();
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn experiments_have_expected_shape() {
        let points = sweep(&cheap());
        let thr = throughput_experiment(&points);
        let csv = thr.to_csv();
        assert!(csv.lines().count() >= 5, "header + >=4 distributed points");
        let delay = delay_experiment(&points);
        assert!(!delay.to_csv().is_empty());
        assert!(summary(&points).contains("STALLED"));
    }
}
