//! Regenerators for the paper's tables and worked examples: Table I (cell
//! truth table), Table II (network selection), the Section II Omega
//! blocking example, the Fig. 11 distributed-scheduling walkthrough, the
//! Section V blocking-probability comparison, and the Section VI
//! cross-network comparison.

use crate::figures::workload_at;
use crate::quality::RunQuality;
use rsin_core::advisor::{recommend, CostRegime};
use rsin_core::{estimate_delay, SystemConfig};
use rsin_des::SimRng;
use rsin_omega::blocking::{run_blocking_experiment, BlockingExperiment, BlockingResult};
use rsin_omega::{
    Admission, OmegaNetwork, OmegaState, Placement, StatusFreshness, TypedOmegaNetwork, Wiring,
};
use rsin_queueing::{solve_shared_bus_cached, SharedBusParams};
use rsin_sbus::{Arbitration, SharedBusNetwork};
use rsin_topology::{matching, OmegaTopology};
use rsin_xbar::{Cell, CrossbarNetwork, CrossbarPolicy, Mode};
use std::fmt::Write as _;

/// Renders Table I by exercising the gate-level cell over every input.
#[must_use]
pub fn table1_text() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table I: truth table of the crossbar cell");
    let _ = writeln!(
        out,
        "{:>8} {:>4} {:>4} {:>6} {:>8} {:>6} {:>6}",
        "MODE", "X", "Y", "X_out", "Y_out", "SET", "RESET"
    );
    for (mode, name) in [(Mode::Request, "Request"), (Mode::Reset, "Reset")] {
        for x in [false, true] {
            for y in [false, true] {
                // Table I is stated for a latch that starts off.
                let mut cell = Cell::new();
                let (xo, yo) = cell.step(mode, x, y);
                let set = mode == Mode::Request && cell.is_connected();
                let reset = mode == Mode::Reset && x;
                let _ = writeln!(
                    out,
                    "{:>8} {:>4} {:>4} {:>6} {:>8} {:>6} {:>6}",
                    name,
                    u8::from(x),
                    u8::from(y),
                    u8::from(xo),
                    u8::from(yo),
                    u8::from(set),
                    u8::from(reset),
                );
            }
        }
    }
    out
}

/// Renders Table II (the selection rule) with rationales.
#[must_use]
pub fn table2_text() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table II: selection of suitable RSIN");
    let _ = writeln!(
        out,
        "{:<28} {:>12}   NETWORK TO BE USED",
        "RELATIVE COSTS", "mu_s/mu_n"
    );
    let rows = [
        (CostRegime::NetworkMuchCheaper, 0.1, "small"),
        (CostRegime::NetworkMuchCheaper, 10.0, "large"),
        (CostRegime::Comparable, 0.1, "small"),
        (CostRegime::Comparable, 10.0, "large"),
        (CostRegime::NetworkMuchDearer, 0.1, "all"),
    ];
    for (cost, ratio, label) in rows {
        let rec = recommend(cost, ratio);
        let _ = writeln!(out, "{:<28} {:>12}   {}", format!("{cost:?}"), label, rec);
        let _ = writeln!(out, "{:<43}rationale: {}", "", rec.rationale());
    }
    out
}

/// One row of the Section VI cross-network comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct ComparisonRow {
    /// Configuration string.
    pub config: String,
    /// Normalized queueing delay.
    pub normalized_delay: f64,
    /// 95% half-width (0 for analytic rows).
    pub half_width: f64,
}

/// Section VI: at comparable network/resource cost, many private buses with
/// extra resources (`16/16x1x1 SBUS/3`) against one-partition-level Omega
/// and crossbar systems (`16/4x4x4 OMEGA/2`, `16/4x4x4 XBAR/2`).
#[must_use]
pub fn section6_comparison(ratio: f64, rho: f64, quality: &RunQuality) -> Vec<ComparisonRow> {
    let w = workload_at(rho, ratio);
    let opts = quality.sim_options();
    let mut rows = Vec::new();

    let chain = solve_shared_bus_cached(SharedBusParams {
        processors: 1,
        resources: 3,
        lambda: w.lambda(),
        mu_n: w.mu_n(),
        mu_s: w.mu_s(),
    });
    if let Ok(sol) = chain {
        rows.push(ComparisonRow {
            config: "16/16x1x1 SBUS/3".into(),
            normalized_delay: sol.normalized_delay,
            half_width: 0.0,
        });
    }

    let omega_cfg: SystemConfig = "16/4x4x4 OMEGA/2".parse().expect("valid");
    let est = estimate_delay(
        || Box::new(OmegaNetwork::from_config(&omega_cfg, Admission::Simultaneous).expect("omega")),
        &w,
        &opts,
        quality.seed,
        quality.reps,
    );
    rows.push(ComparisonRow {
        config: omega_cfg.to_string(),
        normalized_delay: est.normalized_delay,
        half_width: est.half_width,
    });

    let xbar_cfg: SystemConfig = "16/4x4x4 XBAR/2".parse().expect("valid");
    let est = estimate_delay(
        || {
            Box::new(
                CrossbarNetwork::from_config(&xbar_cfg, CrossbarPolicy::FixedPriority)
                    .expect("xbar"),
            )
        },
        &w,
        &opts,
        quality.seed,
        quality.reps,
    );
    rows.push(ComparisonRow {
        config: xbar_cfg.to_string(),
        normalized_delay: est.normalized_delay,
        half_width: est.half_width,
    });
    rows
}

/// Renders the Section VI comparison as text.
#[must_use]
pub fn section6_text(quality: &RunQuality) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Section VI comparison: equal-cost organizations, normalized delay"
    );
    // The SBUS/3 advantage (1.5x the resources behind private buses)
    // materializes under heavy load, where the shared networks' blockage
    // dominates; at light load pooled resources win instead.
    for (ratio, rho) in [(0.1, 0.8), (1.0, 0.8)] {
        let _ = writeln!(out, "\nmu_s/mu_n = {ratio}, rho = {rho}:");
        for row in section6_comparison(ratio, rho, quality) {
            let _ = writeln!(
                out,
                "  {:<22} {:>10.4} ± {:.4}",
                row.config, row.normalized_delay, row.half_width
            );
        }
    }
    out
}

/// The Section V blocking-probability experiment, over a small sweep of
/// availability probabilities.
#[must_use]
pub fn blocking_text(quality: &RunQuality) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Section V: blocking probability, 8x8 Omega, random requests/resources"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>12} {:>16} {:>12} {:>16}",
        "p_req", "p_free", "RSIN", "address-map", "RSIN(net)", "addr-map(net)"
    );
    let mut rng = SimRng::new(quality.seed);
    for p in [0.25, 0.5, 0.75] {
        let exp = BlockingExperiment {
            size: 8,
            p_request: p,
            p_free: p,
            trials: quality.trials,
        };
        let res: BlockingResult = run_blocking_experiment(&exp, &mut rng);
        let _ = writeln!(
            out,
            "{:>8.2} {:>8.2} {:>12.4} {:>16.4} {:>12.4} {:>16.4}",
            p, p, res.rsin, res.address_mapping, res.rsin_network, res.address_mapping_network,
        );
    }
    let _ = writeln!(
        out,
        "\npaper's reported values at the 0.5/0.5 point: RSIN ~0.15, address mapping ~0.3\n\
         (the total columns include requests in excess of the free supply, which no\n\
         scheduler can serve; the (net) columns isolate the discipline's own blocking)"
    );
    out
}

/// The Fig. 11 walkthrough: resources R0, R1, R4, R5 available, processors
/// P0, P3, P4, P5 requesting.
#[must_use]
pub fn fig11_text() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 11: 8x8 Omega distributed scheduling walkthrough"
    );
    let mut net = OmegaState::new(8, 1).expect("8x8");
    for port in [2, 3, 6, 7] {
        net.occupy_resource(port);
    }
    let res = net.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
    let _ = writeln!(out, "requesting processors: P0 P3 P4 P5");
    let _ = writeln!(out, "available resources:   R0 R1 R4 R5");
    for c in &res.granted {
        let links: Vec<String> = c
            .links
            .iter()
            .map(|l| format!("stage{}→wire{}", l.stage, l.wire))
            .collect();
        let _ = writeln!(
            out,
            "  P{} → R{}   via {}",
            c.processor,
            c.port,
            links.join(", ")
        );
    }
    let _ = writeln!(out, "rejected: {:?}", res.rejected);
    let _ = writeln!(
        out,
        "interchange boxes visited: {} total, {:.2} per request (paper: 3.5)",
        res.box_visits,
        res.box_visits as f64 / 4.0
    );
    out
}

/// The Section II mapping example: which processor→resource assignments an
/// 8×8 Omega can realize for requesters {0,1,2} and resources {0,1,2}.
#[must_use]
pub fn mapping_example_text() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Section II: Omega 8x8 mapping example");
    let net = OmegaTopology::new(8).expect("8x8");
    let mappings: [&[(usize, usize)]; 6] = [
        &[(0, 0), (1, 1), (2, 2)],
        &[(0, 1), (1, 0), (2, 2)],
        &[(0, 2), (1, 0), (2, 1)],
        &[(0, 2), (1, 1), (2, 0)],
        &[(0, 0), (1, 2), (2, 1)],
        &[(0, 1), (1, 2), (2, 0)],
    ];
    for m in mappings {
        let ok = matching::mapping_is_conflict_free(&net, m);
        let _ = writeln!(
            out,
            "  {m:?} → {}",
            if ok {
                "realizable (3 allocated)"
            } else {
                "BLOCKED (max 2)"
            }
        );
    }
    let best = matching::max_allocation(&net, &[0, 1, 2], &[0, 1, 2]);
    let _ = writeln!(out, "optimal scheduler allocates: {} of 3", best.len());
    let greedy = matching::greedy_allocation(&net, &[0, 1, 2], &[0, 2, 1]);
    let _ = writeln!(
        out,
        "greedy (resources offered 0,2,1) allocates: {} of 3",
        greedy.len()
    );
    out
}

/// Ablation: SBUS arbitration policies — mean delay and per-processor
/// fairness (delay of processor 0's bus position vs the mean).
#[must_use]
pub fn ablation_arbiter_text(quality: &RunQuality) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation: bus arbitration policy (8/1x8x1 SBUS/4, rho=0.5, ratio=0.5)"
    );
    let cfg: SystemConfig = "8/1x8x1 SBUS/4".parse().expect("valid");
    let w = rsin_core::Workload::for_intensity(&cfg, 0.5, 0.5).expect("valid");
    let opts = quality.sim_options();
    for (policy, name) in [
        (Arbitration::FixedPriority, "fixed-priority"),
        (Arbitration::Random, "random (token)"),
        (Arbitration::RoundRobin, "round-robin"),
    ] {
        let est = estimate_delay(
            || Box::new(SharedBusNetwork::from_config(&cfg, policy).expect("sbus")),
            &w,
            &opts,
            quality.seed,
            quality.reps,
        );
        let _ = writeln!(
            out,
            "  {:<16} normalized delay {:.4} ± {:.4}",
            name, est.normalized_delay, est.half_width
        );
    }
    let _ = writeln!(
        out,
        "\n(mean delay is policy-insensitive for exponential service; fairness is not)"
    );
    out
}

/// Ablation: Omega admission discipline (simultaneous vs staggered).
#[must_use]
pub fn ablation_stagger_text(quality: &RunQuality) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation: Omega request admission (16/1x16x16 OMEGA/2, ratio=0.1)"
    );
    let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
    let opts = quality.sim_options();
    for rho in [0.3, 0.6, 0.8] {
        let w = workload_at(rho, 0.1);
        let _ = writeln!(out, "rho = {rho}:");
        for (admission, name) in [
            (Admission::Simultaneous, "simultaneous"),
            (Admission::Staggered, "staggered"),
        ] {
            let est = estimate_delay(
                || Box::new(OmegaNetwork::from_config(&cfg, admission).expect("omega")),
                &w,
                &opts,
                quality.seed,
                quality.reps,
            );
            let _ = writeln!(
                out,
                "  {:<14} normalized delay {:.4} ± {:.4}",
                name, est.normalized_delay, est.half_width
            );
        }
    }
    out
}

/// Ablation: status-register freshness (continuous vs epoch-start-only),
/// isolating the paper's "outdated status information" effect.
#[must_use]
pub fn ablation_freshness_text(quality: &RunQuality) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation: availability-register freshness (16/1x16x16 OMEGA/2, ratio=0.1)"
    );
    let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
    let opts = quality.sim_options();
    for rho in [0.4, 0.7] {
        let w = workload_at(rho, 0.1);
        let _ = writeln!(out, "rho = {rho}:");
        for (freshness, name) in [
            (StatusFreshness::Continuous, "continuous"),
            (StatusFreshness::EpochStart, "epoch-start (stale)"),
        ] {
            // note: identical results here are the finding — see below.
            let est = estimate_delay(
                || {
                    let mut net =
                        OmegaNetwork::from_config(&cfg, Admission::Simultaneous).expect("omega");
                    net.set_status_freshness(freshness);
                    Box::new(net)
                },
                &w,
                &opts,
                quality.seed,
                quality.reps,
            );
            let _ = writeln!(
                out,
                "  {:<22} normalized delay {:.4} ± {:.4}",
                name, est.normalized_delay, est.half_width
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(identical delays are the finding: at queueing timescales requests\n\
         rarely resolve in the same epoch, so stale registers almost never\n\
         mislead anyone — quantitative support for the paper's assumption (c);\n\
         the effect is visible in direct high-contention resolution, see the\n\
         resolver's stale-status tests)"
    );
    out
}

/// Ablation: Omega versus indirect binary n-cube wiring at identical
/// configuration — the paper's "applicable to other multistage networks".
#[must_use]
pub fn ablation_wiring_text(quality: &RunQuality) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation: interstage wiring, Omega vs indirect binary n-cube (16x16, r=2, ratio=0.1)"
    );
    let opts = quality.sim_options();
    for rho in [0.4, 0.7] {
        let w = workload_at(rho, 0.1);
        let _ = writeln!(out, "rho = {rho}:");
        for (wiring, name) in [(Wiring::Omega, "OMEGA"), (Wiring::Cube, "CUBE")] {
            let est = estimate_delay(
                || {
                    Box::new(OmegaNetwork::with_wiring(
                        1,
                        16,
                        2,
                        Admission::Simultaneous,
                        wiring,
                    ))
                },
                &w,
                &opts,
                quality.seed,
                quality.reps,
            );
            let _ = writeln!(
                out,
                "  {:<8} normalized delay {:.4} ± {:.4}",
                name, est.normalized_delay, est.half_width
            );
        }
    }
    out
}

/// Ablation: typed-resource placement (blocked vs interleaved), probing the
/// open problem of Section VII.
#[must_use]
pub fn ablation_placement_text(quality: &RunQuality) -> String {
    use rsin_core::typed::{simulate_typed, TypedWorkload};
    use rsin_des::SimRng as Rng;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation: typed-resource placement (16x16 Omega, 2 types, 50/50 mix, ratio=0.1)"
    );
    let opts = quality.sim_options();
    for lambda in [0.3, 0.55] {
        let base = rsin_core::Workload::new(lambda, 10.0, 1.0).expect("valid");
        let w = TypedWorkload::new(base, vec![0.5, 0.5]).expect("valid");
        let _ = writeln!(out, "lambda = {lambda} per processor:");
        for (placement, name) in [
            (Placement::Blocked, "blocked"),
            (Placement::Interleaved, "interleaved"),
        ] {
            let mut net = TypedOmegaNetwork::new(1, 16, 1, 2, placement, Admission::Simultaneous);
            let mut rng = Rng::new(quality.seed);
            let report = simulate_typed(&mut net, &w, &opts, &mut rng);
            let _ = writeln!(
                out,
                "  {:<12} delay {:.4}  (type0 {:.4}, type1 {:.4})",
                name,
                report.normalized_delay(&w),
                report.per_type_delay[0].mean(),
                report.per_type_delay[1].mean(),
            );
        }
    }
    out
}

/// Ablation: service-time variability (the paper's exponential assumption
/// (a) relaxed) on the 16×16 Omega at fixed mean load.
#[must_use]
pub fn ablation_variability_text(quality: &RunQuality) -> String {
    use rsin_core::{simulate_general, StageDistributions};
    use rsin_des::{Deterministic, Erlang, Exponential, HyperExponential, SimRng as Rng};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation: service-time distribution (16/1x16x16 OMEGA/2, ratio=0.1, rho=0.6)"
    );
    let w = workload_at(0.6, 0.1);
    let opts = quality.sim_options();
    let arrivals = Exponential::with_rate(w.lambda());
    let tx = Exponential::with_rate(w.mu_n());
    let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");

    let cases: Vec<(&str, Box<dyn rsin_des::Draw>)> = vec![
        (
            "deterministic (cv2=0)",
            Box::new(Deterministic::new(1.0 / w.mu_s())),
        ),
        (
            "Erlang-4 (cv2=0.25)",
            Box::new(Erlang::new(4, 1.0 / w.mu_s())),
        ),
        (
            "exponential (cv2=1)",
            Box::new(Exponential::with_rate(w.mu_s())),
        ),
        (
            "hyperexp (cv2~3.5)",
            Box::new(HyperExponential::new(0.8, 2.0 * w.mu_s(), 0.4 * w.mu_s())),
        ),
    ];
    for (name, service) in &cases {
        let mut net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous).expect("omega");
        let mut rng = Rng::new(quality.seed);
        let report = simulate_general(
            &mut net,
            &StageDistributions {
                interarrival: &arrivals,
                transmission: &tx,
                service: service.as_ref(),
            },
            &opts,
            &mut rng,
        );
        let _ = writeln!(
            out,
            "  {:<24} normalized delay {:.4}",
            name,
            report.mean_delay() * w.mu_s()
        );
    }
    let _ = writeln!(
        out,
        "\n(the allocation delay d is driven by resource occupancy, not service\n\
         shape; variability moves the curve but preserves the network ordering)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_sixteen_rows() {
        let t = table1_text();
        assert_eq!(t.lines().count(), 2 + 8, "header + 8 input rows");
        assert!(t.contains("Request"));
        assert!(t.contains("Reset"));
    }

    #[test]
    fn table2_covers_all_regimes() {
        let t = table2_text();
        assert!(t.contains("private buses"));
        assert!(t.contains("multistage"));
        assert!(t.contains("crossbar"));
    }

    #[test]
    fn fig11_reports_full_allocation() {
        let t = fig11_text();
        assert!(t.contains("rejected: []"), "{t}");
        assert!(t.contains("per request"));
    }

    #[test]
    fn mapping_example_marks_good_and_bad() {
        let t = mapping_example_text();
        assert_eq!(t.matches("realizable").count(), 4);
        assert_eq!(t.matches("BLOCKED").count(), 2);
        assert!(t.contains("optimal scheduler allocates: 3 of 3"));
    }

    #[test]
    fn section6_sbus3_wins_under_heavy_load() {
        // "a 16/16x1x1 SBUS/3 system has a much better delay behavior than a
        // 16/4x4x4 OMEGA/2 or a 16/4x4x4 XBAR/2 system." In our model the
        // advantage appears under heavy load (rho = 0.8), where shared
        // networks block; at light load the pooled organizations win —
        // recorded as a deviation in EXPERIMENTS.md. The margin over
        // OMEGA/2 is small at this load, so spend more effort than the
        // quick preset to resolve the ordering of the true means.
        let quality = RunQuality {
            measured: 24_000,
            reps: 4,
            ..RunQuality::quick()
        };
        let rows = section6_comparison(0.1, 0.8, &quality);
        assert_eq!(rows.len(), 3);
        let sbus = rows[0].normalized_delay;
        assert!(
            sbus < rows[1].normalized_delay && sbus < rows[2].normalized_delay,
            "SBUS/3 {sbus} must beat OMEGA/2 {} and XBAR/2 {}",
            rows[1].normalized_delay,
            rows[2].normalized_delay
        );
    }

    #[test]
    fn section6_pooling_wins_at_light_load() {
        // The flip side of the comparison: at light load the shared
        // organizations (8 pooled resources per 4 processors) beat 3
        // private resources per processor.
        let rows = section6_comparison(0.1, 0.3, &RunQuality::quick());
        let sbus = rows[0].normalized_delay;
        assert!(sbus > rows[1].normalized_delay && sbus > rows[2].normalized_delay);
    }

    #[test]
    fn blocking_table_reports_gap() {
        let mut q = RunQuality::quick();
        q.trials = 1_000;
        let t = blocking_text(&q);
        assert!(t.contains("RSIN"));
        assert!(t.lines().count() >= 5);
    }
}
