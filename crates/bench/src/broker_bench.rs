//! The runtime-broker benchmark: sweeps offered load ρ (and a worker-thread
//! count) through the `rsin-broker` SBUS implementation and emits two
//! artifacts under the experiment output directory:
//!
//! - `broker_predictions` — the model side (exact [`SharedBusChain`] curve
//!   plus a DES replication interval per ρ). Fully deterministic:
//!   byte-identical for every `--jobs` value, so it participates in the
//!   `broker_manifest.json` digest gate and `--resume` skips it when its
//!   digests still match the files on disk.
//! - `broker_measured` — the runtime side (real threads, wall clock). Timing
//!   data by nature, so it is always recomputed; its table carries the
//!   model/measured ratio per ρ and the exclusivity-audit verdict.
//!
//! CLI: `--threads N`, `--duration-ms N`, `--rho a,b,c`, `--shards N`
//! (both `--flag v` and `--flag=v` spellings), plus the shared `--jobs` /
//! `--full` / `--resume` harness flags. Malformed values are typed
//! [`ConfigError::Parse`] errors, exactly like the suite's `--jobs`.
//! `--shards N` partitions the pool into N per-shard SBUS arbiters behind
//! a [`ShardedBroker`] ([`RESOURCES`] slots each); the model side solves
//! the chain at the same total pool, so the model/measured ratio stays
//! meaningful at every shard count.
//!
//! `--chaos <spec>` (or the `RSIN_BROKER_CHAOS` environment variable; the
//! flag wins when both are present) switches the measured leg to the
//! chaos-hardened driver: the spec's seeded fractions of worker threads
//! crash or stall mid-protocol, optional `mtbf=`/`mttr=` add a stochastic
//! outage of resource 0, and the table gains a fault-accounting section.
//! The exclusivity audit and the leak inventory still gate the exit code —
//! a chaos run that violates exclusivity or leaks a resource fails the
//! benchmark exactly like a healthy run with a violation.

use crate::manifest::{fnv1a64, EntryStatus, Manifest, ManifestEntry};
use crate::output;
use crate::RunQuality;
use rsin_broker::{
    run_load, run_load_chaos, ChaosOptions, ChaosPlan, ChaosSpec, LoadConfig, SbusBroker,
    ShardedBroker,
};
use rsin_core::experiment::{Experiment, Series};
use rsin_core::{simulate, ConfigError, HarnessError, SimOptions, Workload};
use rsin_des::{replicate, scope_map_indexed, SimRng};
use rsin_des::{FaultPlan, FaultTarget, StochasticFault};
use rsin_queueing::{SharedBusChain, SharedBusParams};
use rsin_sbus::{Arbitration, SharedBusNetwork};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;
use std::time::Instant;

/// Resources *per logical shard* in the benchmarked pool (Section III's
/// `r` when running unsharded; the sweep's total pool is
/// [`BrokerBenchConfig::total_resources`]).
pub const RESOURCES: usize = 2;
/// Transmission rate µ_n.
pub const MU_N: f64 = 4.0;
/// Service rate µ_s.
pub const MU_S: f64 = 1.0;
/// Wall microseconds per model time unit in the measured leg.
pub const SCALE_US: f64 = 1_200.0;
/// Lease used by the chaos leg. Must be ≫ the mean service time in model
/// units (1/µ_s = 1 unit = 1.2 ms wall here) or the supervisor truncates
/// the exponential service tail by evicting legitimate slow holders —
/// ~21 units keeps P(service > lease) ≈ e⁻²¹ while still reclaiming a
/// dead client's grant within 25 ms.
pub const CHAOS_LEASE: Duration = Duration::from_millis(25);

/// Where `--connect` points the networked load harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetTarget {
    /// Spin up an in-process server on a loopback ephemeral port, drive
    /// it, and shut it down — the self-contained mode CI uses, and the
    /// only one that can audit the server-side ledger.
    SelfServe,
    /// An already-running server (started with `--serve`), possibly on
    /// another host. Client-side statistics only.
    Addr(std::net::SocketAddr),
}

/// What to sweep: parsed from the command line, defaulted for CI.
#[derive(Clone, Debug, PartialEq)]
pub struct BrokerBenchConfig {
    /// Worker threads contending for the broker (the model's `p`). In the
    /// networked mode this is the client-connection count.
    pub threads: usize,
    /// Measured wall time per ρ point, in milliseconds. The networked
    /// mode's measurement window.
    pub duration_ms: u64,
    /// Offered-load points, each relative to the pipeline's saturation
    /// throughput (the chain's `utilization()` dial).
    pub rho: Vec<f64>,
    /// Logical shards the resource pool is partitioned into (`--shards`);
    /// each shard holds [`RESOURCES`] slots, so the total pool scales with
    /// the shard count. `1` runs the plain single-arbiter broker.
    pub shards: usize,
    /// Chaos schedule for the measured leg (`--chaos` /
    /// `RSIN_BROKER_CHAOS`); `None` runs the healthy driver. The
    /// `trunc=`/`junk=` wire faults require the networked mode.
    pub chaos: Option<ChaosSpec>,
    /// `--serve ADDR`: run a networked broker front-end on `ADDR` instead
    /// of the benchmark, until stdin closes.
    pub serve: Option<std::net::SocketAddr>,
    /// `--connect ADDR|self`: run the networked load harness instead of
    /// the in-process measured sweep.
    pub connect: Option<NetTarget>,
    /// Tenant classes of the networked mode (`--tenants`, 1–8); class 0
    /// is never shed by admission control.
    pub tenants: u8,
    /// Per-request deadline of the networked mode in milliseconds
    /// (`--deadline-ms`, ≥ 1), carried on the wire so the server sheds
    /// expired work before arbitration.
    pub deadline_ms: u64,
}

impl Default for BrokerBenchConfig {
    fn default() -> Self {
        BrokerBenchConfig {
            threads: 6,
            duration_ms: 400,
            rho: vec![0.2, 0.5, 0.8],
            shards: 1,
            chaos: None,
            serve: None,
            connect: None,
            tenants: 3,
            deadline_ms: 100,
        }
    }
}

impl BrokerBenchConfig {
    /// Parses `--threads`, `--duration-ms`, `--rho` and `--chaos` from an
    /// argument list; absent flags keep their defaults, and an absent
    /// `--chaos` falls back to the `RSIN_BROKER_CHAOS` environment
    /// variable.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] naming the offending flag (or environment
    /// variable) and the expected shape when a value is missing,
    /// malformed, or out of range.
    pub fn try_from_args(args: &[String]) -> Result<Self, ConfigError> {
        let env = std::env::var("RSIN_BROKER_CHAOS").ok();
        BrokerBenchConfig::try_from_args_with_env(args, env.as_deref())
    }

    /// [`BrokerBenchConfig::try_from_args`] with the `RSIN_BROKER_CHAOS`
    /// value injected explicitly (tests use this; process env reads race
    /// across parallel test threads).
    ///
    /// # Errors
    ///
    /// As [`BrokerBenchConfig::try_from_args`].
    pub fn try_from_args_with_env(
        args: &[String],
        chaos_env: Option<&str>,
    ) -> Result<Self, ConfigError> {
        let mut cfg = BrokerBenchConfig::default();
        if let Some(v) = flag_value(args, "--threads")? {
            cfg.threads = parse_threads(&v)?;
        }
        if let Some(v) = flag_value(args, "--duration-ms")? {
            cfg.duration_ms = parse_duration_ms(&v)?;
        }
        if let Some(v) = flag_value(args, "--rho")? {
            cfg.rho = parse_rho(&v)?;
        }
        if let Some(v) = flag_value(args, "--shards")? {
            cfg.shards = parse_shards(&v)?;
        }
        if let Some(v) = flag_value(args, "--chaos")? {
            cfg.chaos = Some(parse_chaos("--chaos", &v)?);
        } else if let Some(v) = chaos_env {
            cfg.chaos = Some(parse_chaos("RSIN_BROKER_CHAOS", v)?);
        }
        if let Some(v) = flag_value(args, "--serve")? {
            cfg.serve = Some(parse_serve(&v)?);
        }
        if let Some(v) = flag_value(args, "--connect")? {
            cfg.connect = Some(parse_connect(&v)?);
        }
        if let Some(v) = flag_value(args, "--tenants")? {
            cfg.tenants = parse_tenants(&v)?;
        }
        if let Some(v) = flag_value(args, "--deadline-ms")? {
            cfg.deadline_ms = parse_deadline_ms_flag("--deadline-ms", &v)?;
        }
        if cfg.serve.is_some() && cfg.connect.is_some() {
            return Err(ConfigError::Parse {
                input: "--serve --connect".into(),
                expected: "at most one of --serve (run a server) and --connect (drive one)",
            });
        }
        if let Some(spec) = &cfg.chaos {
            if (spec.trunc > 0.0 || spec.junk > 0.0) && cfg.connect.is_none() {
                return Err(ConfigError::Parse {
                    input: format!("--chaos trunc={},junk={}", spec.trunc, spec.junk),
                    expected: "trunc=/junk= are wire-level faults; they need the networked \
                               harness (--connect ADDR or --connect self)",
                });
            }
        }
        Ok(cfg)
    }

    /// [`BrokerBenchConfig::try_from_args`] over the process arguments;
    /// a malformed flag is an actionable error on stderr and exit code 2.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match BrokerBenchConfig::try_from_args(&args) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Stable fingerprint of everything that determines the *predictions*
    /// artifact; recorded in `broker_manifest.json` so `--resume` against a
    /// different sweep recomputes instead of mixing configurations.
    #[must_use]
    pub fn fingerprint(&self, quality: &RunQuality) -> String {
        let rho: Vec<String> = self.rho.iter().map(|r| format!("{r}")).collect();
        format!(
            "broker threads={} rho={} shards={} r={} mu_n={MU_N} mu_s={MU_S} | {}",
            self.threads,
            rho.join(","),
            self.shards,
            self.total_resources(),
            quality.fingerprint()
        )
    }

    /// Size of the whole benchmarked pool: [`RESOURCES`] slots per logical
    /// shard. The model side uses the same total, so the model/measured
    /// ratio stays apples-to-apples at every shard count.
    #[must_use]
    pub fn total_resources(&self) -> usize {
        RESOURCES * self.shards
    }

    /// Per-worker arrival rate that offers `rho` of the pipeline's
    /// saturation throughput.
    #[must_use]
    pub fn lambda_at(&self, rho: f64) -> f64 {
        rho * saturation_capacity_for(self.total_resources()) / self.threads as f64
    }
}

/// Saturation throughput of the default (unsharded) bus–resource pipeline.
#[must_use]
pub fn saturation_capacity() -> f64 {
    saturation_capacity_for(RESOURCES)
}

/// Saturation throughput of a bus–resource pipeline with `resources`
/// slots, `µ_n · (1 − B(µ_n/µ_s, r))` — probed from the chain at
/// vanishing load.
#[must_use]
pub fn saturation_capacity_for(resources: usize) -> f64 {
    SharedBusChain::new(SharedBusParams {
        processors: 1,
        resources: resources as u32,
        lambda: 1e-9,
        mu_n: MU_N,
        mu_s: MU_S,
    })
    .expect("stable at vanishing load")
    .saturation_throughput()
}

/// Extracts `--flag v` / `--flag=v`; `Ok(None)` when absent, a typed error
/// when the flag is present without a value.
fn flag_value(args: &[String], flag: &'static str) -> Result<Option<String>, ConfigError> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(ConfigError::Parse {
                    input: flag.into(),
                    expected: "a value after the flag",
                }),
            };
        }
        if let Some(v) = a.strip_prefix(flag) {
            if let Some(v) = v.strip_prefix('=') {
                return Ok(Some(v.to_string()));
            }
        }
    }
    Ok(None)
}

fn parse_threads(v: &str) -> Result<usize, ConfigError> {
    match v.parse::<usize>() {
        Ok(n) if (1..=64).contains(&n) => Ok(n),
        _ => Err(ConfigError::Parse {
            input: format!("--threads {v}"),
            expected: "a worker-thread count between 1 and 64, e.g. --threads 6",
        }),
    }
}

fn parse_shards(v: &str) -> Result<usize, ConfigError> {
    match v.parse::<usize>() {
        Ok(n) if (1..=8).contains(&n) => Ok(n),
        _ => Err(ConfigError::Parse {
            input: format!("--shards {v}"),
            expected: "a logical shard count between 1 and 8, e.g. --shards 2",
        }),
    }
}

fn parse_duration_ms(v: &str) -> Result<u64, ConfigError> {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(ConfigError::Parse {
            input: format!("--duration-ms {v}"),
            expected: "a positive measured duration in milliseconds, e.g. --duration-ms 400",
        }),
    }
}

fn parse_serve(v: &str) -> Result<std::net::SocketAddr, ConfigError> {
    v.parse().map_err(|_| ConfigError::Parse {
        input: format!("--serve {v}"),
        expected: "a bind address like 127.0.0.1:7070 (port 0 picks one), e.g. --serve 127.0.0.1:0",
    })
}

fn parse_connect(v: &str) -> Result<NetTarget, ConfigError> {
    if v == "self" {
        return Ok(NetTarget::SelfServe);
    }
    v.parse()
        .map(NetTarget::Addr)
        .map_err(|_| ConfigError::Parse {
            input: format!("--connect {v}"),
            expected: "a server address like 127.0.0.1:7070, or `self` for an in-process \
                       loopback server, e.g. --connect self",
        })
}

fn parse_tenants(v: &str) -> Result<u8, ConfigError> {
    match v.parse::<u8>() {
        Ok(n) if (1..=8).contains(&n) => Ok(n),
        _ => Err(ConfigError::Parse {
            input: format!("--tenants {v}"),
            expected: "a tenant-class count between 1 and 8, e.g. --tenants 3",
        }),
    }
}

fn parse_deadline_ms_flag(flag: &str, v: &str) -> Result<u64, ConfigError> {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(ConfigError::Parse {
            input: format!("{flag} {v}"),
            expected: "a positive per-request deadline in milliseconds, e.g. --deadline-ms 100",
        }),
    }
}

fn parse_chaos(origin: &str, v: &str) -> Result<ChaosSpec, ConfigError> {
    ChaosSpec::parse(v).map_err(|detail| {
        eprintln!("note: {detail}");
        ConfigError::Parse {
            input: format!("{origin} {v}"),
            expected: "key=value pairs kill=<frac>, stall=<frac>, seed=<u64>, \
                       optional mtbf=/mttr= (e.g. kill=0.25,stall=0.125,seed=7)",
        }
    })
}

fn parse_rho(v: &str) -> Result<Vec<f64>, ConfigError> {
    let bad = || ConfigError::Parse {
        input: format!("--rho {v}"),
        expected: "a comma-separated list of loads in (0, 1), e.g. --rho 0.2,0.5,0.8",
    };
    let mut out = Vec::new();
    for part in v.split(',') {
        match part.trim().parse::<f64>() {
            Ok(r) if r > 0.0 && r < 1.0 => out.push(r),
            _ => return Err(bad()),
        }
    }
    if out.is_empty() {
        return Err(bad());
    }
    Ok(out)
}

/// The deterministic model-side artifact: chain curve + DES replication
/// interval per ρ. DES points are computed on `quality.jobs()` workers;
/// the result is byte-identical for every worker count (fixed per-point
/// seeds, emission in ρ order).
#[must_use]
pub fn predictions_experiment(cfg: &BrokerBenchConfig, quality: &RunQuality) -> Experiment {
    let p = cfg.threads;
    let r = cfg.total_resources();
    let opts = SimOptions {
        warmup_tasks: quality.warmup,
        measured_tasks: quality.measured,
    };
    let reps = quality.reps.max(2);
    let rows: Vec<(f64, f64, f64, f64)> = scope_map_indexed(cfg.rho.len(), quality.jobs(), |i| {
        let rho = cfg.rho[i];
        let lambda = cfg.lambda_at(rho);
        let chain = SharedBusChain::new(SharedBusParams {
            processors: p as u32,
            resources: r as u32,
            lambda,
            mu_n: MU_N,
            mu_s: MU_S,
        })
        .expect("rho < 1 keeps the chain stable")
        .solve()
        .expect("solves")
        .mean_queue_delay;
        let workload = Workload::new(lambda, MU_N, MU_S).expect("valid workload");
        let des = replicate(
            &SimRng::new(quality.seed ^ (0xB0_5E_u64 + i as u64)),
            reps,
            0.95,
            |_, mut rng| {
                let mut net = SharedBusNetwork::new(1, p, r as u32, Arbitration::RoundRobin);
                simulate(&mut net, &workload, &opts, &mut rng).mean_delay()
            },
        );
        let interval = des.interval.expect("at least two replications");
        (rho, chain, interval.mean, interval.half_width)
    });

    let mut e = Experiment::new(
        format!(
            "Runtime broker predictions: {p} processors, {r} resources, \
             mu_n = {MU_N}, mu_s = {MU_S}"
        ),
        "rho (offered load / saturation throughput)",
        "mean grant delay d (1/mu_s units)",
    );
    let mut chain_s = Series::new("chain (exact)");
    let mut des_s = Series::new("DES (95% CI)");
    for &(rho, chain, des_mean, hw) in &rows {
        chain_s.push(rho, chain);
        des_s.push_ci(rho, des_mean, hw);
    }
    e.add(chain_s);
    e.add(des_s);
    e
}

/// One ρ point of the measured leg.
#[derive(Clone, Debug)]
pub struct MeasuredPoint {
    /// The offered-load dial.
    pub rho: f64,
    /// Measured mean grant delay in model units.
    pub mean_delay: f64,
    /// Iid standard error of the mean (understates near saturation).
    pub std_error: f64,
    /// Completed measured acquisitions.
    pub measured: u64,
    /// Grants per wall second over the measured window.
    pub throughput: f64,
    /// Exclusivity violations flagged by the independent ledger.
    pub violations: u64,
    /// Fault-tolerance accounting, present iff the point ran under chaos.
    pub chaos: Option<ChaosAccounting>,
}

/// Fault-tolerance accounting of one chaos-mode measured point.
#[derive(Clone, Copy, Debug)]
pub struct ChaosAccounting {
    /// Worker threads crashed mid-protocol (scheduled and fired).
    pub crashed: usize,
    /// Stalls executed past the lease.
    pub stalled: usize,
    /// Leases reclaimed by the supervisor plus shutdown force-reclaims.
    pub reclaimed: u64,
    /// Grants after the last scheduled chaos event (liveness witness).
    pub post_chaos_grants: u64,
    /// Resources missing at shutdown plus grants still on the audit
    /// ledger — must be zero.
    pub leaked: u64,
}

/// Builds the per-point chaos options from the flat spec: a seeded client
/// plan inside the measured window, stalls 2.5 leases long (so the
/// supervisor must evict them), and an optional stochastic outage of
/// resource 0.
fn chaos_options(spec: &ChaosSpec, workers: usize, lc: &LoadConfig) -> ChaosOptions {
    let lease_units = CHAOS_LEASE.as_secs_f64() * 1e6 / SCALE_US;
    let window = (lc.warmup + 0.1 * lc.duration, lc.warmup + 0.5 * lc.duration);
    let plan = ChaosPlan::seeded(
        spec.seed,
        workers,
        spec.kill,
        spec.stall,
        window,
        2.5 * lease_units,
    );
    let mut opts = ChaosOptions::new(plan, CHAOS_LEASE);
    if let (Some(mtbf), Some(mttr)) = (spec.mtbf, spec.mttr) {
        opts.faults = FaultPlan::new().stochastic(StochasticFault {
            target: FaultTarget::Resource(0),
            mtbf,
            mttr,
        });
        opts.fault_seed = spec.seed ^ 0xFA17;
    }
    opts
}

/// Runs the measured leg: the SBUS broker under `cfg.threads` real worker
/// threads at each ρ, `cfg.duration_ms` of measured wall time per point.
/// `--shards N` (N > 1) swaps in a [`ShardedBroker`] over N per-shard SBUS
/// arbiters with the same total pool; the load generator's worker ids land
/// round-robin across the shards (home shard = `who % N`), so every shard
/// serves local requesters and overflow steals cross shards. With a chaos
/// spec the broker carries a [`CHAOS_LEASE`] lease and the chaos driver
/// injects the scheduled crashes, stalls, and outages.
#[must_use]
pub fn measure(cfg: &BrokerBenchConfig, quality: &RunQuality) -> Vec<MeasuredPoint> {
    let duration_units = (cfg.duration_ms as f64) * 1_000.0 / SCALE_US;
    let pool = cfg.total_resources();
    cfg.rho
        .iter()
        .map(|&rho| {
            let mut lc = LoadConfig::new(cfg.lambda_at(rho), MU_S);
            lc.mu_n = Some(MU_N);
            lc.scale_us = SCALE_US;
            lc.warmup = duration_units / 4.0;
            lc.duration = duration_units;
            lc.drain = 50.0;
            lc.seed = quality.seed ^ 0xB70B ^ ((rho * 1_000.0) as u64);
            let start = Instant::now();
            let chaos_leg = |broker: &dyn rsin_broker::Broker, spec: &ChaosSpec| {
                let opts = chaos_options(spec, cfg.threads, &lc);
                let r = run_load_chaos(broker, &lc, &opts);
                let leaked =
                    (pool.saturating_sub(r.available_at_end) + r.ledger_held_at_end) as u64;
                let acct = ChaosAccounting {
                    crashed: r.crashed,
                    stalled: r.stalled,
                    reclaimed: r.reclaimed + r.forced_reclaims,
                    post_chaos_grants: r.post_chaos_grants,
                    leaked,
                };
                (r.load, Some(acct))
            };
            let (report, chaos) = match (&cfg.chaos, cfg.shards) {
                (None, 1) => {
                    let broker = SbusBroker::new(cfg.threads, pool);
                    (run_load(&broker, &lc), None)
                }
                (None, shards) => {
                    let broker = ShardedBroker::sbus(cfg.threads, pool, shards);
                    (run_load(&broker, &lc), None)
                }
                (Some(spec), 1) => {
                    let broker = SbusBroker::with_lease(cfg.threads, pool, CHAOS_LEASE);
                    chaos_leg(&broker, spec)
                }
                (Some(spec), shards) => {
                    let broker =
                        ShardedBroker::sbus_with_lease(cfg.threads, pool, shards, CHAOS_LEASE);
                    chaos_leg(&broker, spec)
                }
            };
            let wall = start.elapsed().as_secs_f64();
            MeasuredPoint {
                rho,
                mean_delay: report.mean_delay(),
                std_error: report.delay.std_error(),
                measured: report.measured(),
                throughput: report.measured() as f64 / wall.max(1e-9),
                violations: report.violations,
                chaos,
            }
        })
        .collect()
}

/// Renders the measured leg next to the chain prediction.
#[must_use]
pub fn measured_table(cfg: &BrokerBenchConfig, points: &[MeasuredPoint]) -> String {
    let mut s = String::new();
    let shard_note = if cfg.shards > 1 {
        format!(" in {} shards", cfg.shards)
    } else {
        String::new()
    };
    let _ = writeln!(
        s,
        "Runtime broker, measured: SBUS, {} threads, {} resources{shard_note}, \
         {} ms per point (scale {SCALE_US} us/unit)",
        cfg.threads,
        cfg.total_resources(),
        cfg.duration_ms
    );
    let _ = writeln!(
        s,
        "{:>6} {:>12} {:>10} {:>8} {:>12} {:>12} {:>10}",
        "rho", "measured d", "iid se", "n", "grants/sec", "chain d", "violations"
    );
    for pt in points {
        let chain = SharedBusChain::new(SharedBusParams {
            processors: cfg.threads as u32,
            resources: cfg.total_resources() as u32,
            lambda: cfg.lambda_at(pt.rho),
            mu_n: MU_N,
            mu_s: MU_S,
        })
        .expect("stable")
        .solve()
        .expect("solves")
        .mean_queue_delay;
        let _ = writeln!(
            s,
            "{:>6.2} {:>12.4} {:>10.4} {:>8} {:>12.0} {:>12.4} {:>10}",
            pt.rho, pt.mean_delay, pt.std_error, pt.measured, pt.throughput, chain, pt.violations
        );
    }
    if points.iter().any(|p| p.chaos.is_some()) {
        let _ = writeln!(
            s,
            "Chaos accounting (lease {} ms):",
            CHAOS_LEASE.as_millis()
        );
        let _ = writeln!(
            s,
            "{:>6} {:>8} {:>8} {:>10} {:>12} {:>8}",
            "rho", "crashed", "stalled", "reclaimed", "post grants", "leaked"
        );
        for pt in points {
            let Some(c) = pt.chaos else { continue };
            let _ = writeln!(
                s,
                "{:>6.2} {:>8} {:>8} {:>10} {:>12} {:>8}",
                pt.rho, c.crashed, c.stalled, c.reclaimed, c.post_chaos_grants, c.leaked
            );
        }
    }
    s
}

/// Outcome of a [`run`] invocation.
#[derive(Debug)]
pub struct RunSummary {
    /// Whether the predictions artifact was resumed from disk.
    pub resumed_predictions: bool,
    /// Total exclusivity violations across the measured sweep (must be 0).
    pub violations: u64,
    /// Total resources/grants leaked through shutdown across chaos-mode
    /// points (must be 0; always 0 for healthy runs).
    pub leaked: u64,
}

const PREDICTIONS: &str = "broker_predictions";
const MEASURED: &str = "broker_measured";
const MANIFEST: &str = "broker_manifest.json";

/// Runs the benchmark end to end: predictions (resume-skippable, atomic,
/// digest-recorded in `broker_manifest.json`) then the measured sweep
/// (always recomputed — it is timing data). Artifacts land under
/// [`output::output_dir`] and the manifest is checkpointed after each leg.
///
/// # Errors
///
/// [`HarnessError::Io`] when an artifact or the manifest cannot be
/// persisted.
pub fn run(
    cfg: &BrokerBenchConfig,
    quality: &RunQuality,
    resume: bool,
) -> Result<RunSummary, HarnessError> {
    let dir = output::output_dir();
    let fp = cfg.fingerprint(quality);
    let manifest_path = dir.join(MANIFEST);
    let mut manifest = Manifest::new(fp.clone());

    let resumed_text = if resume {
        resumable_predictions(&manifest_path, &fp, &dir)
    } else {
        None
    };
    let resumed_predictions = resumed_text.is_some();
    let pred_entry = match resumed_text {
        Some((text, entry)) => {
            print!("{text}");
            eprintln!("resume: {PREDICTIONS} digests match; skipped recompute");
            entry
        }
        None => {
            let start = Instant::now();
            let e = predictions_experiment(cfg, quality);
            let text = output::render(&e);
            let csv = e.to_csv();
            print!("{text}");
            output::persist_in(&dir, PREDICTIONS, &text, Some(&csv))?;
            ManifestEntry {
                name: PREDICTIONS.into(),
                status: EntryStatus::Ok,
                digest: Some(fnv1a64(text.as_bytes())),
                csv_digest: Some(fnv1a64(csv.as_bytes())),
                duration_ms: start.elapsed().as_millis().try_into().unwrap_or(u64::MAX),
                attempts: 1,
                stalled: false,
                error: None,
            }
        }
    };
    manifest.entries.push(pred_entry);
    manifest.save(&manifest_path)?;

    let start = Instant::now();
    let points = measure(cfg, quality);
    let text = measured_table(cfg, &points);
    print!("{text}");
    output::persist_in(&dir, MEASURED, &text, None)?;
    manifest.entries.push(ManifestEntry {
        name: MEASURED.into(),
        status: EntryStatus::Ok,
        digest: Some(fnv1a64(text.as_bytes())),
        csv_digest: None,
        duration_ms: start.elapsed().as_millis().try_into().unwrap_or(u64::MAX),
        attempts: 1,
        stalled: false,
        error: None,
    });
    manifest.save(&manifest_path)?;

    Ok(RunSummary {
        resumed_predictions,
        violations: points.iter().map(|p| p.violations).sum(),
        leaked: points
            .iter()
            .filter_map(|p| p.chaos)
            .map(|c| c.leaked)
            .sum(),
    })
}

/// When resuming: the on-disk predictions text, provided the manifest's
/// fingerprint matches and both artifact digests still match the bytes on
/// disk. Any mismatch (or a missing manifest) silently recomputes.
fn resumable_predictions(
    manifest_path: &Path,
    fingerprint: &str,
    dir: &Path,
) -> Option<(String, ManifestEntry)> {
    let manifest = match Manifest::load(manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("resume: cold start ({e})");
            return None;
        }
    };
    if manifest.quality != fingerprint {
        eprintln!("resume: different sweep/quality fingerprint; recomputing");
        return None;
    }
    let entry = manifest.entry(PREDICTIONS)?.clone();
    if entry.status != EntryStatus::Ok {
        return None;
    }
    let text = std::fs::read_to_string(dir.join(format!("{PREDICTIONS}.txt"))).ok()?;
    if Some(fnv1a64(text.as_bytes())) != entry.digest {
        eprintln!("resume: {PREDICTIONS}.txt digest stale; recomputing");
        return None;
    }
    let csv = std::fs::read_to_string(dir.join(format!("{PREDICTIONS}.csv"))).ok()?;
    if Some(fnv1a64(csv.as_bytes())) != entry.csv_digest {
        eprintln!("resume: {PREDICTIONS}.csv digest stale; recomputing");
        return None;
    }
    Some((text, entry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_survive_an_empty_command_line() {
        let cfg = BrokerBenchConfig::try_from_args(&args(&["bin"])).expect("defaults");
        assert_eq!(cfg, BrokerBenchConfig::default());
    }

    #[test]
    fn all_flags_parse_in_both_spellings() {
        let cfg = BrokerBenchConfig::try_from_args(&args(&[
            "bin",
            "--threads",
            "4",
            "--duration-ms=250",
            "--rho",
            "0.3,0.7",
        ]))
        .expect("valid flags");
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.duration_ms, 250);
        assert_eq!(cfg.rho, vec![0.3, 0.7]);
        let eq = BrokerBenchConfig::try_from_args(&args(&["bin", "--threads=4"])).expect("eq");
        assert_eq!(eq.threads, 4);
    }

    #[test]
    fn malformed_threads_is_a_typed_actionable_error() {
        for bad in ["zero", "0", "65", "-3", ""] {
            let err = BrokerBenchConfig::try_from_args(&args(&["bin", "--threads", bad]))
                .expect_err("must reject");
            assert!(matches!(err, ConfigError::Parse { .. }));
            assert!(
                err.to_string().contains("--threads"),
                "error must name the flag: {err}"
            );
        }
        let err = BrokerBenchConfig::try_from_args(&args(&["bin", "--threads"]))
            .expect_err("missing value");
        assert!(err.to_string().contains("--threads"));
    }

    #[test]
    fn malformed_duration_is_a_typed_actionable_error() {
        for bad in ["soon", "0", "-1", "1.5"] {
            let err = BrokerBenchConfig::try_from_args(&args(&["bin", "--duration-ms", bad]))
                .expect_err("must reject");
            assert!(matches!(err, ConfigError::Parse { .. }));
            assert!(
                err.to_string().contains("--duration-ms"),
                "error must name the flag: {err}"
            );
        }
    }

    #[test]
    fn malformed_rho_is_a_typed_actionable_error() {
        for bad in ["", "1.0", "0", "0.5,nope", "0.2,,0.8", "-0.1"] {
            let err = BrokerBenchConfig::try_from_args(&args(&["bin", "--rho", bad]))
                .expect_err(&format!("must reject {bad:?}"));
            assert!(matches!(err, ConfigError::Parse { .. }));
            assert!(
                err.to_string().contains("--rho"),
                "error must name the flag: {err}"
            );
        }
    }

    #[test]
    fn shards_flag_parses_and_scales_the_pool() {
        let cfg =
            BrokerBenchConfig::try_from_args(&args(&["bin", "--shards", "2"])).expect("valid");
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.total_resources(), 2 * RESOURCES);
        let eq = BrokerBenchConfig::try_from_args(&args(&["bin", "--shards=4"])).expect("eq");
        assert_eq!(eq.shards, 4);
        let default = BrokerBenchConfig::default();
        assert_eq!(default.shards, 1);
        assert_eq!(default.total_resources(), RESOURCES);
    }

    #[test]
    fn malformed_shards_is_a_typed_actionable_error() {
        for bad in ["zero", "0", "9", "-1", "1.5", ""] {
            let err = BrokerBenchConfig::try_from_args(&args(&["bin", "--shards", bad]))
                .expect_err(&format!("must reject {bad:?}"));
            assert!(matches!(err, ConfigError::Parse { .. }));
            assert!(
                err.to_string().contains("--shards"),
                "error must name the flag: {err}"
            );
        }
        let err = BrokerBenchConfig::try_from_args(&args(&["bin", "--shards"]))
            .expect_err("missing value");
        assert!(err.to_string().contains("--shards"));
    }

    #[test]
    fn sharded_measured_leg_grants_cleanly_across_shards() {
        let cfg = BrokerBenchConfig {
            threads: 4,
            duration_ms: 100,
            rho: vec![0.5],
            shards: 2,
            chaos: None,
            ..BrokerBenchConfig::default()
        };
        let q = RunQuality::quick();
        let points = measure(&cfg, &q);
        assert_eq!(points.len(), 1);
        let pt = &points[0];
        assert_eq!(pt.violations, 0, "sharding must not break exclusivity");
        assert!(pt.measured > 0, "the sharded sweep must grant");
    }

    #[test]
    fn sharded_chaos_leg_reclaims_across_shards_without_leaking() {
        let cfg = BrokerBenchConfig {
            threads: 4,
            duration_ms: 150,
            rho: vec![0.4],
            shards: 2,
            chaos: Some(ChaosSpec::parse("kill=0.25,stall=0.25,seed=11").expect("valid")),
            ..BrokerBenchConfig::default()
        };
        let q = RunQuality::quick();
        let points = measure(&cfg, &q);
        let pt = &points[0];
        assert_eq!(pt.violations, 0, "chaos must not break exclusivity");
        let c = pt.chaos.expect("chaos accounting present");
        assert_eq!(c.crashed, 1, "kill=0.25 of 4 workers is one crash");
        assert!(c.reclaimed >= 1, "the dead worker's lease must come back");
        assert_eq!(c.leaked, 0, "sharded shutdown must recover every slot");
        assert!(c.post_chaos_grants > 0, "the sweep must outlive the chaos");
    }

    #[test]
    fn net_flags_parse_in_both_spellings() {
        let cfg = BrokerBenchConfig::try_from_args(&args(&[
            "bin",
            "--connect",
            "self",
            "--tenants",
            "4",
            "--deadline-ms=50",
        ]))
        .expect("valid net flags");
        assert_eq!(cfg.connect, Some(NetTarget::SelfServe));
        assert_eq!(cfg.tenants, 4);
        assert_eq!(cfg.deadline_ms, 50);

        let cfg = BrokerBenchConfig::try_from_args(&args(&["bin", "--connect=127.0.0.1:7070"]))
            .expect("addr target");
        assert_eq!(
            cfg.connect,
            Some(NetTarget::Addr("127.0.0.1:7070".parse().expect("addr")))
        );

        let cfg = BrokerBenchConfig::try_from_args(&args(&["bin", "--serve", "127.0.0.1:0"]))
            .expect("serve addr");
        assert_eq!(cfg.serve, Some("127.0.0.1:0".parse().expect("addr")));

        let default = BrokerBenchConfig::default();
        assert_eq!(default.serve, None);
        assert_eq!(default.connect, None);
        assert_eq!(default.tenants, 3);
        assert_eq!(default.deadline_ms, 100);
    }

    #[test]
    fn malformed_net_flags_are_typed_actionable_errors() {
        for (flag, bads) in [
            ("--serve", &["nowhere", "127.0.0.1", ":x", ""][..]),
            ("--connect", &["myself", "127.0.0.1", ""][..]),
            ("--tenants", &["0", "9", "many", "-1", ""][..]),
            ("--deadline-ms", &["0", "soon", "-5", "1.5", ""][..]),
        ] {
            for bad in bads {
                let err = BrokerBenchConfig::try_from_args(&args(&["bin", flag, bad]))
                    .expect_err(&format!("must reject {flag} {bad:?}"));
                assert!(matches!(err, ConfigError::Parse { .. }));
                assert!(
                    err.to_string().contains(flag),
                    "error must name the flag: {err}"
                );
            }
            let err =
                BrokerBenchConfig::try_from_args(&args(&["bin", flag])).expect_err("missing value");
            assert!(err.to_string().contains(flag));
        }
    }

    #[test]
    fn serve_and_connect_are_mutually_exclusive() {
        let err = BrokerBenchConfig::try_from_args(&args(&[
            "bin",
            "--serve",
            "127.0.0.1:0",
            "--connect",
            "self",
        ]))
        .expect_err("must reject both modes at once");
        assert!(matches!(err, ConfigError::Parse { .. }));
        assert!(err.to_string().contains("--serve"));
        assert!(err.to_string().contains("--connect"));
    }

    #[test]
    fn wire_chaos_requires_the_networked_mode() {
        let err = BrokerBenchConfig::try_from_args_with_env(
            &args(&["bin", "--chaos", "kill=0.25,trunc=0.25,seed=3"]),
            None,
        )
        .expect_err("trunc without --connect must be rejected");
        assert!(matches!(err, ConfigError::Parse { .. }));
        assert!(
            err.to_string().contains("trunc"),
            "error must name the wire fault: {err}"
        );

        let ok = BrokerBenchConfig::try_from_args_with_env(
            &args(&[
                "bin",
                "--connect",
                "self",
                "--chaos",
                "kill=0.25,trunc=0.125,junk=0.125,seed=3",
            ]),
            None,
        )
        .expect("wire chaos is valid in net mode");
        let spec = ok.chaos.expect("chaos set");
        assert_eq!(spec.trunc, 0.125);
        assert_eq!(spec.junk, 0.125);
    }

    #[test]
    fn chaos_flag_parses_and_env_is_the_fallback() {
        let cfg = BrokerBenchConfig::try_from_args_with_env(
            &args(&["bin", "--chaos", "kill=0.25,stall=0.125,seed=7"]),
            None,
        )
        .expect("valid spec");
        let spec = cfg.chaos.expect("chaos set");
        assert_eq!(spec.kill, 0.25);
        assert_eq!(spec.stall, 0.125);
        assert_eq!(spec.seed, 7);

        let env = BrokerBenchConfig::try_from_args_with_env(
            &args(&["bin"]),
            Some("kill=0.5,mtbf=40,mttr=8"),
        )
        .expect("valid env spec");
        let spec = env.chaos.expect("env chaos set");
        assert_eq!(spec.kill, 0.5);
        assert_eq!(spec.mtbf, Some(40.0));

        // The flag wins over the environment.
        let both = BrokerBenchConfig::try_from_args_with_env(
            &args(&["bin", "--chaos=kill=0.1"]),
            Some("kill=0.9"),
        )
        .expect("valid");
        assert_eq!(both.chaos.expect("set").kill, 0.1);

        // No flag, no env: the healthy driver.
        let healthy =
            BrokerBenchConfig::try_from_args_with_env(&args(&["bin"]), None).expect("valid");
        assert!(healthy.chaos.is_none());
    }

    #[test]
    fn malformed_chaos_is_a_typed_actionable_error() {
        for bad in ["", "kill=2", "bogus=1", "mtbf=40", "kill=0.6,stall=0.6"] {
            let err =
                BrokerBenchConfig::try_from_args_with_env(&args(&["bin", "--chaos", bad]), None)
                    .expect_err(&format!("must reject {bad:?}"));
            assert!(matches!(err, ConfigError::Parse { .. }));
            assert!(
                err.to_string().contains("--chaos"),
                "error must name the flag: {err}"
            );
        }
        let err = BrokerBenchConfig::try_from_args_with_env(&args(&["bin"]), Some("kill=2"))
            .expect_err("env spec must be validated too");
        assert!(matches!(err, ConfigError::Parse { .. }));
        assert!(
            err.to_string().contains("RSIN_BROKER_CHAOS"),
            "error must name the environment variable: {err}"
        );
        let err = BrokerBenchConfig::try_from_args(&args(&["bin", "--chaos"]))
            .expect_err("missing value");
        assert!(err.to_string().contains("--chaos"));
    }

    #[test]
    fn chaos_measured_leg_reclaims_and_keeps_granting() {
        let cfg = BrokerBenchConfig {
            threads: 4,
            duration_ms: 150,
            rho: vec![0.4],
            shards: 1,
            chaos: Some(ChaosSpec::parse("kill=0.25,stall=0.25,seed=11").expect("valid")),
            ..BrokerBenchConfig::default()
        };
        let q = RunQuality::quick();
        let points = measure(&cfg, &q);
        assert_eq!(points.len(), 1);
        let pt = &points[0];
        assert_eq!(pt.violations, 0, "chaos must not break exclusivity");
        let c = pt.chaos.expect("chaos accounting present");
        assert_eq!(c.crashed, 1, "kill=0.25 of 4 workers is one crash");
        assert_eq!(c.stalled, 1, "stall=0.25 of 4 workers is one stall");
        assert!(c.reclaimed >= 1, "the dead worker's lease must come back");
        assert_eq!(c.leaked, 0, "chaos shutdown must recover every resource");
        assert!(c.post_chaos_grants > 0, "the sweep must outlive the chaos");
    }

    #[test]
    fn lambda_tracks_rho_through_the_pipeline_capacity() {
        let cfg = BrokerBenchConfig::default();
        let cap = saturation_capacity();
        assert!(cap > 0.0 && cap < MU_N, "capacity below the bare bus rate");
        let lam = cfg.lambda_at(0.5);
        assert!((lam * cfg.threads as f64 - 0.5 * cap).abs() < 1e-12);
    }

    #[test]
    fn predictions_are_deterministic_across_jobs() {
        let cfg = BrokerBenchConfig {
            rho: vec![0.2, 0.5],
            ..BrokerBenchConfig::default()
        };
        let q = RunQuality {
            warmup: 100,
            measured: 500,
            reps: 2,
            ..RunQuality::quick()
        };
        let a = predictions_experiment(&cfg, &RunQuality { jobs: 1, ..q });
        let b = predictions_experiment(&cfg, &RunQuality { jobs: 4, ..q });
        assert_eq!(
            a.to_csv(),
            b.to_csv(),
            "worker count must not change results"
        );
        assert_eq!(output::render(&a), output::render(&b));
    }

    #[test]
    fn fingerprint_tracks_sweep_and_quality() {
        let cfg = BrokerBenchConfig::default();
        let q = RunQuality::quick();
        let base = cfg.fingerprint(&q);
        let other = BrokerBenchConfig {
            threads: 5,
            ..cfg.clone()
        };
        assert_ne!(base, other.fingerprint(&q));
        assert_ne!(base, cfg.fingerprint(&RunQuality { seed: 7, ..q }));
        // jobs never changes artifacts, so it must not change the print.
        assert_eq!(base, cfg.fingerprint(&RunQuality { jobs: 9, ..q }));
    }
}
