//! The parsing and comparison logic behind `perf_report --check`, as a
//! library so the gate's edge cases are unit-testable without timing
//! anything.
//!
//! `perf_report` persists `BENCH_perf.json` with a hand-rolled writer (one
//! `"name": value` pair per line); this module is the matching hand-rolled
//! reader plus the regression verdicts:
//!
//! - kernels present in the fresh run but absent from the committed
//!   baseline are **recorded, not failed** — adding a kernel must never
//!   turn the gate red ([`Verdict::Recorded`]);
//! - the parallel suite leg is `null` on a single-core host (a 1-worker
//!   "parallel" run measures scheduling overhead, not speedup), carries an
//!   explicit `"skipped_reason"`, and a skipped leg on either side of the
//!   comparison is skipped by the check rather than treated as a
//!   regression ([`LegStatus::Skipped`]).

/// A kernel this much slower than the committed baseline fails `--check`.
/// Wide enough to absorb shared-runner noise, tight enough to catch a real
/// hot-path regression.
pub const REGRESSION_TOLERANCE: f64 = 1.5;

/// The reason recorded (and re-parsed) for a skipped parallel suite leg on
/// a host with one CPU.
pub const SINGLE_CORE_REASON: &str = "single core";

/// How much slower the warm-started `sbus_rho_grid_warm_2x4` kernel may be
/// than its cold twin before `--check` fails. The two kernels do identical
/// useful work over the same grid; warm-starting exists to *save*
/// iterations, so warm materially above cold means the seeding path has
/// regressed into a pessimization. 10% head-room absorbs measurement noise
/// between two back-to-back floor measurements.
pub const WARM_START_TOLERANCE: f64 = 1.10;

/// Whether a warm-start timing regressed past its cold twin: `true` when
/// `warm > cold ×` [`WARM_START_TOLERANCE`]. Non-positive cold timings
/// (a parse failure upstream) never flag — the kernel gate owns those.
#[must_use]
pub fn warm_start_regressed(cold_ns: f64, warm_ns: f64) -> bool {
    cold_ns > 0.0 && warm_ns > cold_ns * WARM_START_TOLERANCE
}

/// One kernel's comparison against the committed baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelCheck {
    /// Kernel name as written to `kernels_ns_per_iter`.
    pub name: String,
    /// Freshly measured floor, ns/iter.
    pub fresh_ns: f64,
    /// How the kernel fared against the baseline.
    pub verdict: Verdict,
}

/// The outcome of comparing one kernel to the baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// Within [`REGRESSION_TOLERANCE`] of the baseline.
    Ok {
        /// Baseline floor, ns/iter.
        baseline_ns: f64,
        /// `fresh / baseline`.
        ratio: f64,
    },
    /// More than [`REGRESSION_TOLERANCE`]× slower than the baseline.
    Regressed {
        /// Baseline floor, ns/iter.
        baseline_ns: f64,
        /// `fresh / baseline`.
        ratio: f64,
    },
    /// Present in the fresh run but absent from the baseline (or the
    /// baseline entry is unusable): the fresh timing becomes the new
    /// baseline entry — recorded, not failed.
    Recorded,
}

/// Extracts `(name, ns_per_iter)` rows from the `kernels_ns_per_iter`
/// object of a previously written `BENCH_perf.json`. Hand-rolled to match
/// the hand-rolled writer — one `"name": value` pair per line.
#[must_use]
pub fn parse_baseline_kernels(json: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut in_kernels = false;
    for line in json.lines() {
        if line.contains("\"kernels_ns_per_iter\"") {
            in_kernels = true;
            continue;
        }
        if in_kernels {
            let entry = line.trim().trim_end_matches(',');
            if entry.starts_with('}') {
                break;
            }
            if let Some((name, value)) = entry.split_once(':') {
                if let Ok(ns) = value.trim().parse::<f64>() {
                    rows.push((name.trim().trim_matches('"').to_string(), ns));
                }
            }
        }
    }
    rows
}

/// Compares fresh kernel timings against the committed baseline JSON,
/// returning one verdict per fresh kernel in input order.
#[must_use]
pub fn check_kernels(baseline_json: &str, fresh: &[(&str, f64)]) -> Vec<KernelCheck> {
    let old = parse_baseline_kernels(baseline_json);
    fresh
        .iter()
        .map(|&(name, fresh_ns)| {
            let verdict = match old.iter().find(|(n, _)| n == name) {
                Some(&(_, baseline_ns)) if baseline_ns > 0.0 => {
                    let ratio = fresh_ns / baseline_ns;
                    if ratio > REGRESSION_TOLERANCE {
                        Verdict::Regressed { baseline_ns, ratio }
                    } else {
                        Verdict::Ok { baseline_ns, ratio }
                    }
                }
                _ => Verdict::Recorded,
            };
            KernelCheck {
                name: name.to_string(),
                fresh_ns,
                verdict,
            }
        })
        .collect()
}

/// Names of the kernels whose verdict is [`Verdict::Regressed`].
#[must_use]
pub fn regressed_names(checks: &[KernelCheck]) -> Vec<String> {
    checks
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::Regressed { .. }))
        .map(|c| c.name.clone())
        .collect()
}

/// The `suite` section of a perf report: wall-clock legs that may be
/// skipped (recorded as `null` plus a `skipped_reason`) rather than
/// measured.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuiteTimings {
    /// `--jobs 1` wall time, if the section was present and parseable.
    pub sequential_seconds: Option<f64>,
    /// Parallel-leg wall time; `None` when the leg was skipped or absent.
    pub parallel_seconds: Option<f64>,
    /// Why the parallel leg was skipped, when it was.
    pub skipped_reason: Option<String>,
}

/// Parses the `suite` object of a previously written `BENCH_perf.json`.
/// Tolerates `null` legs and the optional `skipped_reason` field; unknown
/// keys are ignored.
#[must_use]
pub fn parse_suite(json: &str) -> SuiteTimings {
    let mut out = SuiteTimings::default();
    let mut in_suite = false;
    for line in json.lines() {
        if line.contains("\"suite\"") {
            in_suite = true;
            continue;
        }
        if in_suite {
            let entry = line.trim().trim_end_matches(',');
            if entry.starts_with('}') {
                break;
            }
            let Some((key, value)) = entry.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "sequential_seconds" => out.sequential_seconds = value.parse().ok(),
                "parallel_seconds" => out.parallel_seconds = value.parse().ok(),
                "skipped_reason" if value != "null" => {
                    out.skipped_reason = Some(value.trim_matches('"').to_string());
                }
                _ => {}
            }
        }
    }
    out
}

/// Renders the `"suite"` object for the report writer. A skipped parallel
/// leg is written as `null` for both `parallel_seconds` and `speedup`,
/// plus an explicit machine-readable reason, so downstream tooling can
/// tell "skipped on purpose" from "field missing".
#[must_use]
pub fn suite_json(par_jobs: usize, seq_secs: f64, par: &ParallelLeg) -> String {
    let mut s = String::new();
    s.push_str("  \"suite\": {\n");
    s.push_str("    \"sequential_jobs\": 1,\n");
    s.push_str(&format!("    \"parallel_jobs\": {par_jobs},\n"));
    s.push_str(&format!("    \"sequential_seconds\": {seq_secs:.3},\n"));
    match *par {
        ParallelLeg::Measured(p) => {
            s.push_str(&format!("    \"parallel_seconds\": {p:.3},\n"));
            s.push_str(&format!("    \"speedup\": {:.3}\n", seq_secs / p.max(1e-9)));
        }
        ParallelLeg::Skipped { ref reason } => {
            s.push_str("    \"parallel_seconds\": null,\n");
            s.push_str("    \"speedup\": null,\n");
            s.push_str(&format!("    \"skipped_reason\": \"{reason}\"\n"));
        }
    }
    s.push_str("  },\n");
    s
}

/// A parallel suite leg as measured (or not) by the current run.
#[derive(Clone, Debug, PartialEq)]
pub enum ParallelLeg {
    /// Wall seconds of the parallel run.
    Measured(f64),
    /// The leg was not run, with the reason to persist.
    Skipped {
        /// Why — e.g. [`SINGLE_CORE_REASON`].
        reason: String,
    },
}

/// Whether the parallel suite leg participates in a baseline comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum LegStatus {
    /// Both the baseline and the fresh run measured the leg.
    Compared {
        /// Baseline wall seconds.
        baseline_secs: f64,
        /// Fresh wall seconds.
        fresh_secs: f64,
    },
    /// At least one side skipped the leg; the check skips it too instead
    /// of comparing a timing to a `null`.
    Skipped {
        /// The recorded reason, or `"not measured"` if none was persisted.
        reason: String,
    },
}

/// Decides whether `--check` compares the parallel leg. Either side having
/// skipped it (a `null` timing) makes the whole comparison a skip — never
/// a failure.
#[must_use]
pub fn parallel_leg_status(baseline: &SuiteTimings, fresh: &SuiteTimings) -> LegStatus {
    match (baseline.parallel_seconds, fresh.parallel_seconds) {
        (Some(baseline_secs), Some(fresh_secs)) => LegStatus::Compared {
            baseline_secs,
            fresh_secs,
        },
        _ => LegStatus::Skipped {
            reason: fresh
                .skipped_reason
                .clone()
                .or_else(|| baseline.skipped_reason.clone())
                .unwrap_or_else(|| "not measured".to_string()),
        },
    }
}

/// One point of the broker scaling curve: saturated grants/sec per
/// discipline at a given logical-shard count, stamped with the host's CPU
/// core count so `--check` never compares curves measured on different
/// machines.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Logical shards the pool was partitioned into.
    pub shards: usize,
    /// `available_parallelism` of the host that measured the point.
    pub cpu_cores: usize,
    /// `(discipline, grants_per_sec)` rows, in emission order.
    pub rates: Vec<(String, f64)>,
}

/// Parses the `scaling_grants_per_sec` object of a previously written
/// `BENCH_perf.json`. Hand-rolled to match [`scaling_json`]: one
/// `"shards_N": { "cpu_cores": C, "<discipline>": rate, ... }` object per
/// line. Unparseable lines are skipped; a missing section is an empty
/// curve.
#[must_use]
pub fn parse_scaling(json: &str) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    let mut in_scaling = false;
    for line in json.lines() {
        if line.contains("\"scaling_grants_per_sec\"") {
            in_scaling = true;
            continue;
        }
        if in_scaling {
            let entry = line.trim().trim_end_matches(',');
            if entry.starts_with('}') {
                break;
            }
            if let Some(point) = parse_scaling_point(entry) {
                points.push(point);
            }
        }
    }
    points
}

/// One `"shards_N": { ... }` line of the scaling section.
fn parse_scaling_point(entry: &str) -> Option<ScalingPoint> {
    let (name, body) = entry.split_once(':')?;
    let shards = name
        .trim()
        .trim_matches('"')
        .strip_prefix("shards_")?
        .parse::<usize>()
        .ok()?;
    let body = body.trim().strip_prefix('{')?.trim_end_matches(',');
    let body = body.trim().strip_suffix('}')?;
    let mut cpu_cores = None;
    let mut rates = Vec::new();
    for pair in body.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim().parse::<f64>().ok()?;
        if key == "cpu_cores" {
            cpu_cores = Some(value as usize);
        } else {
            rates.push((key.to_string(), value));
        }
    }
    Some(ScalingPoint {
        shards,
        cpu_cores: cpu_cores?,
        rates,
    })
}

/// Renders the `"scaling_grants_per_sec"` object for the report writer —
/// nested inside the `broker` section, one point per line so the
/// line-based [`parse_scaling`] round-trips it.
#[must_use]
pub fn scaling_json(points: &[ScalingPoint]) -> String {
    let mut s = String::new();
    s.push_str("    \"scaling_grants_per_sec\": {\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let mut fields = vec![format!("\"cpu_cores\": {}", p.cpu_cores)];
        fields.extend(
            p.rates
                .iter()
                .map(|(name, rate)| format!("\"{name}\": {rate:.0}")),
        );
        s.push_str(&format!(
            "      \"shards_{}\": {{ {} }}{comma}\n",
            p.shards,
            fields.join(", ")
        ));
    }
    s.push_str("    },\n");
    s
}

/// Whether one fresh scaling point participates in a baseline comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalingStatus {
    /// A baseline point with the same shard count was measured on a host
    /// with the same core count: per-discipline `fresh / baseline` ratios.
    Compared {
        /// `(discipline, fresh_rate / baseline_rate)` for every discipline
        /// present on both sides.
        ratios: Vec<(String, f64)>,
    },
    /// No comparable baseline point; the check skips it with the reason,
    /// exactly like the single-core parallel-leg skip.
    Skipped {
        /// Why the point is not compared.
        reason: String,
    },
}

/// Decides whether `--check` compares one fresh scaling point against the
/// baseline curve. Throughput only compares like for like: a missing
/// baseline point or a different host core count is a skip-with-reason,
/// never a failure.
#[must_use]
pub fn scaling_point_status(baseline: &[ScalingPoint], fresh: &ScalingPoint) -> ScalingStatus {
    let Some(old) = baseline.iter().find(|p| p.shards == fresh.shards) else {
        return ScalingStatus::Skipped {
            reason: format!("no baseline point for {} shard(s)", fresh.shards),
        };
    };
    if old.cpu_cores != fresh.cpu_cores {
        return ScalingStatus::Skipped {
            reason: format!(
                "core counts differ (baseline {}, fresh {})",
                old.cpu_cores, fresh.cpu_cores
            ),
        };
    }
    let ratios = fresh
        .rates
        .iter()
        .filter_map(|(name, fresh_rate)| {
            let (_, old_rate) = old.rates.iter().find(|(n, _)| n == name)?;
            (*old_rate > 0.0).then(|| (name.clone(), fresh_rate / old_rate))
        })
        .collect();
    ScalingStatus::Compared { ratios }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "preset": "quick",
  "cpu_cores": 1,
  "suite": {
    "sequential_jobs": 1,
    "parallel_jobs": 1,
    "sequential_seconds": 6.374,
    "parallel_seconds": null,
    "speedup": null,
    "skipped_reason": "single core"
  },
  "kernels_ns_per_iter": {
    "alpha": 100.0,
    "beta": 2000.5
  }
}
"#;

    #[test]
    fn parses_kernel_rows() {
        let rows = parse_baseline_kernels(BASELINE);
        assert_eq!(
            rows,
            vec![("alpha".to_string(), 100.0), ("beta".to_string(), 2000.5)]
        );
    }

    #[test]
    fn within_tolerance_is_ok_and_beyond_is_regressed() {
        let checks = check_kernels(BASELINE, &[("alpha", 149.0), ("beta", 3001.0)]);
        assert!(matches!(checks[0].verdict, Verdict::Ok { .. }));
        assert!(matches!(
            checks[1].verdict,
            Verdict::Regressed { baseline_ns, .. } if baseline_ns == 2000.5
        ));
        assert_eq!(regressed_names(&checks), vec!["beta".to_string()]);
    }

    #[test]
    fn missing_baseline_kernel_is_recorded_not_failed() {
        let checks = check_kernels(BASELINE, &[("brand_new_kernel", 42.0)]);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].verdict, Verdict::Recorded);
        assert!(
            regressed_names(&checks).is_empty(),
            "a new kernel must never fail the gate"
        );
    }

    #[test]
    fn zero_or_garbage_baseline_entries_are_recorded() {
        let json = "\"kernels_ns_per_iter\": {\n  \"alpha\": 0.0,\n  \"beta\": oops\n}\n";
        let checks = check_kernels(json, &[("alpha", 50.0), ("beta", 50.0)]);
        assert!(checks.iter().all(|c| c.verdict == Verdict::Recorded));
    }

    #[test]
    fn parses_suite_with_null_leg_and_reason() {
        let suite = parse_suite(BASELINE);
        assert_eq!(suite.sequential_seconds, Some(6.374));
        assert_eq!(suite.parallel_seconds, None);
        assert_eq!(suite.skipped_reason.as_deref(), Some(SINGLE_CORE_REASON));
    }

    #[test]
    fn suite_json_round_trips_both_legs() {
        let skipped = suite_json(
            4,
            6.0,
            &ParallelLeg::Skipped {
                reason: SINGLE_CORE_REASON.to_string(),
            },
        );
        assert!(skipped.contains("\"parallel_seconds\": null"));
        assert!(skipped.contains("\"speedup\": null"));
        let parsed = parse_suite(&skipped);
        assert_eq!(parsed.parallel_seconds, None);
        assert_eq!(parsed.skipped_reason.as_deref(), Some(SINGLE_CORE_REASON));

        let measured = suite_json(4, 6.0, &ParallelLeg::Measured(2.0));
        assert!(measured.contains("\"speedup\": 3.000"));
        assert!(!measured.contains("skipped_reason"));
        let parsed = parse_suite(&measured);
        assert_eq!(parsed.parallel_seconds, Some(2.0));
        assert_eq!(parsed.skipped_reason, None);
    }

    #[test]
    fn warm_start_gate_flags_only_material_slowdowns() {
        assert!(!warm_start_regressed(100.0, 100.0), "equal is fine");
        assert!(!warm_start_regressed(100.0, 109.0), "inside the head-room");
        assert!(warm_start_regressed(100.0, 111.0), "beyond the head-room");
        assert!(!warm_start_regressed(0.0, 50.0), "bad cold never flags");
    }

    const SCALING_BASELINE: &str = r#"{
  "broker": {
    "scaling_grants_per_sec": {
      "shards_1": { "cpu_cores": 1, "sbus": 100000, "xbar_token": 200000, "omega": 150000 },
      "shards_2": { "cpu_cores": 1, "sbus": 110000, "xbar_token": 210000, "omega": 160000 }
    },
    "kernels_ns_per_iter": {
      "alpha": 100.0
    }
  }
}
"#;

    #[test]
    fn scaling_curve_round_trips_through_the_writer() {
        let points = vec![
            ScalingPoint {
                shards: 1,
                cpu_cores: 1,
                rates: vec![("sbus".into(), 100_000.0), ("omega".into(), 150_000.0)],
            },
            ScalingPoint {
                shards: 4,
                cpu_cores: 2,
                rates: vec![("sbus".into(), 120_000.0), ("omega".into(), 170_000.0)],
            },
        ];
        let json = scaling_json(&points);
        assert_eq!(parse_scaling(&json), points);
    }

    #[test]
    fn parses_scaling_points_and_ignores_the_kernel_section() {
        let points = parse_scaling(SCALING_BASELINE);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].shards, 1);
        assert_eq!(points[0].cpu_cores, 1);
        assert_eq!(points[0].rates.len(), 3);
        assert_eq!(points[1].shards, 2);
        assert!(parse_scaling("{}\n").is_empty(), "missing section is empty");
    }

    #[test]
    fn scaling_points_compare_only_at_matching_shards_and_cores() {
        let baseline = parse_scaling(SCALING_BASELINE);
        let fresh = ScalingPoint {
            shards: 1,
            cpu_cores: 1,
            rates: vec![("sbus".into(), 50_000.0), ("brand_new".into(), 1.0)],
        };
        match scaling_point_status(&baseline, &fresh) {
            ScalingStatus::Compared { ratios } => {
                // Only the discipline on both sides is ratioed.
                assert_eq!(ratios.len(), 1);
                assert_eq!(ratios[0].0, "sbus");
                assert!((ratios[0].1 - 0.5).abs() < 1e-12);
            }
            other => panic!("expected a comparison, got {other:?}"),
        }

        let unknown_shards = ScalingPoint {
            shards: 4,
            ..fresh.clone()
        };
        assert_eq!(
            scaling_point_status(&baseline, &unknown_shards),
            ScalingStatus::Skipped {
                reason: "no baseline point for 4 shard(s)".to_string()
            }
        );

        let other_host = ScalingPoint {
            cpu_cores: 8,
            ..fresh
        };
        assert_eq!(
            scaling_point_status(&baseline, &other_host),
            ScalingStatus::Skipped {
                reason: "core counts differ (baseline 1, fresh 8)".to_string()
            }
        );
    }

    #[test]
    fn skipped_leg_on_either_side_skips_the_comparison() {
        let measured = SuiteTimings {
            sequential_seconds: Some(6.0),
            parallel_seconds: Some(2.0),
            skipped_reason: None,
        };
        let skipped = SuiteTimings {
            sequential_seconds: Some(6.0),
            parallel_seconds: None,
            skipped_reason: Some(SINGLE_CORE_REASON.to_string()),
        };
        assert_eq!(
            parallel_leg_status(&measured, &measured),
            LegStatus::Compared {
                baseline_secs: 2.0,
                fresh_secs: 2.0
            }
        );
        for (b, f) in [
            (&measured, &skipped),
            (&skipped, &measured),
            (&skipped, &skipped),
        ] {
            assert_eq!(
                parallel_leg_status(b, f),
                LegStatus::Skipped {
                    reason: SINGLE_CORE_REASON.to_string()
                },
                "a null leg must be skipped, not compared"
            );
        }
        let bare = SuiteTimings::default();
        assert_eq!(
            parallel_leg_status(&bare, &bare),
            LegStatus::Skipped {
                reason: "not measured".to_string()
            }
        );
    }
}
