//! The complete figure/table suite as a task list.
//!
//! `bin/all` and `bin/perf_report` both drive the suite through
//! [`run_suite`]: the tasks are computed concurrently on `quality.jobs()`
//! workers (each task is a pure function of the quality preset), and
//! [`emit_all`] then emits the artifacts in the fixed task order — so
//! stdout and the files under `target/experiments/` are byte-identical for
//! every worker count, `--jobs 1` included.

use crate::figures;
use crate::output;
use crate::quality::RunQuality;
use crate::tables;
use rsin_core::experiment::Experiment;

/// One computed suite artifact, ready to emit.
#[derive(Debug)]
pub enum SuiteOutput {
    /// A figure experiment, persisted as text + CSV.
    Figure(&'static str, Experiment),
    /// Free-form text, persisted as text only.
    Text(&'static str, String),
}

impl SuiteOutput {
    /// The artifact's output name (`fig04`, `table2`, ...).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SuiteOutput::Figure(n, _) | SuiteOutput::Text(n, _) => n,
        }
    }

    /// The text this artifact prints and persists.
    #[must_use]
    pub fn rendered(&self) -> String {
        match self {
            SuiteOutput::Figure(_, e) => output::render(e),
            SuiteOutput::Text(_, t) => t.clone(),
        }
    }
}

/// A suite task: a pure function from the quality preset to one artifact.
pub type Task = fn(&RunQuality) -> SuiteOutput;

/// A named suite task. The name is the artifact name the task will produce
/// (`spec.run(q).name() == spec.name`), known *before* the task runs — the
/// resilient harness keys resume manifests, chaos injection, and retry RNG
/// streams off it.
#[derive(Clone, Copy, Debug)]
pub struct TaskSpec {
    /// The artifact name (`fig04`, `table2`, ...).
    pub name: &'static str,
    /// The task function.
    pub run: Task,
}

fn fig04(q: &RunQuality) -> SuiteOutput {
    let mut e = figures::fig_sbus(0.1, 4);
    e.add(figures::sbus_sim_series("16/16x1x1 SBUS/2", 0.1, q));
    SuiteOutput::Figure("fig04", e)
}

fn fig05(q: &RunQuality) -> SuiteOutput {
    let mut e = figures::fig_sbus(1.0, 5);
    e.add(figures::sbus_sim_series("16/16x1x1 SBUS/2", 1.0, q));
    SuiteOutput::Figure("fig05", e)
}

fn fig07(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Figure("fig07", figures::fig_xbar(0.1, 7, q))
}

fn fig08(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Figure("fig08", figures::fig_xbar(1.0, 8, q))
}

fn fig12(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Figure("fig12", figures::fig_omega(0.1, 12, q))
}

fn fig13(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Figure("fig13", figures::fig_omega(1.0, 13, q))
}

fn table1(_q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("table1", tables::table1_text())
}

fn table2(q: &RunQuality) -> SuiteOutput {
    let mut t = tables::table2_text();
    t.push('\n');
    t.push_str(&tables::section6_text(q));
    SuiteOutput::Text("table2", t)
}

fn blocking(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("blocking", tables::blocking_text(q))
}

fn fig11(_q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("fig11", tables::fig11_text())
}

fn mapping_example(_q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("mapping_example", tables::mapping_example_text())
}

fn ablation_arbiter(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("ablation_arbiter", tables::ablation_arbiter_text(q))
}

fn ablation_stagger(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("ablation_stagger", tables::ablation_stagger_text(q))
}

fn ablation_freshness(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("ablation_freshness", tables::ablation_freshness_text(q))
}

fn ablation_wiring(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("ablation_wiring", tables::ablation_wiring_text(q))
}

fn ablation_placement(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("ablation_placement", tables::ablation_placement_text(q))
}

fn ablation_variability(q: &RunQuality) -> SuiteOutput {
    SuiteOutput::Text("ablation_variability", tables::ablation_variability_text(q))
}

/// The suite's tasks in emission order, each under its artifact name.
#[must_use]
pub fn task_specs() -> Vec<TaskSpec> {
    macro_rules! spec {
        ($($f:ident),* $(,)?) => {
            vec![$(TaskSpec { name: stringify!($f), run: $f }),*]
        };
    }
    spec![
        fig04,
        fig05,
        fig07,
        fig08,
        fig12,
        fig13,
        table1,
        table2,
        blocking,
        fig11,
        mapping_example,
        ablation_arbiter,
        ablation_stagger,
        ablation_freshness,
        ablation_wiring,
        ablation_placement,
        ablation_variability,
    ]
}

/// Computes every suite artifact on `quality.jobs()` workers, in emission
/// order. Pin `quality.jobs` to 1 for a fully sequential run — the returned
/// artifacts are identical either way.
#[must_use]
pub fn run_suite(quality: &RunQuality) -> Vec<SuiteOutput> {
    rsin_des::scope_map(&task_specs(), quality.jobs(), |_, t| (t.run)(quality))
}

/// Emits computed artifacts in order: stdout plus the files under
/// [`output::output_dir`]. Every artifact is printed even when some fail to
/// persist; the persistence failures are returned so callers can report
/// them and exit nonzero.
pub fn emit_all(outputs: &[SuiteOutput]) -> Vec<rsin_core::HarnessError> {
    let mut failures = Vec::new();
    for o in outputs {
        let r = match o {
            SuiteOutput::Figure(name, e) => output::emit(name, e),
            SuiteOutput::Text(name, t) => output::emit_text(name, t),
        };
        if let Err(e) = r {
            failures.push(e);
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunQuality {
        RunQuality {
            warmup: 20,
            measured: 120,
            reps: 2,
            trials: 200,
            ..RunQuality::quick()
        }
    }

    #[test]
    fn suite_covers_every_binary_artifact() {
        let q = RunQuality { reps: 1, ..tiny() };
        let specs = task_specs();
        assert_eq!(specs.len(), 17);
        for spec in &specs {
            assert_eq!(
                (spec.run)(&q).name(),
                spec.name,
                "spec name must match the artifact it produces"
            );
        }
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        for expected in ["fig04", "fig13", "table1", "table2", "blocking"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn parallel_suite_is_byte_identical_to_sequential() {
        let seq = run_suite(&RunQuality { jobs: 1, ..tiny() });
        let par = run_suite(&RunQuality { jobs: 4, ..tiny() });
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name(), p.name());
            assert_eq!(s.rendered(), p.rendered(), "artifact {}", s.name());
            if let (SuiteOutput::Figure(_, se), SuiteOutput::Figure(_, pe)) = (s, p) {
                assert_eq!(se.to_csv(), pe.to_csv(), "CSV for {}", s.name());
            }
        }
    }
}
