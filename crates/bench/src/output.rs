//! Output handling for the experiment binaries: print to stdout and persist
//! text + CSV under the experiment output directory.
//!
//! All persistence is **crash-safe**: every file is written to a temporary
//! sibling and atomically renamed into place, so a killed run never leaves a
//! half-written artifact behind — a reader (including `all --resume`) sees
//! either the complete previous version or the complete new one.

use rsin_core::experiment::Experiment;
use rsin_core::HarnessError;
use std::path::{Path, PathBuf};

/// Environment variable overriding the experiment output directory.
///
/// Takes precedence over `CARGO_TARGET_DIR`; lets CI chaos jobs and
/// concurrent local runs write to disjoint directories instead of racing on
/// `target/experiments/`.
pub const OUTPUT_DIR_ENV: &str = "RSIN_OUTPUT_DIR";

/// Directory where experiment outputs are persisted: `RSIN_OUTPUT_DIR` when
/// set, else `$CARGO_TARGET_DIR/experiments`, else `target/experiments`.
#[must_use]
pub fn output_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os(OUTPUT_DIR_ENV) {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    target.join("experiments")
}

/// The full text artifact of an experiment — the tables plus the ASCII
/// chart, exactly as [`emit`] prints and persists it.
#[must_use]
pub fn render(experiment: &Experiment) -> String {
    let mut text = experiment.to_text();
    text.push('\n');
    text.push_str(&experiment.to_ascii_chart(64, 16));
    text
}

/// Writes `bytes` to `path` atomically: the content goes to a temporary
/// sibling (`<name>.tmp.<pid>`) which is then renamed over `path`, so
/// concurrent readers and interrupted runs never observe a partial file.
///
/// # Errors
///
/// [`HarnessError::Io`] naming the failing operation and path.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), HarnessError> {
    fn io_err(op: &'static str, p: &Path, e: &std::io::Error) -> HarnessError {
        HarnessError::Io {
            op,
            path: p.display().to_string(),
            message: e.to_string(),
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| io_err("write", &tmp, &e))?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err("rename into", path, &e));
    }
    Ok(())
}

/// Persists an artifact under [`output_dir`]: `<name>.txt` always, plus
/// `<name>.csv` when `csv` is given. Both writes are atomic.
///
/// # Errors
///
/// [`HarnessError::Io`] on the first failing operation; an artifact is only
/// considered persisted when every one of its files landed.
pub fn persist(name: &str, text: &str, csv: Option<&str>) -> Result<(), HarnessError> {
    let dir = output_dir();
    persist_in(&dir, name, text, csv)
}

/// [`persist`] into an explicit directory (used by the resilient harness,
/// which pins the directory once per run).
///
/// # Errors
///
/// [`HarnessError::Io`] on the first failing operation.
pub fn persist_in(
    dir: &Path,
    name: &str,
    text: &str,
    csv: Option<&str>,
) -> Result<(), HarnessError> {
    std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
        op: "create dir",
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    atomic_write(&dir.join(format!("{name}.txt")), text.as_bytes())?;
    if let Some(csv) = csv {
        atomic_write(&dir.join(format!("{name}.csv")), csv.as_bytes())?;
    }
    Ok(())
}

/// Prints an experiment and writes `<name>.txt` / `<name>.csv` under
/// [`output_dir`]. The stdout copy is always produced, even when
/// persistence fails.
///
/// # Errors
///
/// [`HarnessError::Io`] when any artifact file cannot be written.
pub fn emit(name: &str, experiment: &Experiment) -> Result<(), HarnessError> {
    let text = render(experiment);
    print!("{text}");
    persist(name, &text, Some(&experiment.to_csv()))
}

/// Prints free-form text and persists it as `<name>.txt`.
///
/// # Errors
///
/// [`HarnessError::Io`] when the artifact file cannot be written.
pub fn emit_text(name: &str, text: &str) -> Result<(), HarnessError> {
    print!("{text}");
    persist(name, text, None)
}

/// [`emit`] for single-artifact binaries: on persistence failure, reports
/// the error on stderr and exits the process with code 1, so scripted runs
/// can detect a missing artifact.
pub fn emit_or_exit(name: &str, experiment: &Experiment) {
    exit_on_error(emit(name, experiment));
}

/// [`emit_text`] with [`emit_or_exit`]'s exit-code contract.
pub fn emit_text_or_exit(name: &str, text: &str) {
    exit_on_error(emit_text(name, text));
}

fn exit_on_error(r: Result<(), HarnessError>) {
    if let Err(e) = r {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::experiment::Series;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rsin_output_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn emit_writes_files() {
        let mut e = Experiment::new("t", "x", "y");
        let mut s = Series::new("s");
        s.push(0.1, 1.0);
        e.add(s);
        emit("unit_test_artifact", &e).expect("emit persists");
        let dir = output_dir();
        assert!(dir.join("unit_test_artifact.txt").exists());
        assert!(dir.join("unit_test_artifact.csv").exists());
        let _ = std::fs::remove_file(dir.join("unit_test_artifact.txt"));
        let _ = std::fs::remove_file(dir.join("unit_test_artifact.csv"));
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp() {
        let dir = scratch_dir("atomic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("artifact.txt");
        atomic_write(&path, b"first").expect("first write");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_failure_is_a_typed_io_error() {
        let dir = scratch_dir("noexist").join("file-not-dir");
        std::fs::create_dir_all(dir.parent().expect("parent")).expect("mkdir");
        std::fs::write(&dir, b"a plain file where a dir is needed").expect("plant file");
        let err = persist_in(&dir, "x", "text", None).expect_err("dir is a file");
        match &err {
            HarnessError::Io { op, path, .. } => {
                assert!(!path.is_empty());
                assert!(!op.is_empty());
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir.parent().expect("parent"));
    }
}
