//! Output handling for the experiment binaries: print to stdout and persist
//! text + CSV under `target/experiments/`.

use rsin_core::experiment::Experiment;
use std::path::PathBuf;

/// Directory where experiment outputs are persisted.
#[must_use]
pub fn output_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    target.join("experiments")
}

/// The full text artifact of an experiment — the tables plus the ASCII
/// chart, exactly as [`emit`] prints and persists it.
#[must_use]
pub fn render(experiment: &Experiment) -> String {
    let mut text = experiment.to_text();
    text.push('\n');
    text.push_str(&experiment.to_ascii_chart(64, 16));
    text
}

/// Prints an experiment and writes `<name>.txt` / `<name>.csv` under
/// [`output_dir`]. IO failures are reported to stderr but do not abort the
/// run — the stdout copy is the primary artifact.
pub fn emit(name: &str, experiment: &Experiment) {
    let text = render(experiment);
    print!("{text}");
    persist(name, &text, Some(&experiment.to_csv()));
}

/// Prints free-form text and persists it as `<name>.txt`.
pub fn emit_text(name: &str, text: &str) {
    print!("{text}");
    persist(name, text, None);
}

fn persist(name: &str, text: &str, csv: Option<&str>) {
    let dir = output_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    if let Err(e) = std::fs::write(dir.join(format!("{name}.txt")), text) {
        eprintln!("warning: cannot write {name}.txt: {e}");
    }
    if let Some(csv) = csv {
        if let Err(e) = std::fs::write(dir.join(format!("{name}.csv")), csv) {
            eprintln!("warning: cannot write {name}.csv: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::experiment::Series;

    #[test]
    fn emit_writes_files() {
        let mut e = Experiment::new("t", "x", "y");
        let mut s = Series::new("s");
        s.push(0.1, 1.0);
        e.add(s);
        emit("unit_test_artifact", &e);
        let dir = output_dir();
        assert!(dir.join("unit_test_artifact.txt").exists());
        assert!(dir.join("unit_test_artifact.csv").exists());
        let _ = std::fs::remove_file(dir.join("unit_test_artifact.txt"));
        let _ = std::fs::remove_file(dir.join("unit_test_artifact.csv"));
    }
}
