//! # rsin-bench — experiment harness for the RSIN reproduction
//!
//! One regenerator per figure and table of Wah (1983), exposed both as
//! library functions (so tests can assert the *shapes* the paper reports)
//! and as binaries (so `cargo run -p rsin-bench --bin fig04` reproduces the
//! numbers; add `--full` for publication-quality runs):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig04` / `fig05` | single-shared-bus delay curves (analytic) |
//! | `fig07` / `fig08` | crossbar delay curves (simulation + approximations) |
//! | `fig12` / `fig13` | Omega delay curves (simulation) |
//! | `table1` | the crossbar cell truth table |
//! | `table2` | the network-selection rule + Section VI comparison |
//! | `blocking` | Section V blocking probabilities (RSIN vs address map) |
//! | `fig11` | the distributed-scheduling walkthrough |
//! | `mapping_example` | the Section II blocking example |
//! | `ablation_arbiter` / `ablation_stagger` | design-choice ablations |
//! | `broker_bench` | runtime-broker sweep cross-checked against the models |
//! | `provision` | cost-aware provisioning search over the config space |
//! | `all` | everything above in sequence |
//!
//! Micro-benchmarks (`cargo bench -p rsin-bench`, built on the in-tree
//! [`microbench`] harness) measure the implementation itself: the Markov
//! solvers, the gate-level crossbar wave, the Omega resolver, the DES
//! kernel, and an end-to-end simulation.
//!
//! The `resilience` binary runs the fault-injection experiment: delivered
//! throughput and normalized delay versus the number of failed network
//! elements, distributed versus centralized scheduling.

#![warn(missing_docs)]

pub mod broker_bench;
pub mod figures;
pub mod harness;
pub mod manifest;
pub mod microbench;
pub mod netbench;
pub mod output;
pub mod perfgate;
pub mod provision_bench;
pub mod quality;
pub mod resilience;
pub mod suite;
pub mod tables;

pub use quality::RunQuality;
