//! The provisioning sweep behind the `provision` binary: one search leg
//! per processor count, with digest-validated resumable checkpoints.
//!
//! Each leg runs [`rsin_provision::search`] at one `p` and persists two
//! deterministic artifacts — `provision_p<p>.txt` (the report) and
//! `provision_p<p>.csv` (the Pareto frontier, stable schema
//! [`FRONTIER_SCHEMA`]) — atomically, then checkpoints
//! `provision_manifest.json`. A killed sweep restarted with `--resume`
//! skips every leg whose manifest digests still match the files on disk
//! and recomputes the rest; final artifacts are byte-identical to an
//! uninterrupted run for any `--jobs` value (wall-clock timings live only
//! in the stderr summary, never in artifacts).

use crate::manifest::{fnv1a64, EntryStatus, Manifest, ManifestEntry};
use crate::output;
use rsin_core::{ConfigError, HarnessError};
use rsin_provision::{
    search, CostModel, DelayOutcome, EvalQuality, Evaluator, Family, SearchReport, SearchSpec,
    TrafficProfile,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The frontier CSV header — a stable schema CI asserts against.
pub const FRONTIER_SCHEMA: &str = "family,config,cost,normalized_delay,half_width,method";

/// Checkpoint file name under the output directory.
pub const MANIFEST_NAME: &str = "provision_manifest.json";

/// Parsed command line of the `provision` binary.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvisionConfig {
    /// Processor counts to search, one leg each.
    pub processors: Vec<u32>,
    /// Traffic intensity at the `R = 2p` reference pool.
    pub rho: f64,
    /// Service/transmission ratio `µ_s/µ_n`.
    pub ratio: f64,
    /// SLO: maximum normalized queueing delay.
    pub target: f64,
    /// Families to explore.
    pub families: Vec<Family>,
    /// Resource-axis budget per shape.
    pub max_r: u32,
    /// Confirm winners by DES.
    pub confirm: bool,
    /// Re-check winners with one resource port failed.
    pub fault_recheck: bool,
    /// Publication-grade simulation effort (`--full`).
    pub full: bool,
    /// Worker threads (0 = auto).
    pub jobs: usize,
    /// Skip digest-valid legs from a previous run.
    pub resume: bool,
    /// Output directory override.
    pub out_dir: Option<PathBuf>,
    /// Unit prices.
    pub cost: CostModel,
}

impl Default for ProvisionConfig {
    fn default() -> Self {
        ProvisionConfig {
            processors: vec![16],
            rho: 0.3,
            ratio: 0.1,
            target: 1.0,
            families: Family::ALL.to_vec(),
            max_r: 64,
            confirm: true,
            fault_recheck: false,
            full: false,
            jobs: 0,
            resume: false,
            out_dir: None,
            cost: CostModel::default(),
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ConfigError> {
    v.parse().map_err(|_| ConfigError::Parse {
        input: format!("{flag} {v}"),
        expected: "a number",
    })
}

fn parse_list<T: std::str::FromStr>(flag: &str, v: &str) -> Result<Vec<T>, ConfigError> {
    let mut out = Vec::new();
    for part in v.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        out.push(part.parse().map_err(|_| ConfigError::Parse {
            input: format!("{flag} {v}"),
            expected: "a comma-separated list",
        })?);
    }
    if out.is_empty() {
        return Err(ConfigError::Parse {
            input: format!("{flag} {v}"),
            expected: "a non-empty comma-separated list",
        });
    }
    Ok(out)
}

impl ProvisionConfig {
    /// Parses the binary's arguments.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] naming the offending flag and value.
    pub fn try_from_args(args: &[String]) -> Result<Self, ConfigError> {
        let mut cfg = ProvisionConfig::default();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, ConfigError> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| ConfigError::Parse {
                input: flag.to_string(),
                expected: "a value after the flag",
            })
        };
        while i < args.len() {
            let arg = args[i].clone();
            match arg.as_str() {
                "--p" => cfg.processors = parse_list("--p", &value(&mut i, "--p")?)?,
                "--rho" => cfg.rho = parse_num("--rho", &value(&mut i, "--rho")?)?,
                "--ratio" => cfg.ratio = parse_num("--ratio", &value(&mut i, "--ratio")?)?,
                "--target" => cfg.target = parse_num("--target", &value(&mut i, "--target")?)?,
                "--families" => {
                    cfg.families = parse_list("--families", &value(&mut i, "--families")?)?;
                }
                "--max-r" => cfg.max_r = parse_num("--max-r", &value(&mut i, "--max-r")?)?,
                "--jobs" => cfg.jobs = parse_num("--jobs", &value(&mut i, "--jobs")?)?,
                "--out-dir" => cfg.out_dir = Some(PathBuf::from(value(&mut i, "--out-dir")?)),
                "--cost-resource" => {
                    cfg.cost.per_resource =
                        parse_num("--cost-resource", &value(&mut i, "--cost-resource")?)?;
                }
                "--cost-switch-point" => {
                    cfg.cost.per_switch_point = parse_num(
                        "--cost-switch-point",
                        &value(&mut i, "--cost-switch-point")?,
                    )?;
                }
                "--cost-bus-tap" => {
                    cfg.cost.per_bus_tap =
                        parse_num("--cost-bus-tap", &value(&mut i, "--cost-bus-tap")?)?;
                }
                "--no-confirm" => cfg.confirm = false,
                "--fault-recheck" => cfg.fault_recheck = true,
                "--full" => cfg.full = true,
                "--quick" => cfg.full = false,
                "--resume" => cfg.resume = true,
                other => {
                    return Err(ConfigError::Parse {
                        input: other.to_string(),
                        expected: "a provision flag (--p, --rho, --ratio, --target, --families, \
                                   --max-r, --jobs, --out-dir, --cost-*, --no-confirm, \
                                   --fault-recheck, --full, --quick, --resume)",
                    });
                }
            }
            i += 1;
        }
        if !cfg.cost.is_valid() {
            return Err(ConfigError::Parse {
                input: "--cost-*".to_string(),
                expected: "finite non-negative unit prices",
            });
        }
        Ok(cfg)
    }

    /// [`ProvisionConfig::try_from_args`] over the process arguments; a
    /// malformed flag is an actionable message on stderr and exit code 2.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match ProvisionConfig::try_from_args(&args) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Identity of this sweep for manifest validation: a resumed run with
    /// any different search-relevant knob recomputes everything. `--jobs`,
    /// `--resume`, and `--out-dir` are deliberately excluded — they never
    /// change results.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let families: Vec<&str> = self.families.iter().map(Family::token).collect();
        format!(
            "rho={} ratio={} target={} families={} max_r={} confirm={} fault={} full={} \
             cost={}/{}/{}/{}",
            self.rho,
            self.ratio,
            self.target,
            families.join("+"),
            self.max_r,
            self.confirm,
            self.fault_recheck,
            self.full,
            self.cost.per_switch_point,
            self.cost.per_bus_tap,
            self.cost.per_resource,
            self.cost.per_processor,
        )
    }

    fn quality(&self) -> (EvalQuality, EvalQuality) {
        let jobs = if self.jobs == 0 {
            rsin_des::default_jobs()
        } else {
            self.jobs
        };
        if self.full {
            (
                EvalQuality {
                    warmup: 2_000,
                    measured: 16_000,
                    reps: 3,
                    jobs,
                },
                EvalQuality {
                    warmup: 5_000,
                    measured: 40_000,
                    reps: 5,
                    jobs,
                },
            )
        } else {
            (EvalQuality::quick(jobs), EvalQuality::confirm(jobs))
        }
    }

    fn spec_for(&self, p: u32) -> Result<SearchSpec, ConfigError> {
        let (quality, confirm_quality) = self.quality();
        let mut spec = SearchSpec::new(p, self.rho, self.ratio, self.target)?;
        spec.families = self.families.clone();
        spec.max_resources_per_port = self.max_r;
        spec.cost_model = self.cost;
        spec.quality = quality;
        spec.confirm = self.confirm.then_some(confirm_quality);
        spec.fault_recheck = self.fault_recheck;
        Ok(spec)
    }
}

/// What one leg contributed to the sweep.
#[derive(Clone, Debug)]
pub struct LegSummary {
    /// Leg name (`p16`, `p1024`, ...).
    pub name: String,
    /// Whether the leg was skipped via a digest-valid checkpoint.
    pub resumed: bool,
    /// The winning configuration, rendered (`None` when infeasible).
    pub winner: Option<String>,
    /// Configurations evaluated (0 for resumed legs).
    pub evaluated: u64,
    /// Enumerated configurations (0 for resumed legs).
    pub total_configs: u64,
    /// Configurations pruned by monotone inference.
    pub pruned: u64,
    /// Shared-bus cache hits during the leg.
    pub cache_hits: u64,
    /// Shared-bus cache misses during the leg.
    pub cache_misses: u64,
    /// Whether the DES confirmation (if run) found the winner meeting its
    /// delay target. This is the pass/fail signal: the analytic search
    /// decomposes multi-bus systems into independent per-bus chains, which
    /// is conservative for fabrics that actually share resources, so the
    /// simulated system may beat the predicted delay without that being
    /// an error.
    pub confirmed: Option<bool>,
    /// Whether the DES-measured delay also agreed numerically with the
    /// search's analytic estimate (informational; see [`Self::confirmed`]).
    pub agrees: Option<bool>,
}

/// The whole sweep's outcome.
#[derive(Clone, Debug)]
pub struct ProvisionSummary {
    /// Per-leg outcomes, in `--p` order.
    pub legs: Vec<LegSummary>,
    /// Output directory used.
    pub out_dir: PathBuf,
    /// Wall-clock seconds for the whole sweep (informational only; never
    /// part of any artifact).
    pub wall_seconds: f64,
}

impl ProvisionSummary {
    /// Legs skipped via checkpoint.
    #[must_use]
    pub fn resumed(&self) -> usize {
        self.legs.iter().filter(|l| l.resumed).count()
    }

    /// Total configurations evaluated across computed legs.
    #[must_use]
    pub fn evaluated(&self) -> u64 {
        self.legs.iter().map(|l| l.evaluated).sum()
    }

    /// Fraction of the enumerated space never evaluated.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        let total: u64 = self.legs.iter().map(|l| l.total_configs).sum();
        if total == 0 {
            0.0
        } else {
            (total - self.evaluated()) as f64 / total as f64
        }
    }

    /// Cache hit rate across computed legs.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.legs.iter().map(|l| l.cache_hits).sum();
        let misses: u64 = self.legs.iter().map(|l| l.cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// Renders the frontier CSV (schema [`FRONTIER_SCHEMA`]).
#[must_use]
pub fn frontier_csv(report: &SearchReport) -> String {
    let mut csv = String::from(FRONTIER_SCHEMA);
    csv.push('\n');
    for c in &report.frontier {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            c.topo.family_token(),
            c.topo,
            c.cost,
            c.delay.normalized_delay,
            c.delay.half_width,
            c.delay.method.token(),
        ));
    }
    csv
}

/// Renders the per-leg text report. Deterministic: full-precision floats,
/// no timestamps or wall-clock figures.
#[must_use]
pub fn leg_text(cfg: &ProvisionConfig, p: u32, report: &SearchReport) -> String {
    let mut t = String::new();
    t.push_str(&format!(
        "Provisioning search: p = {p}, rho = {}, mu_s/mu_n = {}, SLO d*mu_s <= {}\n",
        cfg.rho, cfg.ratio, cfg.target
    ));
    let families: Vec<&str> = cfg.families.iter().map(Family::token).collect();
    t.push_str(&format!(
        "families: {}; r <= {}\n\n",
        families.join(","),
        cfg.max_r
    ));
    match &report.winner {
        Some(w) => {
            t.push_str(&format!(
                "winner: {} cost {} delay {} ({})\n",
                w.topo,
                w.cost,
                w.delay.normalized_delay,
                w.delay.method.token()
            ));
        }
        None => t.push_str("winner: none (no feasible configuration in the searched space)\n"),
    }
    if let Some(c) = &report.confirmation {
        t.push_str(&format!(
            "confirmation (DES): delay {} +- {} meets_target={} agrees={}\n",
            c.normalized_delay, c.half_width, c.meets_target, c.agrees_with_search
        ));
    }
    if let Some(d) = &report.degraded {
        t.push_str(&format!(
            "degraded (1 port failed): delay {} +- {} meets_target={}\n",
            d.normalized_delay, d.half_width, d.meets_target
        ));
    }
    t.push_str(&format!(
        "\nspace: {} configs, {} evaluated, {} pruned infeasible, {} dominated \
         (pruned fraction {:.3})\n",
        report.total_configs,
        report.evaluated,
        report.pruned_infeasible,
        report.pruned_dominated,
        report.pruned_fraction()
    ));
    // Cache hit/miss counts are deliberately absent here: the solve cache
    // is process-global, so they depend on which legs ran in the same
    // process — an artifact resumed after a crash must still be
    // byte-identical to one from an uninterrupted run.
    t.push_str(&format!(
        "evaluator: {} analytic, {} DES, {} guard-rejected\n",
        report.eval.analytic, report.eval.des, report.eval.guarded,
    ));
    t.push_str("\nPareto frontier (cost-ascending):\n");
    for c in &report.frontier {
        t.push_str(&format!(
            "  {} cost {} delay {} ({})\n",
            c.topo,
            c.cost,
            c.delay.normalized_delay,
            c.delay.method.token()
        ));
    }
    t
}

fn leg_name(p: u32) -> String {
    format!("p{p}")
}

/// A leg checkpoint is valid when the entry is `Ok` and both artifact
/// files exist with matching digests.
fn leg_checkpoint_valid(dir: &Path, entry: &ManifestEntry) -> bool {
    if entry.status != EntryStatus::Ok {
        return false;
    }
    let check = |ext: &str, want: Option<u64>| -> bool {
        let Some(want) = want else { return false };
        std::fs::read(dir.join(format!("provision_{}.{ext}", entry.name)))
            .is_ok_and(|bytes| fnv1a64(&bytes) == want)
    };
    check("txt", entry.digest) && check("csv", entry.csv_digest)
}

/// Runs the sweep: one search leg per `--p`, checkpointed after each.
///
/// # Errors
///
/// [`HarnessError::Io`] when an artifact or the manifest cannot be
/// persisted, and [`HarnessError::Config`] when a leg's spec is invalid
/// (e.g. `2p` overflows).
pub fn run(cfg: &ProvisionConfig) -> Result<ProvisionSummary, HarnessError> {
    let start = Instant::now();
    let dir = cfg.out_dir.clone().unwrap_or_else(output::output_dir);
    std::fs::create_dir_all(&dir).map_err(|e| HarnessError::Io {
        op: "create dir",
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let manifest_path = dir.join(MANIFEST_NAME);
    let fingerprint = cfg.fingerprint();
    let mut manifest = if cfg.resume {
        match Manifest::load(&manifest_path) {
            Ok(m) if m.quality == fingerprint => m,
            _ => Manifest::new(fingerprint.clone()),
        }
    } else {
        Manifest::new(fingerprint.clone())
    };
    let mut legs = Vec::new();
    for &p in &cfg.processors {
        let name = leg_name(p);
        if cfg.resume {
            if let Some(entry) = manifest.entry(&name) {
                if leg_checkpoint_valid(&dir, entry) {
                    legs.push(LegSummary {
                        name,
                        resumed: true,
                        winner: None,
                        evaluated: 0,
                        total_configs: 0,
                        pruned: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        confirmed: None,
                        agrees: None,
                    });
                    continue;
                }
            }
        }
        let spec = cfg.spec_for(p).map_err(HarnessError::Config)?;
        let leg_start = Instant::now();
        let report = search(&spec).map_err(HarnessError::Config)?;
        let text = leg_text(cfg, p, &report);
        let csv = frontier_csv(&report);
        let artifact = format!("provision_{name}");
        output::persist_in(&dir, &artifact, &text, Some(&csv))?;
        manifest.entries.retain(|e| e.name != name);
        manifest.entries.push(ManifestEntry {
            name: name.clone(),
            status: EntryStatus::Ok,
            digest: Some(fnv1a64(text.as_bytes())),
            csv_digest: Some(fnv1a64(csv.as_bytes())),
            duration_ms: u64::try_from(leg_start.elapsed().as_millis()).unwrap_or(u64::MAX),
            attempts: 1,
            stalled: false,
            error: None,
        });
        manifest.save(&manifest_path)?;
        legs.push(LegSummary {
            name,
            resumed: false,
            winner: report.winner.map(|w| w.topo.to_string()),
            evaluated: report.evaluated,
            total_configs: report.total_configs,
            pruned: report.pruned_infeasible + report.pruned_dominated,
            cache_hits: report.cache_hits,
            cache_misses: report.cache_misses,
            confirmed: report.confirmation.map(|c| c.meets_target),
            agrees: report.confirmation.map(|c| c.agrees_with_search),
        });
    }
    Ok(ProvisionSummary {
        legs,
        out_dir: dir,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// The `provisioning` section of `BENCH_perf.json`: a tiny bounded
/// analytic search whose counters describe the optimizer's behavior.
/// Informational — wall time varies by host; the counters do not.
#[must_use]
pub fn perf_section() -> (f64, SearchReport) {
    let mut spec = SearchSpec::new(16, 0.3, 0.1, 1.0).expect("static spec is valid");
    spec.families = vec![Family::Sbus];
    spec.max_resources_per_port = 32;
    spec.confirm = None;
    let start = Instant::now();
    let report = search(&spec).expect("static spec searches");
    (start.elapsed().as_secs_f64(), report)
}

/// Self-check used by tests and the smoke job: evaluating the winner
/// fresh reproduces the recorded delay exactly (analytic) or within CI
/// tolerance (DES).
#[must_use]
pub fn winner_reproduces(cfg: &ProvisionConfig, p: u32, report: &SearchReport) -> bool {
    let Some(w) = &report.winner else { return true };
    let Ok(profile) = TrafficProfile::reference(p, cfg.rho, cfg.ratio) else {
        return false;
    };
    let (quality, _) = cfg.quality();
    let mut ev = Evaluator::new(profile, quality);
    match ev.evaluate(&w.topo) {
        DelayOutcome::Value(v) => {
            let tol = v.half_width + w.delay.half_width + 1e-9 * w.delay.normalized_delay.abs();
            (v.normalized_delay - w.delay.normalized_delay).abs() <= tol.max(1e-12)
        }
        DelayOutcome::Saturated => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    fn tiny_cfg(dir: &Path) -> ProvisionConfig {
        ProvisionConfig {
            processors: vec![8, 16],
            target: 2.0,
            families: vec![Family::Sbus],
            max_r: 8,
            confirm: false,
            jobs: 1,
            out_dir: Some(dir.to_path_buf()),
            ..ProvisionConfig::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rsin-provision-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn args_parse_and_reject() {
        let cfg = ProvisionConfig::try_from_args(&args(&[
            "--p",
            "16,1024",
            "--rho",
            "0.25",
            "--families",
            "sbus,clx",
            "--max-r",
            "32",
            "--no-confirm",
            "--cost-resource",
            "4",
        ]))
        .expect("valid args");
        assert_eq!(cfg.processors, vec![16, 1024]);
        assert_eq!(cfg.families, vec![Family::Sbus, Family::Clustered]);
        assert!(!cfg.confirm);
        assert_eq!(cfg.cost.per_resource, 4.0);
        for bad in [
            &["--p", "zero"][..],
            &["--rho"][..],
            &["--bogus"][..],
            &["--families", "sbus,teleport"][..],
            &["--cost-resource", "-1"][..],
        ] {
            assert!(
                ProvisionConfig::try_from_args(&args(bad)).is_err(),
                "args {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn fingerprint_tracks_search_knobs_only() {
        let a = ProvisionConfig::default();
        let mut b = a.clone();
        b.jobs = 7;
        b.resume = true;
        assert_eq!(a.fingerprint(), b.fingerprint(), "jobs/resume excluded");
        let mut c = a.clone();
        c.target = 0.5;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn sweep_persists_resumes_and_reproduces() {
        let dir = temp_dir("sweep");
        let cfg = tiny_cfg(&dir);
        let s1 = run(&cfg).expect("sweep runs");
        assert_eq!(s1.resumed(), 0);
        assert!(s1.evaluated() > 0);
        let txt = std::fs::read_to_string(dir.join("provision_p16.txt")).expect("artifact");
        assert!(txt.contains("winner:"));
        let csv = std::fs::read_to_string(dir.join("provision_p16.csv")).expect("csv");
        assert!(csv.starts_with(FRONTIER_SCHEMA));
        // Resume skips both legs and leaves artifacts byte-identical.
        let mut cfg2 = cfg.clone();
        cfg2.resume = true;
        let s2 = run(&cfg2).expect("resume runs");
        assert_eq!(s2.resumed(), 2);
        assert_eq!(
            std::fs::read_to_string(dir.join("provision_p16.txt")).expect("artifact"),
            txt
        );
        // A different fingerprint invalidates the checkpoint.
        let mut cfg3 = cfg2.clone();
        cfg3.target *= 2.0;
        let s3 = run(&cfg3).expect("recompute runs");
        assert_eq!(s3.resumed(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifact_is_recomputed_on_resume() {
        let dir = temp_dir("corrupt");
        let cfg = tiny_cfg(&dir);
        run(&cfg).expect("sweep runs");
        std::fs::write(dir.join("provision_p8.txt"), b"tampered").expect("tamper");
        let mut cfg2 = cfg.clone();
        cfg2.resume = true;
        let s = run(&cfg2).expect("resume runs");
        let p8 = s.legs.iter().find(|l| l.name == "p8").expect("leg");
        assert!(!p8.resumed, "digest mismatch must force recompute");
        let p16 = s.legs.iter().find(|l| l.name == "p16").expect("leg");
        assert!(p16.resumed, "intact leg stays checkpointed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn perf_section_counts_a_real_search() {
        let (secs, report) = perf_section();
        assert!(secs >= 0.0);
        assert!(report.evaluated > 0);
        assert!(report.winner.is_some());
        assert_eq!(report.eval.des, 0, "the perf probe must stay analytic");
    }
}
