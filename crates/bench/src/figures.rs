//! Regenerators for the paper's delay figures (Figs. 4, 5, 7, 8, 12, 13).
//!
//! Every figure plots the normalized queueing delay `d·µ_s` of several
//! `16-processor / 32-resource` organizations against the traffic intensity
//! of the common reference system (`ρ = 16λ(1/(16µ_n) + 1/(32µ_s))`), at
//! a fixed transmission-to-service ratio `µ_s/µ_n`. Analytic curves come
//! from the shared-bus Markov chain; crossbar and Omega curves come from
//! replicated simulation with 95% intervals.

use crate::quality::RunQuality;
use rsin_core::experiment::{Experiment, Series};
use rsin_core::{estimate_delay_jobs, ResourceNetwork, SystemConfig, Workload};
use rsin_omega::{Admission, OmegaNetwork};
use rsin_queueing::{solve_shared_bus_cached, traffic, Mm1, SharedBusParams};
use rsin_sbus::Arbitration;
use rsin_sbus::SharedBusNetwork;
use rsin_xbar::{CrossbarNetwork, CrossbarPolicy};

/// Reference processor count used on every figure's x axis.
pub const REF_PROCESSORS: u32 = 16;
/// Reference resource count used on every figure's x axis.
pub const REF_RESOURCES: u32 = 32;

/// The ρ grid used across figures. The extra 0.05 point exists because at
/// `µ_s/µ_n = 1` a single 16-processor bus saturates by ρ ≈ 0.094.
#[must_use]
pub fn rho_grid() -> Vec<f64> {
    std::iter::once(0.05)
        .chain((1..=9).map(|i| i as f64 / 10.0))
        .collect()
}

/// Per-processor arrival rate for reference intensity `rho` at
/// service-to-transmission ratio `ratio` (with `µ_s = 1`).
#[must_use]
pub fn lambda_at(rho: f64, ratio: f64) -> f64 {
    let mu_s = 1.0;
    let mu_n = mu_s / ratio;
    traffic::lambda_for_intensity(REF_PROCESSORS, REF_RESOURCES, rho, mu_n, mu_s)
}

/// Workload at reference intensity `rho` and ratio `µ_s/µ_n`.
///
/// # Panics
///
/// Panics if the parameters are invalid (they are fixed by the figures).
#[must_use]
pub fn workload_at(rho: f64, ratio: f64) -> Workload {
    Workload::new(lambda_at(rho, ratio), 1.0 / ratio, 1.0)
        .expect("figure workloads are valid by construction")
}

/// Analytic shared-bus series: `partitions` buses, each with
/// `16/partitions` processors and `32/partitions` resources... generalized
/// to explicit `procs_per_bus`/`resources_per_bus`.
///
/// Solves through the process-wide solution cache: the same series shows up
/// on several figures (e.g. the `SBUS/2` curve on Figs. 4 and 12), and a
/// cache hit returns the stored solution verbatim, so the emitted artifacts
/// stay byte-identical to uncached solves.
fn sbus_series(label: &str, procs_per_bus: u32, resources_per_bus: u32, ratio: f64) -> Series {
    let mut s = Series::new(label);
    for rho in rho_grid() {
        let w = workload_at(rho, ratio);
        match solve_shared_bus_cached(SharedBusParams {
            processors: procs_per_bus,
            resources: resources_per_bus,
            lambda: w.lambda(),
            mu_n: w.mu_n(),
            mu_s: w.mu_s(),
        }) {
            Ok(sol) => s.push(rho, sol.normalized_delay),
            Err(_) => break, // saturated: the curve ends here, like the figure
        }
    }
    s
}

/// M/M/1 series: private bus to infinitely many resources.
fn mm1_series(label: &str, ratio: f64) -> Series {
    let mut s = Series::new(label);
    for rho in rho_grid() {
        let w = workload_at(rho, ratio);
        match Mm1::new(w.lambda(), w.mu_n()) {
            Ok(q) => s.push(rho, q.mean_wait_in_queue() * w.mu_s()),
            Err(_) => break,
        }
    }
    s
}

/// Simulated series for any configuration/factory pair.
///
/// The stable prefix of the ρ grid is computed up front (a pure function of
/// the configuration), then the grid points run concurrently on
/// `quality.jobs()` workers with replications inline — every point is a
/// pure function of `(rho, seed)`, so the series is byte-identical to a
/// sequential sweep.
pub(crate) fn sim_series<F>(
    label: &str,
    cfg: &SystemConfig,
    ratio: f64,
    quality: &RunQuality,
    factory: F,
) -> Series
where
    F: Fn(&SystemConfig) -> Box<dyn ResourceNetwork> + Sync,
{
    let mut s = Series::new(label);
    let opts = quality.sim_options();
    let rhos: Vec<f64> = rho_grid()
        .into_iter()
        .take_while(|&rho| stable_enough(cfg, &workload_at(rho, ratio)))
        .collect();
    let points = rsin_des::scope_map(&rhos, quality.jobs(), |_, &rho| {
        let w = workload_at(rho, ratio);
        estimate_delay_jobs(|| factory(cfg), &w, &opts, quality.seed, quality.reps, 1)
    });
    for (&rho, est) in rhos.iter().zip(points) {
        s.push_ci(rho, est.normalized_delay, est.half_width);
    }
    s
}

/// Conservative stability guard for simulated points: the offered load must
/// stay below ~95% of both the resource-pool capacity and the aggregate
/// bus-pipeline capacity (each output bus feeds `r` resources, stalling
/// with Erlang-B probability).
fn stable_enough(cfg: &SystemConfig, w: &Workload) -> bool {
    let total_arrival = cfg.processors() as f64 * w.lambda();
    let res_capacity = cfg.total_resources() as f64 * w.mu_s();
    let a = w.mu_n() / w.mu_s();
    let mut b = 1.0;
    for k in 1..=cfg.resources_per_port() {
        b = a * b / (k as f64 + a * b);
    }
    let bus_capacity = cfg.total_ports() as f64 * w.mu_n() * (1.0 - b);
    total_arrival < 0.95 * res_capacity.min(bus_capacity)
}

/// Figs. 4 and 5: normalized queueing delay of single-shared-bus systems.
#[must_use]
pub fn fig_sbus(ratio: f64, fig_no: u32) -> Experiment {
    let mut e = Experiment::new(
        format!("Fig. {fig_no}: single shared bus, mu_s/mu_n = {ratio}"),
        "rho",
        "normalized queueing delay d*mu_s (analytic, Markov chain)",
    );
    e.add(sbus_series("16/1x16x1 SBUS/32", 16, 32, ratio));
    e.add(sbus_series("16/2x8x1 SBUS/16", 8, 16, ratio));
    e.add(sbus_series("16/8x2x1 SBUS/4", 2, 4, ratio));
    e.add(sbus_series("16/16x1x1 SBUS/2", 1, 2, ratio));
    e.add(sbus_series("private r=3", 1, 3, ratio));
    e.add(sbus_series("private r=4", 1, 4, ratio));
    e.add(mm1_series("private r=inf (M/M/1)", ratio));
    e
}

/// Figs. 7 and 8: normalized queueing delay of crossbar systems.
#[must_use]
pub fn fig_xbar(ratio: f64, fig_no: u32, quality: &RunQuality) -> Experiment {
    let mut e = Experiment::new(
        format!("Fig. {fig_no}: multiple shared buses (crossbar), mu_s/mu_n = {ratio}"),
        "rho",
        "normalized queueing delay d*mu_s (simulation, 95% CI)",
    );
    let configs = [
        "16/1x16x32 XBAR/1",
        "16/1x16x16 XBAR/2",
        "16/4x4x8 XBAR/1",
        "16/4x4x4 XBAR/2",
    ];
    for cfg_str in configs {
        let cfg: SystemConfig = cfg_str.parse().expect("valid figure config");
        e.add(sim_series(cfg_str, &cfg, ratio, quality, |c| {
            Box::new(
                CrossbarNetwork::from_config(c, CrossbarPolicy::FixedPriority)
                    .expect("crossbar config"),
            )
        }));
    }
    // The paper's analytic approximations for the largest configuration.
    let mut light = Series::new("light-load approx (1x16x32)");
    let mut heavy = Series::new("heavy-load approx (1x16x32)");
    for rho in rho_grid() {
        let w = workload_at(rho, ratio);
        let params = rsin_queueing::approx::CrossbarParams {
            processors: 16,
            buses: 32,
            resources_per_bus: 1,
            lambda: w.lambda(),
            mu_n: w.mu_n(),
            mu_s: w.mu_s(),
        };
        if let Ok(sol) = rsin_queueing::approx::crossbar_light_load(&params) {
            light.push(rho, sol.normalized_delay);
        }
        if let Ok(sol) = rsin_queueing::approx::crossbar_heavy_load(&params) {
            heavy.push(rho, sol.normalized_delay);
        }
    }
    e.add(light);
    e.add(heavy);
    e
}

/// Figs. 12 and 13: normalized queueing delay of Omega systems.
#[must_use]
pub fn fig_omega(ratio: f64, fig_no: u32, quality: &RunQuality) -> Experiment {
    let mut e = Experiment::new(
        format!("Fig. {fig_no}: Omega networks, mu_s/mu_n = {ratio}"),
        "rho",
        "normalized queueing delay d*mu_s (simulation, 95% CI)",
    );
    let configs = ["16/1x16x16 OMEGA/2", "16/8x2x2 OMEGA/2", "16/4x4x4 OMEGA/2"];
    for cfg_str in configs {
        let cfg: SystemConfig = cfg_str.parse().expect("valid figure config");
        e.add(sim_series(cfg_str, &cfg, ratio, quality, |c| {
            Box::new(OmegaNetwork::from_config(c, Admission::Simultaneous).expect("omega config"))
        }));
    }
    // SBUS/2 overlay for cross-figure comparison (Section VI).
    e.add(sbus_series("16/16x1x1 SBUS/2 (analytic)", 1, 2, ratio));
    e
}

/// A simulated SBUS series (used to overlay simulation on Figs. 4/5 and to
/// validate the chain end to end).
#[must_use]
pub fn sbus_sim_series(cfg_str: &str, ratio: f64, quality: &RunQuality) -> Series {
    let cfg: SystemConfig = cfg_str.parse().expect("valid SBUS config");
    sim_series(&format!("{cfg_str} (sim)"), &cfg, ratio, quality, |c| {
        Box::new(SharedBusNetwork::from_config(c, Arbitration::FixedPriority).expect("sbus config"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_grid_is_increasing_in_unit_interval() {
        let g = rho_grid();
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(g.iter().all(|&r| r > 0.0 && r < 1.0));
    }

    #[test]
    fn fig4_shape_partitioning_helps_at_low_ratio() {
        // Fig. 4's headline: at µ_s/µ_n = 0.1 the delay is smaller as the
        // number of partitions increases (comparing at a common mid ρ).
        let e = fig_sbus(0.1, 4);
        let at = |i: usize| e.series[i].value_at_or_before(0.3).expect("point at 0.3");
        let one = at(0);
        let two = at(1);
        let eight = at(2);
        assert!(one > two, "1 partition {one} worse than 2 {two}");
        assert!(two > eight, "2 partitions {two} worse than 8 {eight}");
    }

    #[test]
    fn fig4_crossover_of_16_partitions() {
        // Fig. 4's "strange behavior": 16 partitions are worse than 2 below
        // ρ ≈ 0.64 (resources bottleneck) but approach the 8-partition curve
        // as ρ grows (bus bottleneck shifts).
        let e = fig_sbus(0.1, 4);
        let sixteen = &e.series[3];
        let two = &e.series[1];
        let low_16 = sixteen.value_at_or_before(0.3).expect("rho 0.3");
        let low_2 = two.value_at_or_before(0.3).expect("rho 0.3");
        assert!(
            low_16 > low_2,
            "below the crossover 16 partitions ({low_16}) lag 2 partitions ({low_2})"
        );
        // Both series still have points at ρ = 0.7 (2 partitions saturate
        // near 0.75); past the paper's ρ ≈ 0.64 crossover the order flips.
        let hi_16 = sixteen.value_at_or_before(0.7).expect("rho 0.7");
        let hi_2 = two.value_at_or_before(0.7).expect("rho 0.7");
        assert!(
            hi_16 < hi_2,
            "above the crossover 16 partitions ({hi_16}) beat 2 partitions ({hi_2})"
        );
    }

    #[test]
    fn fig4_private_resources_nearly_halve_delay() {
        // "the delay is almost halved as the number of private resources
        // ... is increased from 2 to 4".
        let e = fig_sbus(0.1, 4);
        let r2 = e.series[3].value_at_or_before(0.5).expect("r=2 at 0.5");
        let r4 = e.series[5].value_at_or_before(0.5).expect("r=4 at 0.5");
        assert!(
            r4 < 0.65 * r2,
            "r=4 ({r4}) should be near half of r=2 ({r2})"
        );
    }

    #[test]
    fn fig5_no_crossover_more_partitions_strictly_better() {
        // At µ_s/µ_n = 1.0 the bus is always the bottleneck: partitioning
        // helps monotonically and the crossover disappears.
        let e = fig_sbus(1.0, 5);
        // ρ = 0.05 is the only intensity every partitioning survives (a
        // single bus saturates at ρ ≈ 0.094 when µ_s/µ_n = 1).
        let vals: Vec<f64> = (0..4)
            .map(|i| e.series[i].value_at_or_before(0.05).expect("point"))
            .collect();
        assert!(
            vals.windows(2).all(|w| w[0] > w[1]),
            "partitions must help monotonically at rho=0.05: {vals:?}"
        );
    }

    #[test]
    fn fig5_infinite_resources_gain_is_small() {
        // "the improvement of using infinitely many resources is very small
        // due to the high data-transmission time."
        let e = fig_sbus(1.0, 5);
        let r4 = e.series[5].value_at_or_before(0.4).expect("r=4");
        let rinf = e.series[6].value_at_or_before(0.4).expect("r=inf");
        assert!(
            (r4 - rinf) / r4.max(1e-12) < 0.25,
            "r=inf ({rinf}) should barely beat r=4 ({r4}) at ratio 1.0"
        );
    }
}
