//! The resume manifest: per-task status, artifact digests, durations, and
//! retry counts, checkpointed atomically to `manifest.json` in the
//! experiment output directory.
//!
//! The manifest is what makes a long suite run *resumable*: the harness
//! rewrites it (atomically — see [`crate::output::atomic_write`]) after
//! every task, so a run killed at any instant leaves a manifest describing
//! exactly the artifacts that are complete on disk. `all --resume` then
//! skips every task whose recorded digest still matches the bytes in its
//! artifact files and recomputes the rest.
//!
//! Digests are 64-bit FNV-1a over the rendered artifact bytes — collisions
//! are irrelevant here (the digest guards against *truncation and staleness*,
//! not adversaries) and the hash needs no dependencies.
//!
//! Everything in the file is deterministic in the suite results except the
//! `duration_ms` fields; in particular the digests are byte-identical for
//! every worker count.

use rsin_core::HarnessError;
use std::fmt::Write as _;
use std::path::Path;

/// Manifest schema version; bump on incompatible changes so an old manifest
/// is recomputed rather than misread.
pub const MANIFEST_VERSION: u64 = 1;

/// 64-bit FNV-1a over `bytes`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a task ended, as recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryStatus {
    /// The task computed and all its artifacts were persisted.
    Ok,
    /// The task panicked/stalled terminally, or its artifacts could not be
    /// written. Resume recomputes it.
    Failed,
}

impl EntryStatus {
    fn as_str(self) -> &'static str {
        match self {
            EntryStatus::Ok => "ok",
            EntryStatus::Failed => "failed",
        }
    }
}

/// One task's record in the manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestEntry {
    /// The artifact name (`fig04`, `table2`, ...).
    pub name: String,
    /// Terminal status of the task in the recorded run.
    pub status: EntryStatus,
    /// FNV-1a digest of `<name>.txt`, when persisted.
    pub digest: Option<u64>,
    /// FNV-1a digest of `<name>.csv`, for figure tasks.
    pub csv_digest: Option<u64>,
    /// Wall-clock compute time, including retries and backoff.
    pub duration_ms: u64,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the watchdog flagged the task past its soft deadline or an
    /// attempt was abandoned at the hard deadline.
    pub stalled: bool,
    /// The terminal error, for failed entries.
    pub error: Option<String>,
}

/// The manifest: a quality fingerprint plus one entry per finished task, in
/// suite order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// [`crate::RunQuality::fingerprint`] of the run that produced the
    /// entries. Resume ignores manifests with a different fingerprint.
    pub quality: String,
    /// Finished tasks, in suite order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// An empty manifest for a run with the given quality fingerprint.
    #[must_use]
    pub fn new(quality_fingerprint: impl Into<String>) -> Self {
        Manifest {
            quality: quality_fingerprint.into(),
            entries: Vec::new(),
        }
    }

    /// The entry for `name`, if that task finished in the recorded run.
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serializes the manifest as JSON (one task object per line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": {MANIFEST_VERSION},");
        let _ = writeln!(s, "  \"quality\": {},", json_string(&self.quality));
        s.push_str("  \"tasks\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": {}, \"status\": \"{}\", \"digest\": {}, \"csv_digest\": {}, \
                 \"duration_ms\": {}, \"attempts\": {}, \"stalled\": {}, \"error\": {}}}{comma}",
                json_string(&e.name),
                e.status.as_str(),
                json_digest(e.digest),
                json_digest(e.csv_digest),
                e.duration_ms,
                e.attempts,
                e.stalled,
                e.error
                    .as_deref()
                    .map_or_else(|| "null".to_string(), json_string),
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a manifest produced by [`Manifest::to_json`] (or hand-edited
    /// equivalents).
    ///
    /// # Errors
    ///
    /// [`HarnessError::ManifestCorrupt`] when the text is not JSON, the
    /// schema version is unknown, or a required field is missing/mistyped.
    pub fn parse(text: &str, path: &Path) -> Result<Self, HarnessError> {
        let corrupt = |what: String| HarnessError::ManifestCorrupt {
            path: path.display().to_string(),
            what,
        };
        let root = json::parse(text).map_err(|e| corrupt(format!("not JSON: {e}")))?;
        let version = root
            .get("version")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| corrupt("missing numeric \"version\"".into()))?;
        if version != MANIFEST_VERSION {
            return Err(corrupt(format!(
                "schema version {version}, expected {MANIFEST_VERSION}"
            )));
        }
        let quality = root
            .get("quality")
            .and_then(json::Value::as_str)
            .ok_or_else(|| corrupt("missing string \"quality\"".into()))?
            .to_string();
        let tasks = root
            .get("tasks")
            .and_then(json::Value::as_array)
            .ok_or_else(|| corrupt("missing array \"tasks\"".into()))?;
        let mut entries = Vec::with_capacity(tasks.len());
        for (i, t) in tasks.iter().enumerate() {
            let field = |k: &str| {
                t.get(k)
                    .ok_or_else(|| corrupt(format!("task #{i}: missing \"{k}\"")))
            };
            let name = field("name")?
                .as_str()
                .ok_or_else(|| corrupt(format!("task #{i}: \"name\" not a string")))?
                .to_string();
            let status = match field("status")?.as_str() {
                Some("ok") => EntryStatus::Ok,
                Some("failed") => EntryStatus::Failed,
                other => {
                    return Err(corrupt(format!("task {name}: bad status {other:?}")));
                }
            };
            let digest =
                parse_digest(field("digest")?).map_err(|e| corrupt(format!("task {name}: {e}")))?;
            let csv_digest = parse_digest(field("csv_digest")?)
                .map_err(|e| corrupt(format!("task {name}: {e}")))?;
            let duration_ms = field("duration_ms")?
                .as_u64()
                .ok_or_else(|| corrupt(format!("task {name}: bad duration_ms")))?;
            let attempts = u32::try_from(
                field("attempts")?
                    .as_u64()
                    .ok_or_else(|| corrupt(format!("task {name}: bad attempts")))?,
            )
            .map_err(|_| corrupt(format!("task {name}: attempts out of range")))?;
            let stalled = field("stalled")?
                .as_bool()
                .ok_or_else(|| corrupt(format!("task {name}: bad stalled")))?;
            let error = match field("error")? {
                json::Value::Null => None,
                json::Value::Str(s) => Some(s.clone()),
                _ => return Err(corrupt(format!("task {name}: bad error"))),
            };
            entries.push(ManifestEntry {
                name,
                status,
                digest,
                csv_digest,
                duration_ms,
                attempts,
                stalled,
                error,
            });
        }
        Ok(Manifest { quality, entries })
    }

    /// Reads and parses the manifest at `path`.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] when the file cannot be read,
    /// [`HarnessError::ManifestCorrupt`] when it cannot be parsed.
    pub fn load(path: &Path) -> Result<Self, HarnessError> {
        let text = std::fs::read_to_string(path).map_err(|e| HarnessError::Io {
            op: "read",
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Manifest::parse(&text, path)
    }

    /// Atomically writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] when the write or rename fails.
    pub fn save(&self, path: &Path) -> Result<(), HarnessError> {
        crate::output::atomic_write(path, self.to_json().as_bytes())
    }
}

/// Renders a digest as `"fnv64:<16 hex digits>"`, or `null`.
fn json_digest(d: Option<u64>) -> String {
    d.map_or_else(|| "null".to_string(), |v| format!("\"fnv64:{v:016x}\""))
}

fn parse_digest(v: &json::Value) -> Result<Option<u64>, String> {
    match v {
        json::Value::Null => Ok(None),
        json::Value::Str(s) => {
            let hex = s
                .strip_prefix("fnv64:")
                .ok_or_else(|| format!("digest {s:?} lacks fnv64: prefix"))?;
            u64::from_str_radix(hex, 16)
                .map(Some)
                .map_err(|_| format!("digest {s:?} is not hex"))
        }
        _ => Err("digest is neither null nor a string".to_string()),
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal recursive-descent JSON parser — just enough for the manifest
/// (and deliberately dependency-free). Strings support the standard escape
/// set including `\uXXXX`; numbers parse as `f64`.
mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup (first match).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) =>
                {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut kv = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(kv));
            }
            loop {
                self.skip_ws();
                let k = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let v = self.value()?;
                kv.push((k, v));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(kv));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {}, found {:?}",
                            self.pos,
                            other.map(|c| c as char)
                        ));
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']' at byte {}, found {:?}",
                            self.pos,
                            other.map(|c| c as char)
                        ));
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                let hex =
                                    std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                self.pos += 4;
                                // Surrogate pairs are not needed for manifest
                                // content; map lone surrogates to U+FFFD.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => {
                                return Err(format!("unknown escape \\{}", other as char));
                            }
                        }
                    }
                    Some(_) => {
                        // Copy one UTF-8 scalar (strings are valid UTF-8
                        // because the input is a &str).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                        let c = s.chars().next().ok_or("empty scalar")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Manifest {
        Manifest {
            quality: "warmup=1000 measured=8000 reps=2 trials=2000 seed=1983".into(),
            entries: vec![
                ManifestEntry {
                    name: "fig04".into(),
                    status: EntryStatus::Ok,
                    digest: Some(0x1234_5678_9abc_def0),
                    csv_digest: Some(42),
                    duration_ms: 120,
                    attempts: 1,
                    stalled: false,
                    error: None,
                },
                ManifestEntry {
                    name: "fig07".into(),
                    status: EntryStatus::Failed,
                    digest: None,
                    csv_digest: None,
                    duration_ms: 2_000,
                    attempts: 3,
                    stalled: true,
                    error: Some("task fig07 panicked after 3 attempt(s): chaos".into()),
                },
            ],
        }
    }

    #[test]
    fn fnv_digest_is_stable_and_discriminating() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        // Known FNV-1a test vector.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"fig04 contents"), fnv1a64(b"fig04 content!"));
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = sample();
        let json = m.to_json();
        let back = Manifest::parse(&json, &PathBuf::from("m.json")).expect("parses");
        assert_eq!(back, m);
        assert_eq!(back.entry("fig07").expect("entry").attempts, 3);
        assert!(back.entry("nope").is_none());
    }

    #[test]
    fn corrupt_manifests_are_typed_errors() {
        let p = PathBuf::from("m.json");
        for bad in [
            "",
            "{",
            "not json at all",
            "{\"version\": 99, \"quality\": \"q\", \"tasks\": []}",
            "{\"version\": 1, \"tasks\": []}",
            "{\"version\": 1, \"quality\": \"q\", \"tasks\": [{\"name\": \"x\"}]}",
        ] {
            let err = Manifest::parse(bad, &p).expect_err("must reject");
            assert!(
                matches!(err, HarnessError::ManifestCorrupt { .. }),
                "wrong error for {bad:?}: {err:?}"
            );
        }
    }

    #[test]
    fn save_and_load_are_atomic_and_faithful() {
        let dir = std::env::temp_dir().join(format!("rsin_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).expect("save");
        assert_eq!(Manifest::load(&path).expect("load"), m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_strings_with_escapes_roundtrip() {
        let mut m = sample();
        m.entries[1].error = Some("path \"C:\\tmp\"\nline2\ttab".into());
        let back = Manifest::parse(&m.to_json(), &PathBuf::from("m.json")).expect("parses");
        assert_eq!(back.entries[1].error, m.entries[1].error);
    }
}
