//! A tiny self-contained micro-benchmark harness.
//!
//! The workspace builds without network access, so the benches use this
//! `std::time::Instant`-based runner instead of an external harness. Each
//! `[[bench]]` target is a plain `fn main()` that calls [`bench`] (or
//! [`bench_with_setup`] when each iteration needs fresh state) and prints
//! one line per benchmark:
//!
//! ```text
//! calendar_schedule_pop_1k      42_113 ns/iter  (n = 2048)
//! ```
//!
//! The runner auto-calibrates the iteration count so each measurement
//! takes roughly [`TARGET_MEASURE_TIME`], reports the median of
//! [`SAMPLES`] samples, and is intentionally simple: no outlier rejection
//! or statistical tests, just a stable, dependency-free number for
//! before/after comparisons.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget for each measurement sample.
pub const TARGET_MEASURE_TIME: Duration = Duration::from_millis(40);

/// Number of measurement samples taken; the median is reported.
pub const SAMPLES: usize = 7;

/// Runs `f` repeatedly and prints the median per-iteration time.
///
/// The closure's return value is passed through [`black_box`] so the
/// computation cannot be optimised away.
pub fn bench<T, F: FnMut() -> T>(name: &str, f: F) {
    report(name, measure_ns(f) / 1e9);
}

/// Measures `f` like [`bench`] but returns the median per-iteration time in
/// nanoseconds instead of printing it.
pub fn measure_ns<T, F: FnMut() -> T>(f: F) -> f64 {
    measure_ns_with(Statistic::Median, f)
}

/// Measures `f` and returns the *minimum* per-iteration time over the
/// samples, in nanoseconds. The minimum is the classic noise-robust
/// estimator of a CPU-bound kernel's true cost — scheduler preemption and
/// frequency dips only ever inflate a sample — so `perf_report` persists
/// and regression-checks floor times rather than medians, which keeps the
/// 1.5x CI gate from tripping on shared-runner noise.
pub fn measure_ns_floor<T, F: FnMut() -> T>(f: F) -> f64 {
    measure_ns_with(Statistic::Min, f)
}

fn measure_ns_with<T, F: FnMut() -> T>(stat: Statistic, mut f: F) -> f64 {
    measure_with(stat, |iters| {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed()
    }) * 1e9
}

/// Like [`bench`], but re-creates the input with `setup` outside the
/// timed region of every iteration (the analogue of batched iteration).
pub fn bench_with_setup<S, T, Setup, F>(name: &str, mut setup: Setup, mut f: F)
where
    Setup: FnMut() -> S,
    F: FnMut(S) -> T,
{
    let per_iter = measure(|iters| {
        let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(f(input));
        }
        start.elapsed()
    });
    report(name, per_iter);
}

/// Which order statistic of the samples a measurement reports.
#[derive(Clone, Copy, Debug)]
enum Statistic {
    Median,
    Min,
}

/// Calibrates an iteration count against [`TARGET_MEASURE_TIME`], then
/// returns the median per-iteration duration over [`SAMPLES`] samples.
fn measure<F: FnMut(u64) -> Duration>(run: F) -> f64 {
    measure_with(Statistic::Median, run)
}

/// Calibrates an iteration count against [`TARGET_MEASURE_TIME`], then
/// returns the chosen order statistic of the per-iteration duration over
/// [`SAMPLES`] samples.
fn measure_with<F: FnMut(u64) -> Duration>(stat: Statistic, mut run: F) -> f64 {
    // Warm up and calibrate: grow the batch until it is long enough to
    // time reliably.
    let mut iters = 1u64;
    loop {
        let elapsed = run(iters);
        if elapsed >= TARGET_MEASURE_TIME / 4 || iters >= 1 << 24 {
            let scale = TARGET_MEASURE_TIME.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = ((iters as f64 * scale).ceil() as u64).clamp(1, 1 << 24);
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| run(iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(f64::total_cmp);
    match stat {
        Statistic::Median => samples[samples.len() / 2],
        Statistic::Min => samples[0],
    }
}

fn report(name: &str, per_iter_secs: f64) {
    let ns = per_iter_secs * 1e9;
    if ns >= 1e6 {
        println!("{name:<44} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<44} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{name:<44} {:>12.1} ns/iter", ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        let t = measure(|iters| {
            let start = Instant::now();
            let mut acc = 0u64;
            for i in 0..iters * 10 {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc);
            start.elapsed()
        });
        assert!(t > 0.0 && t.is_finite());
    }
}
