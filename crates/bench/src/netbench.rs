//! The networked-broker benchmark leg: `broker_bench --serve` runs a
//! [`NetServer`] front-end over a [`ShardedBroker`]; `--connect ADDR|self`
//! drives one with the multi-connection load harness and emits two
//! artifacts under the experiment output directory:
//!
//! - `net_plan` — the deterministic side: the sweep shape plus the seeded
//!   connection-chaos schedule, byte-identical for a given flag set, so it
//!   participates in the `broker_manifest.json` digest gate and `--resume`
//!   skips it when its digest still matches the file on disk.
//! - `net_measured` — the wire side (real TCP, wall clock): grant latency
//!   quantiles, saturated grants/sec, the per-tenant-class breakdown, and
//!   (in `self` mode) the server's own counters, ledger verdict, and leak
//!   inventory. Timing data, always recomputed.
//!
//! `--connect self` is the self-contained mode: an in-process server on a
//! loopback ephemeral port, driven and then shut down, which is the only
//! mode that can gate on the *server-side* exclusivity ledger — CI uses
//! it for the net-smoke sweep and the seeded connection-chaos leg. A
//! `--chaos` spec's `kill=`/`stall=` map to connection resets and
//! half-open stalls; `trunc=`/`junk=` inject wire-level garbage.

use crate::broker_bench::{BrokerBenchConfig, NetTarget, CHAOS_LEASE};
use crate::manifest::{fnv1a64, EntryStatus, Manifest, ManifestEntry};
use crate::output;
use crate::RunQuality;
use rsin_broker::net::{
    run_net_load, ConnChaos, NetChaosPlan, NetLoadConfig, NetLoadReport, NetServer,
    NetServerConfig, NetServerReport,
};
use rsin_broker::ShardedBroker;
use rsin_core::HarnessError;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

const NET_PLAN: &str = "net_plan";
const NET_MEASURED: &str = "net_measured";
const MANIFEST: &str = "broker_manifest.json";

/// Connection slots the server offers per configured client, so clients
/// reconnecting after chaos (their dead predecessor not yet culled) are
/// not refused at accept.
const SLOT_HEADROOM: usize = 2;

/// Half-open stalls injected by the chaos spec outlast the lease by this
/// factor, so only the supervisor can recover the grant.
const STALL_LEASES: u32 = 3;

/// Builds the wire-side load configuration from the benchmark flags. The
/// chaos window sits inside the first half of the run so reclamation and
/// recovery happen on camera.
#[must_use]
pub fn net_load_config(cfg: &BrokerBenchConfig, quality: &RunQuality) -> NetLoadConfig {
    let window = Duration::from_millis(cfg.duration_ms);
    let chaos = match &cfg.chaos {
        Some(spec) => NetChaosPlan::from_spec(
            spec,
            cfg.threads,
            (window.mul_f64(0.1), window.mul_f64(0.5)),
            STALL_LEASES * CHAOS_LEASE,
        ),
        None => NetChaosPlan::new(),
    };
    NetLoadConfig {
        clients: cfg.threads,
        tenants: cfg.tenants,
        window,
        deadline: Some(Duration::from_millis(cfg.deadline_ms)),
        hold: Duration::from_micros(200),
        mean_think: None,
        seed: quality.seed,
        chaos,
        ..NetLoadConfig::default()
    }
}

/// Stable fingerprint of everything that determines the `net_plan`
/// artifact; recorded in `broker_manifest.json` so `--resume` against a
/// different sweep recomputes instead of mixing configurations.
#[must_use]
pub fn net_fingerprint(cfg: &BrokerBenchConfig, quality: &RunQuality) -> String {
    let chaos = match &cfg.chaos {
        Some(s) => format!(
            "kill={},stall={},trunc={},junk={},seed={}",
            s.kill, s.stall, s.trunc, s.junk, s.seed
        ),
        None => "none".into(),
    };
    format!(
        "net clients={} tenants={} deadline_ms={} window_ms={} shards={} r={} chaos={} | {}",
        cfg.threads,
        cfg.tenants,
        cfg.deadline_ms,
        cfg.duration_ms,
        cfg.shards,
        cfg.total_resources(),
        chaos,
        quality.fingerprint()
    )
}

/// Renders the deterministic plan artifact: the sweep shape and the full
/// seeded chaos schedule. Byte-identical for a given flag set.
#[must_use]
pub fn plan_text(cfg: &BrokerBenchConfig, load: &NetLoadConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Networked broker plan: {} clients over {} tenant class(es), pool {} in {} shard(s)",
        load.clients,
        load.tenants,
        cfg.total_resources(),
        cfg.shards
    );
    let _ = writeln!(
        s,
        "deadline {} ms, window {} ms, lease {} ms",
        cfg.deadline_ms,
        cfg.duration_ms,
        CHAOS_LEASE.as_millis()
    );
    if load.chaos.is_empty() {
        let _ = writeln!(s, "chaos: none scheduled");
    } else {
        let _ = writeln!(
            s,
            "chaos: {} scheduled connection fault(s)",
            load.chaos.events().len()
        );
        let _ = writeln!(s, "{:>10} {:>7} kind", "at_us", "client");
        for e in load.chaos.events() {
            let kind = match e.kind {
                ConnChaos::Reset => "reset".to_string(),
                ConnChaos::Stall(d) => format!("stall {} ms", d.as_millis()),
                ConnChaos::Truncate => "truncate".to_string(),
                ConnChaos::Junk => "junk".to_string(),
            };
            let _ = writeln!(s, "{:>10} {:>7} {kind}", e.at.as_micros(), e.client);
        }
    }
    s
}

/// Renders the measured artifact: totals, latency quantiles, the
/// per-tenant-class breakdown, and the server-side verdict when one is
/// available (the `self` mode).
#[must_use]
pub fn measured_table(
    cfg: &BrokerBenchConfig,
    target: &str,
    report: &NetLoadReport,
    server: Option<&NetServerReport>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Networked broker, measured: {target}, {} clients, {} tenant class(es), pool {}",
        report.shards.len(),
        cfg.tenants,
        cfg.total_resources()
    );
    let _ = writeln!(
        s,
        "totals: {} grants ({:.0}/sec), {} shed, {} expired, {} busy, {} reconnects, \
         {} io errors, {} stale releases, {} chaos events",
        report.grants,
        report.grants_per_sec,
        report.rejected_shed,
        report.rejected_expired,
        report.rejected_busy,
        report.reconnects,
        report.io_errors,
        report.stale_releases,
        report.chaos_injected
    );
    let _ = writeln!(
        s,
        "grant latency us: p50 {:.0}  p99 {:.0}  p999 {:.0}  mean {:.0}",
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.99),
        report.latency_quantile_us(0.999),
        report.latency.mean()
    );
    let _ = writeln!(
        s,
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "class", "grants", "shed", "expired", "busy", "mean us"
    );
    for class in 0..cfg.tenants {
        let (mut grants, mut shed, mut expired, mut busy) = (0u64, 0u64, 0u64, 0u64);
        let mut latency = rsin_des::stats::Welford::new();
        for shard in report.shards.iter().filter(|sh| sh.tenant == class) {
            grants += shard.grants;
            shed += shard.rejected_shed;
            expired += shard.rejected_expired;
            busy += shard.rejected_busy;
            latency.merge(&shard.latency);
        }
        let _ = writeln!(
            s,
            "{class:>6} {grants:>8} {shed:>8} {expired:>8} {busy:>8} {:>10.0}",
            latency.mean()
        );
    }
    match server {
        Some(r) => {
            let _ = writeln!(
                s,
                "server: {} grants, {} reclaims (disconnect {}, lease {}, shutdown {}), \
                 {} protocol errors, {} violations, {} leaked",
                r.counters.grants,
                r.counters.reclaimed_disconnect
                    + r.counters.reclaimed_lease
                    + r.counters.reclaimed_shutdown,
                r.counters.reclaimed_disconnect,
                r.counters.reclaimed_lease,
                r.counters.reclaimed_shutdown,
                r.counters.protocol_errors,
                r.violations,
                r.leaked
            );
        }
        None => {
            let _ = writeln!(
                s,
                "server: external target — client-side statistics only \
                 (no ledger verdict; use --connect self to audit the server)"
            );
        }
    }
    s
}

/// Drives the load against an in-process loopback server and returns both
/// sides of the story. The server's pool matches the benchmark flags; its
/// connection capacity carries [`SLOT_HEADROOM`]× the client count so
/// post-chaos reconnects are not refused while the dead predecessor
/// awaits culling.
#[must_use]
pub fn measure_self(
    cfg: &BrokerBenchConfig,
    load: &NetLoadConfig,
) -> (NetLoadReport, NetServerReport) {
    let broker = ShardedBroker::sbus_with_lease(
        SLOT_HEADROOM * load.clients,
        cfg.total_resources(),
        cfg.shards,
        CHAOS_LEASE,
    );
    let server_cfg = NetServerConfig {
        tenants: cfg.tenants,
        lease: CHAOS_LEASE,
        ..NetServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0".parse().expect("loopback"), broker, server_cfg)
        .expect("bind loopback ephemeral port");
    let report = run_net_load(server.local_addr(), load);
    (report, server.stop())
}

/// Outcome of a [`run_net`] invocation.
#[derive(Debug)]
pub struct NetRunSummary {
    /// Whether the plan artifact was resumed from disk.
    pub resumed_plan: bool,
    /// Server-side exclusivity violations (0 in external mode, which
    /// cannot observe them).
    pub violations: u64,
    /// Slots still held after shutdown reclamation (0 in external mode).
    pub leaked: u64,
    /// Total grants measured — a run that never grants is broken even
    /// when nothing leaks.
    pub grants: u64,
}

/// Runs the networked benchmark end to end: the deterministic plan
/// (resume-skippable, digest-recorded in `broker_manifest.json`) then the
/// measured wire sweep (always recomputed). Artifacts land under
/// [`output::output_dir`].
///
/// # Errors
///
/// [`HarnessError::Io`] when an artifact or the manifest cannot be
/// persisted.
///
/// # Panics
///
/// Panics if `cfg.connect` is `None` — the caller dispatches on it.
pub fn run_net(
    cfg: &BrokerBenchConfig,
    quality: &RunQuality,
    resume: bool,
) -> Result<NetRunSummary, HarnessError> {
    let target = cfg.connect.expect("run_net requires --connect");
    let dir = output::output_dir();
    let fp = net_fingerprint(cfg, quality);
    let manifest_path = dir.join(MANIFEST);
    let mut manifest = Manifest::new(fp.clone());
    let load = net_load_config(cfg, quality);

    let resumed_text = if resume {
        resumable_plan(&manifest_path, &fp, &dir)
    } else {
        None
    };
    let resumed_plan = resumed_text.is_some();
    let plan_entry = match resumed_text {
        Some((text, entry)) => {
            print!("{text}");
            eprintln!("resume: {NET_PLAN} digests match; skipped recompute");
            entry
        }
        None => {
            let start = Instant::now();
            let text = plan_text(cfg, &load);
            print!("{text}");
            output::persist_in(&dir, NET_PLAN, &text, None)?;
            ManifestEntry {
                name: NET_PLAN.into(),
                status: EntryStatus::Ok,
                digest: Some(fnv1a64(text.as_bytes())),
                csv_digest: None,
                duration_ms: start.elapsed().as_millis().try_into().unwrap_or(u64::MAX),
                attempts: 1,
                stalled: false,
                error: None,
            }
        }
    };
    manifest.entries.push(plan_entry);
    manifest.save(&manifest_path)?;

    let start = Instant::now();
    let (report, server, label) = match target {
        NetTarget::SelfServe => {
            let (report, server) = measure_self(cfg, &load);
            (
                report,
                Some(server),
                "self (in-process loopback)".to_string(),
            )
        }
        NetTarget::Addr(addr) => (run_net_load(addr, &load), None, format!("{addr}")),
    };
    let text = measured_table(cfg, &label, &report, server.as_ref());
    print!("{text}");
    output::persist_in(&dir, NET_MEASURED, &text, None)?;
    manifest.entries.push(ManifestEntry {
        name: NET_MEASURED.into(),
        status: EntryStatus::Ok,
        digest: Some(fnv1a64(text.as_bytes())),
        csv_digest: None,
        duration_ms: start.elapsed().as_millis().try_into().unwrap_or(u64::MAX),
        attempts: 1,
        stalled: false,
        error: None,
    });
    manifest.save(&manifest_path)?;

    Ok(NetRunSummary {
        resumed_plan,
        violations: server.as_ref().map_or(0, |r| r.violations),
        leaked: server.as_ref().map_or(0, |r| r.leaked as u64),
        grants: report.grants,
    })
}

/// Runs the `--serve` mode: a networked front-end on `cfg.serve`, alive
/// until stdin reaches EOF (so a driver script holds the pipe open for as
/// long as it needs the server), then a clean shutdown whose report the
/// caller gates on.
///
/// # Errors
///
/// [`HarnessError::Io`] when the listener cannot bind.
///
/// # Panics
///
/// Panics if `cfg.serve` is `None` — the caller dispatches on it.
pub fn serve(cfg: &BrokerBenchConfig) -> Result<NetServerReport, HarnessError> {
    let addr = cfg.serve.expect("serve requires --serve");
    let broker = ShardedBroker::sbus_with_lease(
        SLOT_HEADROOM * cfg.threads,
        cfg.total_resources(),
        cfg.shards,
        CHAOS_LEASE,
    );
    let server_cfg = NetServerConfig {
        tenants: cfg.tenants,
        lease: CHAOS_LEASE,
        ..NetServerConfig::default()
    };
    let server = NetServer::bind(addr, broker, server_cfg).map_err(|e| HarnessError::Io {
        op: "bind",
        path: addr.to_string(),
        message: e.to_string(),
    })?;
    // Stdout so driver scripts can parse the bound (possibly ephemeral)
    // port; everything else in this binary reports on stderr.
    println!("broker_bench: serving on {}", server.local_addr());
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).unwrap_or(0) > 0 {
        sink.clear();
    }
    eprintln!("broker_bench: stdin closed; shutting the server down");
    Ok(server.stop())
}

/// When resuming: the on-disk plan text, provided the manifest's
/// fingerprint matches and the artifact digest still matches the bytes on
/// disk. Any mismatch (or a missing manifest) silently recomputes.
fn resumable_plan(
    manifest_path: &Path,
    fingerprint: &str,
    dir: &Path,
) -> Option<(String, ManifestEntry)> {
    let manifest = match Manifest::load(manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("resume: cold start ({e})");
            return None;
        }
    };
    if manifest.quality != fingerprint {
        eprintln!("resume: different net sweep/quality fingerprint; recomputing");
        return None;
    }
    let entry = manifest.entry(NET_PLAN)?.clone();
    if entry.status != EntryStatus::Ok {
        return None;
    }
    let text = std::fs::read_to_string(dir.join(format!("{NET_PLAN}.txt"))).ok()?;
    if Some(fnv1a64(text.as_bytes())) != entry.digest {
        eprintln!("resume: {NET_PLAN}.txt digest stale; recomputing");
        return None;
    }
    Some((text, entry))
}

/// A throwaway loopback server address for tests.
#[cfg(test)]
fn test_cfg() -> BrokerBenchConfig {
    BrokerBenchConfig {
        threads: 4,
        duration_ms: 150,
        shards: 2,
        tenants: 3,
        deadline_ms: 60,
        connect: Some(NetTarget::SelfServe),
        ..BrokerBenchConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_broker::ChaosSpec;

    #[test]
    fn plan_text_is_deterministic_and_carries_the_schedule() {
        let mut cfg = test_cfg();
        cfg.chaos =
            Some(ChaosSpec::parse("kill=0.25,stall=0.25,trunc=0.25,junk=0.25,seed=9").expect("ok"));
        let q = RunQuality::quick();
        let a = plan_text(&cfg, &net_load_config(&cfg, &q));
        let b = plan_text(&cfg, &net_load_config(&cfg, &q));
        assert_eq!(a, b, "same flags, same plan bytes");
        assert!(a.contains("4 scheduled connection fault(s)"), "{a}");
        for kind in ["reset", "stall", "truncate", "junk"] {
            assert!(a.contains(kind), "plan must list the {kind} event:\n{a}");
        }
        // The schedule is seeded by the chaos spec (not the harness
        // quality seed, which only drives think-time streams).
        let mut reseeded = cfg.clone();
        reseeded.chaos = Some(
            ChaosSpec::parse("kill=0.25,stall=0.25,trunc=0.25,junk=0.25,seed=10").expect("ok"),
        );
        let other = plan_text(&reseeded, &net_load_config(&reseeded, &q));
        assert_ne!(a, other, "the chaos seed must reshuffle the schedule");
    }

    #[test]
    fn net_fingerprint_tracks_the_wire_config() {
        let cfg = test_cfg();
        let q = RunQuality::quick();
        let base = net_fingerprint(&cfg, &q);
        let mut other = cfg.clone();
        other.tenants = 5;
        assert_ne!(base, net_fingerprint(&other, &q));
        let mut other = cfg.clone();
        other.deadline_ms = 200;
        assert_ne!(base, net_fingerprint(&other, &q));
        assert_ne!(base, net_fingerprint(&cfg, &RunQuality { seed: 7, ..q }));
    }

    #[test]
    fn self_serve_measures_grants_and_stays_clean() {
        let cfg = test_cfg();
        let q = RunQuality::quick();
        let load = net_load_config(&cfg, &q);
        let (report, server) = measure_self(&cfg, &load);
        assert!(report.grants > 0, "the loopback sweep must grant");
        assert_eq!(server.violations, 0, "ledger must stay clean");
        assert_eq!(server.leaked, 0, "no slot may leak");
        let table = measured_table(&cfg, "self", &report, Some(&server));
        assert!(table.contains("p99"), "{table}");
        assert!(table.contains("violations"), "{table}");
    }

    #[test]
    fn self_serve_chaos_reclaims_and_keeps_serving() {
        let mut cfg = test_cfg();
        cfg.duration_ms = 250;
        cfg.chaos =
            Some(ChaosSpec::parse("kill=0.25,stall=0.25,trunc=0.25,junk=0.25,seed=5").expect("ok"));
        let q = RunQuality::quick();
        let load = net_load_config(&cfg, &q);
        let (report, server) = measure_self(&cfg, &load);
        assert_eq!(report.chaos_injected, 4, "every scheduled fault must fire");
        assert!(report.grants > 0, "grants must continue through the chaos");
        assert_eq!(server.violations, 0, "ledger must stay clean under chaos");
        assert_eq!(server.leaked, 0, "every dead connection's grant reclaimed");
    }
}
