//! The resilient suite runner: panic isolation, watchdog deadlines,
//! deterministic retries, and crash-safe resumable checkpoints.
//!
//! [`crate::suite::run_suite`] computes the figure/table suite fast but
//! fragile: one panicking or hung task kills the whole run, and a killed
//! run starts over from scratch. This module wraps the same task list in
//! the discipline a production job runner applies to its workers:
//!
//! * **panic isolation** — every task attempt runs under `catch_unwind`
//!   (via [`rsin_des::run_supervised`]); a failing figure becomes a
//!   structured entry in the suite report while the rest of the suite
//!   completes and is emitted as a clearly marked degraded partial suite;
//! * **watchdog deadlines** — a monitor thread flags tasks running past a
//!   soft deadline derived from the [`RunQuality`] preset; attempts that
//!   outlive the hard deadline are abandoned and retried;
//! * **bounded deterministic retries** — panicking/stalled attempts are
//!   retried with capped exponential backoff whose jitter stream is seeded
//!   from the task *name*, so reruns replay the same schedule;
//! * **crash-safe checkpoints** — artifacts are persisted atomically the
//!   moment their task finishes, and `manifest.json` (see
//!   [`crate::manifest`]) is atomically rewritten after every task, so
//!   `all --resume` skips digest-valid artifacts and recomputes the rest,
//!   producing byte-identical final artifacts for any worker count;
//! * **chaos self-test hooks** — `RSIN_CHAOS=panic:<task>,stall:<task>,io`
//!   injects failures into the harness itself so tests and CI can prove
//!   the machinery above actually works.

use crate::manifest::{fnv1a64, EntryStatus, Manifest, ManifestEntry};
use crate::output;
use crate::quality::RunQuality;
use crate::suite::{task_specs, SuiteOutput, TaskSpec};
use rsin_core::{ConfigError, HarnessError};
use rsin_des::{run_supervised, scope_map, RetryPolicy, RunFailure};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable carrying the chaos spec (see [`ChaosPlan::parse`]).
pub const CHAOS_ENV: &str = "RSIN_CHAOS";

/// Environment variable overriding the soft deadline, in milliseconds; the
/// hard deadline stays [`HARD_DEADLINE_FACTOR`]× the soft one.
pub const DEADLINE_ENV: &str = "RSIN_TASK_DEADLINE_MS";

/// Hard deadline = soft deadline × this factor.
pub const HARD_DEADLINE_FACTOR: u32 = 4;

/// Failure injection into the harness itself — the self-test mode that
/// lets CI prove the isolation/retry/resume machinery works.
///
/// A plan is parsed from a comma-separated spec (normally the `RSIN_CHAOS`
/// environment variable):
///
/// * `panic:<task>` — every compute attempt of `<task>` panics (terminal
///   failure: exercises isolation, retry exhaustion, and the degraded
///   partial suite);
/// * `stall:<task>` — the *first* attempt of `<task>` sleeps past the hard
///   deadline (exercises watchdog abandonment and a successful retry);
/// * `io` — every artifact write fails (exercises persist error paths and
///   nonzero exit codes).
#[derive(Debug, Default)]
pub struct ChaosPlan {
    panic_tasks: HashSet<String>,
    stall_tasks: Mutex<HashSet<String>>,
    fail_io: bool,
}

impl ChaosPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Parses a chaos spec like `panic:fig07,stall:fig11,io`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] on an unknown directive.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let mut plan = ChaosPlan::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(task) = part.strip_prefix("panic:") {
                plan.panic_tasks.insert(task.to_string());
            } else if let Some(task) = part.strip_prefix("stall:") {
                plan.stall_tasks
                    .lock()
                    .expect("chaos lock")
                    .insert(task.to_string());
            } else if part == "io" {
                plan.fail_io = true;
            } else {
                return Err(ConfigError::Parse {
                    input: part.to_string(),
                    expected: "panic:<task>, stall:<task>, or io",
                });
            }
        }
        Ok(plan)
    }

    /// The plan from `RSIN_CHAOS`, or an inert plan when unset/empty.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] when the variable is set but malformed.
    pub fn from_env() -> Result<Self, ConfigError> {
        match std::env::var(CHAOS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => ChaosPlan::parse(&spec),
            _ => Ok(ChaosPlan::none()),
        }
    }

    /// Builder: every attempt of `task` panics.
    #[must_use]
    pub fn with_panic(mut self, task: &str) -> Self {
        self.panic_tasks.insert(task.to_string());
        self
    }

    /// Builder: the first attempt of `task` stalls past the hard deadline.
    #[must_use]
    pub fn with_stall(self, task: &str) -> Self {
        self.stall_tasks
            .lock()
            .expect("chaos lock")
            .insert(task.to_string());
        self
    }

    /// Builder: every artifact write fails.
    #[must_use]
    pub fn with_io_failures(mut self) -> Self {
        self.fail_io = true;
        self
    }

    /// True when the plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.fail_io
            || !self.panic_tasks.is_empty()
            || !self.stall_tasks.lock().expect("chaos lock").is_empty()
    }

    fn should_panic(&self, task: &str) -> bool {
        self.panic_tasks.contains(task)
    }

    /// Take-once: true on the first call per stalled task, so the retry
    /// after the abandoned attempt can demonstrate recovery.
    fn take_stall(&self, task: &str) -> bool {
        self.stall_tasks.lock().expect("chaos lock").remove(task)
    }

    fn io_fails(&self) -> bool {
        self.fail_io
    }
}

/// Configuration of one resilient suite run.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// The quality preset the tasks are computed at.
    pub quality: RunQuality,
    /// Skip tasks whose manifest digests still match the artifacts on disk.
    pub resume: bool,
    /// Where artifacts and `manifest.json` go.
    pub out_dir: PathBuf,
    /// Tasks running longer than this are flagged by the watchdog (the run
    /// continues).
    pub soft_deadline: Duration,
    /// Attempts running longer than this are abandoned and retried.
    pub hard_deadline: Duration,
    /// Retries after the first attempt of each task.
    pub max_retries: u32,
    /// Backoff before the first retry (doubles per retry, capped).
    pub backoff_base: Duration,
    /// Backoff cap.
    pub backoff_cap: Duration,
    /// Failure injection (inert by default).
    pub chaos: Arc<ChaosPlan>,
}

impl HarnessConfig {
    /// Deadlines and retry budget for a quality preset: the soft deadline
    /// scales with the measured-allocation count (60 s for the quick
    /// preset, 300 s for `--full`, clamped to `[30 s, 3600 s]`), the hard
    /// deadline is [`HARD_DEADLINE_FACTOR`]× that. No environment is
    /// consulted — see [`HarnessConfig::from_env`] for the binary entry
    /// point.
    #[must_use]
    pub fn new(quality: RunQuality) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let soft_secs = (quality.measured as f64 / 8_000.0 * 60.0).clamp(30.0, 3_600.0);
        let soft = Duration::from_secs_f64(soft_secs);
        HarnessConfig {
            quality,
            resume: false,
            out_dir: output::output_dir(),
            soft_deadline: soft,
            hard_deadline: soft * HARD_DEADLINE_FACTOR,
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            chaos: Arc::new(ChaosPlan::none()),
        }
    }

    /// [`HarnessConfig::new`] plus the environment knobs: `RSIN_CHAOS` and
    /// `RSIN_TASK_DEADLINE_MS`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] when either variable is set but malformed.
    pub fn from_env(quality: RunQuality) -> Result<Self, ConfigError> {
        let mut cfg = HarnessConfig::new(quality);
        cfg.chaos = Arc::new(ChaosPlan::from_env()?);
        if let Ok(ms) = std::env::var(DEADLINE_ENV) {
            let ms: u64 = ms.trim().parse().map_err(|_| ConfigError::Parse {
                input: format!("{DEADLINE_ENV}={ms}"),
                expected: "a soft deadline in milliseconds, e.g. 60000",
            })?;
            cfg.soft_deadline = Duration::from_millis(ms.max(1));
            cfg.hard_deadline = cfg.soft_deadline * HARD_DEADLINE_FACTOR;
        }
        Ok(cfg)
    }
}

/// How one task ended.
#[derive(Debug)]
pub enum TaskOutcome {
    /// Computed this run; the artifact is carried for ordered emission.
    Computed(SuiteOutput),
    /// Skipped under `--resume`: the digest-valid artifact text from disk.
    Resumed {
        /// The `<name>.txt` bytes, reprinted so resumed stdout matches a
        /// cold run.
        text: String,
    },
    /// The task failed terminally (retries exhausted).
    Failed(HarnessError),
}

/// One task's run record.
#[derive(Debug)]
pub struct TaskReport {
    /// The artifact name.
    pub name: &'static str,
    /// How the task ended.
    pub outcome: TaskOutcome,
    /// Attempts made (resumed tasks report the original run's count).
    pub attempts: u32,
    /// Soft-deadline flag or an abandoned attempt.
    pub stalled: bool,
    /// Wall-clock compute time (resumed tasks report the original run's).
    pub duration_ms: u64,
    /// Set when the task computed but its artifacts could not be written.
    pub persist_error: Option<HarnessError>,
}

impl TaskReport {
    /// True when the task or its artifacts terminally failed.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self.outcome, TaskOutcome::Failed(_)) || self.persist_error.is_some()
    }
}

/// The full suite's run record, in emission order.
#[derive(Debug)]
pub struct SuiteReport {
    /// Per-task records in suite order.
    pub tasks: Vec<TaskReport>,
    /// Where artifacts and the manifest were written.
    pub out_dir: PathBuf,
}

impl SuiteReport {
    /// Human-readable lines describing every terminal failure (empty on a
    /// clean run).
    #[must_use]
    pub fn failure_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for t in &self.tasks {
            if let TaskOutcome::Failed(e) = &t.outcome {
                lines.push(e.to_string());
            }
            if let Some(e) = &t.persist_error {
                lines.push(format!("artifact {}: {e}", t.name));
            }
        }
        lines
    }

    /// Tasks skipped via `--resume`.
    #[must_use]
    pub fn resumed(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t.outcome, TaskOutcome::Resumed { .. }))
            .count()
    }
}

/// Runs the whole suite resiliently: resume-skip, supervised parallel
/// compute, immediate atomic persistence, and per-task manifest
/// checkpoints. Nothing is printed to stdout — call [`emit_stdout`] with
/// the returned report to emit artifacts in suite order.
#[must_use]
pub fn run_resilient(config: &HarnessConfig) -> SuiteReport {
    let specs = task_specs();
    let resumed = if config.resume {
        load_resumable(config, &specs)
    } else {
        vec![None; specs.len()]
    };

    // Manifest entries by task index; resumed entries carry over verbatim.
    let entries: Mutex<Vec<Option<ManifestEntry>>> = Mutex::new(
        resumed
            .iter()
            .map(|r| r.as_ref().map(|(_, e)| e.clone()))
            .collect(),
    );
    let started: Mutex<Vec<Option<Instant>>> = Mutex::new(vec![None; specs.len()]);
    let flagged: Vec<AtomicBool> = (0..specs.len()).map(|_| AtomicBool::new(false)).collect();
    let done = AtomicBool::new(false);

    let tasks = std::thread::scope(|scope| {
        let watchdog = scope.spawn(|| {
            watchdog_loop(&done, &started, &flagged, &specs, config.soft_deadline);
        });
        let tasks = scope_map(&specs, config.quality.jobs(), |i, spec| {
            if let Some((text, entry)) = &resumed[i] {
                return TaskReport {
                    name: spec.name,
                    outcome: TaskOutcome::Resumed { text: text.clone() },
                    attempts: entry.attempts,
                    stalled: entry.stalled,
                    duration_ms: entry.duration_ms,
                    persist_error: None,
                };
            }
            let report = supervise_task(i, *spec, config, &started, &flagged);
            checkpoint(config, &entries, i, entry_for(&report));
            report
        });
        done.store(true, Ordering::SeqCst);
        watchdog.join().expect("watchdog never panics");
        tasks
    });

    SuiteReport {
        tasks,
        out_dir: config.out_dir.clone(),
    }
}

/// Prints the suite to stdout in suite order — computed artifacts from
/// memory, resumed ones from their on-disk bytes, so the stream is
/// byte-identical to a cold sequential run — followed by a clearly marked
/// failure report when the suite is degraded. Returns the number of
/// terminal failures.
pub fn emit_stdout(report: &SuiteReport) -> usize {
    for t in &report.tasks {
        match &t.outcome {
            TaskOutcome::Computed(out) => print!("{}", out.rendered()),
            TaskOutcome::Resumed { text } => print!("{text}"),
            TaskOutcome::Failed(_) => {}
        }
    }
    let failures = report.failure_lines();
    if !failures.is_empty() {
        let failed_tasks = report.tasks.iter().filter(|t| t.is_failure()).count();
        println!();
        println!(
            "==== SUITE FAILURE REPORT: {failed_tasks}/{} task(s) failed ====",
            report.tasks.len()
        );
        for line in &failures {
            println!("  {line}");
        }
        println!("==== remaining artifacts above are complete; rerun with --resume to retry ====");
    }
    failures.len()
}

/// Validates the prior manifest against the artifacts on disk and returns,
/// per task index, the reusable `(txt bytes, manifest entry)` pair — or
/// `None` where the task must be recomputed.
fn load_resumable(
    config: &HarnessConfig,
    specs: &[TaskSpec],
) -> Vec<Option<(String, ManifestEntry)>> {
    let path = config.out_dir.join("manifest.json");
    let manifest = match Manifest::load(&path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("resume: cold start ({e})");
            return vec![None; specs.len()];
        }
    };
    if manifest.quality != config.quality.fingerprint() {
        eprintln!(
            "resume: manifest was produced by a different quality preset \
             ({} vs {}); recomputing everything",
            manifest.quality,
            config.quality.fingerprint()
        );
        return vec![None; specs.len()];
    }
    specs
        .iter()
        .map(|spec| {
            let entry = manifest.entry(spec.name)?;
            if entry.status != EntryStatus::Ok {
                return None;
            }
            match validate_artifacts(&config.out_dir, entry) {
                Ok(text) => Some((text, entry.clone())),
                Err(why) => {
                    eprintln!("resume: recomputing {} ({why})", spec.name);
                    None
                }
            }
        })
        .collect()
}

/// Checks a task's on-disk artifacts against the digests its manifest entry
/// recorded; returns the `.txt` bytes on success.
fn validate_artifacts(dir: &Path, entry: &ManifestEntry) -> Result<String, String> {
    let digest = entry.digest.ok_or("entry has no digest")?;
    let txt_path = dir.join(format!("{}.txt", entry.name));
    let text = std::fs::read_to_string(&txt_path)
        .map_err(|e| format!("cannot read {}: {e}", txt_path.display()))?;
    if fnv1a64(text.as_bytes()) != digest {
        return Err(format!("{} does not match its digest", txt_path.display()));
    }
    if let Some(csv_digest) = entry.csv_digest {
        let csv_path = dir.join(format!("{}.csv", entry.name));
        let csv = std::fs::read(&csv_path)
            .map_err(|e| format!("cannot read {}: {e}", csv_path.display()))?;
        if fnv1a64(&csv) != csv_digest {
            return Err(format!("{} does not match its digest", csv_path.display()));
        }
    }
    Ok(text)
}

/// Runs one task under supervision and persists its artifacts.
fn supervise_task(
    index: usize,
    spec: TaskSpec,
    config: &HarnessConfig,
    started: &Mutex<Vec<Option<Instant>>>,
    flagged: &[AtomicBool],
) -> TaskReport {
    let policy = RetryPolicy {
        max_retries: config.max_retries,
        backoff_base: config.backoff_base,
        backoff_cap: config.backoff_cap,
        jitter_seed: fnv1a64(spec.name.as_bytes()) ^ config.quality.seed,
        hard_deadline: Some(config.hard_deadline),
    };
    // A chaos stall must outlive the hard deadline to force abandonment;
    // the sleeping attempt thread then finishes (and is discarded) on its
    // own.
    let stall_sleep = config.hard_deadline * 3 + Duration::from_millis(250);
    let chaos = Arc::clone(&config.chaos);
    let quality = config.quality;
    let name = spec.name;
    let run = spec.run;

    started.lock().expect("start registry")[index] = Some(Instant::now());
    let sup = run_supervised(
        move || {
            if chaos.should_panic(name) {
                panic!("chaos: injected panic in {name} (RSIN_CHAOS=panic:{name})");
            }
            if chaos.take_stall(name) {
                std::thread::sleep(stall_sleep);
            }
            run(&quality)
        },
        &policy,
    );
    started.lock().expect("start registry")[index] = None;

    for (k, f) in sup.earlier_failures.iter().enumerate() {
        eprintln!("warning: task {name} attempt {} {f}; retrying", k + 1);
    }
    let stalled = flagged[index].load(Ordering::SeqCst)
        || sup
            .failures()
            .any(|f| matches!(f, RunFailure::TimedOut { .. }));
    #[allow(clippy::cast_possible_truncation)]
    let duration_ms = sup.duration.as_millis() as u64;

    match sup.result {
        Ok(out) => {
            let text = out.rendered();
            let csv = match &out {
                SuiteOutput::Figure(_, e) => Some(e.to_csv()),
                SuiteOutput::Text(..) => None,
            };
            let persist_error = if config.chaos.io_fails() {
                Some(HarnessError::Io {
                    op: "write",
                    path: config
                        .out_dir
                        .join(format!("{name}.txt"))
                        .display()
                        .to_string(),
                    message: "chaos: injected IO failure (RSIN_CHAOS=io)".to_string(),
                })
            } else {
                output::persist_in(&config.out_dir, name, &text, csv.as_deref()).err()
            };
            if let Some(e) = &persist_error {
                eprintln!("warning: task {name} computed but {e}");
            }
            TaskReport {
                name,
                outcome: TaskOutcome::Computed(out),
                attempts: sup.attempts,
                stalled,
                duration_ms,
                persist_error,
            }
        }
        Err(failure) => {
            let error = match failure {
                RunFailure::Panicked { message } => HarnessError::TaskPanicked {
                    task: name.to_string(),
                    message,
                    attempts: sup.attempts,
                },
                RunFailure::TimedOut { deadline } => HarnessError::TaskStalled {
                    task: name.to_string(),
                    #[allow(clippy::cast_possible_truncation)]
                    deadline_ms: deadline.as_millis() as u64,
                    attempts: sup.attempts,
                },
            };
            eprintln!("error: {error}; continuing with the rest of the suite");
            TaskReport {
                name,
                outcome: TaskOutcome::Failed(error),
                attempts: sup.attempts,
                stalled,
                duration_ms,
                persist_error: None,
            }
        }
    }
}

/// Builds the manifest entry a task report checkpoints.
fn entry_for(report: &TaskReport) -> ManifestEntry {
    let (status, digest, csv_digest, error) = match &report.outcome {
        TaskOutcome::Computed(out) if report.persist_error.is_none() => {
            let text = out.rendered();
            let csv = match out {
                SuiteOutput::Figure(_, e) => Some(fnv1a64(e.to_csv().as_bytes())),
                SuiteOutput::Text(..) => None,
            };
            (EntryStatus::Ok, Some(fnv1a64(text.as_bytes())), csv, None)
        }
        TaskOutcome::Computed(_) => (
            EntryStatus::Failed,
            None,
            None,
            report.persist_error.as_ref().map(ToString::to_string),
        ),
        TaskOutcome::Resumed { text } => {
            (EntryStatus::Ok, Some(fnv1a64(text.as_bytes())), None, None)
        }
        TaskOutcome::Failed(e) => (EntryStatus::Failed, None, None, Some(e.to_string())),
    };
    ManifestEntry {
        name: report.name.to_string(),
        status,
        digest,
        csv_digest,
        duration_ms: report.duration_ms,
        attempts: report.attempts,
        stalled: report.stalled,
        error,
    }
}

/// Records one finished task and atomically rewrites `manifest.json` so a
/// kill at any instant leaves a manifest describing exactly the artifacts
/// on disk. A failed manifest write is reported but does not fail the task
/// — it only costs a future `--resume` some recomputation.
fn checkpoint(
    config: &HarnessConfig,
    entries: &Mutex<Vec<Option<ManifestEntry>>>,
    index: usize,
    entry: ManifestEntry,
) {
    let mut slots = entries.lock().expect("manifest entries");
    slots[index] = Some(entry);
    let manifest = Manifest {
        quality: config.quality.fingerprint(),
        entries: slots.iter().flatten().cloned().collect(),
    };
    // Serialize under the lock so checkpoint writes never interleave.
    if let Err(e) = manifest.save(&config.out_dir.join("manifest.json")) {
        eprintln!("warning: cannot checkpoint manifest: {e}");
    }
}

/// The watchdog: flags (once) every task that has been running longer than
/// the soft deadline. Purely observational — the hard-deadline abandonment
/// lives in the supervised runner.
fn watchdog_loop(
    done: &AtomicBool,
    started: &Mutex<Vec<Option<Instant>>>,
    flagged: &[AtomicBool],
    specs: &[TaskSpec],
    soft_deadline: Duration,
) {
    while !done.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        let snapshot = started.lock().expect("start registry").clone();
        for (i, s) in snapshot.iter().enumerate() {
            if let Some(t0) = s {
                let elapsed = t0.elapsed();
                if elapsed > soft_deadline && !flagged[i].swap(true, Ordering::SeqCst) {
                    eprintln!(
                        "warning: watchdog: task {} has been running {:.1}s, past its {:.1}s \
                         soft deadline",
                        specs[i].name,
                        elapsed.as_secs_f64(),
                        soft_deadline.as_secs_f64()
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_parses_and_rejects() {
        let plan = ChaosPlan::parse("panic:fig07, stall:fig11 ,io").expect("valid spec");
        assert!(plan.is_active());
        assert!(plan.should_panic("fig07"));
        assert!(!plan.should_panic("fig04"));
        assert!(plan.take_stall("fig11"), "first take fires");
        assert!(!plan.take_stall("fig11"), "stall is take-once");
        assert!(plan.io_fails());
        assert!(!ChaosPlan::none().is_active());
        assert!(!ChaosPlan::parse("").expect("empty is inert").is_active());
        let err = ChaosPlan::parse("explode:fig07").expect_err("unknown directive");
        assert!(err.to_string().contains("explode"));
    }

    #[test]
    fn config_deadlines_scale_with_preset() {
        let quick = HarnessConfig::new(RunQuality::quick());
        let full = HarnessConfig::new(RunQuality::full());
        assert_eq!(quick.soft_deadline, Duration::from_secs(60));
        assert_eq!(full.soft_deadline, Duration::from_secs(300));
        assert_eq!(
            quick.hard_deadline,
            quick.soft_deadline * HARD_DEADLINE_FACTOR
        );
        assert!(!quick.resume);
        assert!(!quick.chaos.is_active());
    }

    #[test]
    fn retry_jitter_seed_is_stable_per_task_name() {
        let a = fnv1a64(b"fig07");
        assert_eq!(a, fnv1a64(b"fig07"));
        assert_ne!(a, fnv1a64(b"fig08"));
    }
}
