//! Ablation: availability-register freshness (continuous vs stale).
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text_or_exit(
        "ablation_freshness",
        &rsin_bench::tables::ablation_freshness_text(&q),
    );
}
