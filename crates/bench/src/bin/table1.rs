//! Regenerates Table I: the crossbar cell truth table.
fn main() {
    rsin_bench::output::emit_text_or_exit("table1", &rsin_bench::tables::table1_text());
}
