//! Regenerates Table I: the crossbar cell truth table.
fn main() {
    rsin_bench::output::emit_text("table1", &rsin_bench::tables::table1_text());
}
