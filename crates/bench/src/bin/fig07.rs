//! Regenerates Fig. 7: crossbar delay, µ_s/µ_n = 0.1 (pass --full for
//! publication-quality simulation).
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let e = rsin_bench::figures::fig_xbar(0.1, 7, &q);
    rsin_bench::output::emit_or_exit("fig07", &e);
}
