//! Regenerates the Section II Omega mapping example.
fn main() {
    rsin_bench::output::emit_text_or_exit(
        "mapping_example",
        &rsin_bench::tables::mapping_example_text(),
    );
}
