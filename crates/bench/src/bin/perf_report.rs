//! The tracked performance baseline: times the figure/table suite
//! sequentially (`--jobs 1`) and in parallel, measures the hot-path
//! kernels, and writes `BENCH_perf.json` at the repository root.
//!
//! `--quick` (the default preset) keeps the run in CI territory; `--full`
//! times the publication preset; `--jobs N` pins the parallel worker count
//! (default: all cores, or `RSIN_JOBS`). Timings vary run to run — the
//! simulation *results* never do.

use rsin_bench::figures::workload_at;
use rsin_bench::microbench::measure_ns;
use rsin_bench::suite::run_suite;
use rsin_bench::RunQuality;
use rsin_core::{simulate, SimOptions, SystemConfig};
use rsin_des::{Calendar, SimRng, SimTime};
use rsin_omega::{Admission, OmegaState};
use rsin_xbar::CrossbarFabric;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

fn time_suite(q: &RunQuality) -> f64 {
    let start = Instant::now();
    black_box(run_suite(q).len());
    start.elapsed().as_secs_f64()
}

fn kernels() -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();

    let mut rng = SimRng::new(1);
    out.push((
        "calendar_schedule_pop_1k",
        measure_ns(|| {
            let mut cal = Calendar::new();
            for i in 0..1_000u32 {
                cal.schedule(SimTime::new(rng.uniform() * 100.0 + 100.0), i);
            }
            let mut count = 0;
            while cal.pop().is_some() {
                count += 1;
            }
            black_box(count)
        }),
    ));

    let everyone: Vec<usize> = (0..16).collect();
    out.push((
        "omega_resolve_all_requesting_16",
        measure_ns(|| {
            let mut net = OmegaState::new(16, 1).expect("power of two");
            net.resolve(&everyone, Admission::Simultaneous)
        }),
    ));

    let requests = vec![true; 16];
    let available = vec![true; 32];
    out.push((
        "xbar_request_cycle_16x32",
        measure_ns(|| {
            let mut fabric = CrossbarFabric::new(16, 32);
            fabric.request_cycle(&requests, &available)
        }),
    ));

    let cfg: SystemConfig = "16/1x16x16 XBAR/2".parse().expect("valid");
    let opts = SimOptions {
        warmup_tasks: 200,
        measured_tasks: 3_000,
    };
    let w = workload_at(0.5, 0.1);
    out.push((
        "simulate_3k_tasks_xbar_1x16x16_r2",
        measure_ns(|| {
            let mut net = rsin_xbar::CrossbarNetwork::from_config(
                &cfg,
                rsin_xbar::CrossbarPolicy::FixedPriority,
            )
            .expect("xbar");
            let mut rng = SimRng::new(1);
            simulate(&mut net, &w, &opts, &mut rng).mean_delay()
        }),
    ));

    out
}

fn main() {
    let base = RunQuality::from_args();
    let preset = if std::env::args().any(|a| a == "--full") {
        "full"
    } else {
        "quick"
    };
    let par_jobs = base.jobs();

    eprintln!("timing suite with --jobs 1 ...");
    let seq_secs = time_suite(&RunQuality { jobs: 1, ..base });
    eprintln!("timing suite with --jobs {par_jobs} ...");
    let par_secs = time_suite(&RunQuality {
        jobs: par_jobs,
        ..base
    });
    eprintln!("measuring hot-path kernels ...");
    let kernel_rows = kernels();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p rsin-bench --bin perf_report\",\n");
    json.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    json.push_str(&format!("  \"cpu_cores\": {cores},\n"));
    json.push_str("  \"suite\": {\n");
    json.push_str("    \"sequential_jobs\": 1,\n");
    json.push_str(&format!("    \"parallel_jobs\": {par_jobs},\n"));
    json.push_str(&format!("    \"sequential_seconds\": {seq_secs:.3},\n"));
    json.push_str(&format!("    \"parallel_seconds\": {par_secs:.3},\n"));
    json.push_str(&format!(
        "    \"speedup\": {:.3}\n",
        seq_secs / par_secs.max(1e-9)
    ));
    json.push_str("  },\n");
    json.push_str("  \"kernels_ns_per_iter\": {\n");
    for (i, (name, ns)) in kernel_rows.iter().enumerate() {
        let comma = if i + 1 < kernel_rows.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    print!("{json}");
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
