//! The tracked performance baseline: times the figure/table suite
//! sequentially (`--jobs 1`) and in parallel, measures the hot-path
//! kernels (including the runtime brokers' uncontended grant cycles) and
//! the brokers' saturated multi-threaded throughput, and writes
//! `BENCH_perf.json` at the repository root.
//!
//! `--quick` (the default preset) keeps the run in CI territory; `--full`
//! times the publication preset; `--jobs N` pins the parallel worker count
//! (default: all cores, or `RSIN_JOBS`). On a single-core host the parallel
//! leg is skipped and reported as `null` — a 1-worker "parallel" run only
//! measures scheduling overhead, not speedup. Timings vary run to run —
//! the simulation *results* never do.
//!
//! `--check` compares the freshly measured kernels against the committed
//! `BENCH_perf.json` before overwriting it and exits nonzero if any kernel
//! is more than [`REGRESSION_TOLERANCE`]× slower than the baseline, so CI
//! catches hot-path regressions. Apparent regressions are re-measured up
//! to [`CHECK_RETRIES`] times (keeping each kernel's floor) before the
//! gate fails, so a burst of runner contention doesn't flag a phantom
//! slowdown. Kernels new to this build are recorded, not failed; a suite
//! leg that either run skipped (the parallel leg on a single-core host,
//! persisted as `null` with a `"skipped_reason"`) is skipped by the check.
//! The comparison logic lives in `rsin_bench::perfgate`.

use rsin_bench::broker_bench::CHAOS_LEASE;
use rsin_bench::figures::workload_at;
use rsin_bench::microbench::measure_ns_floor;
use rsin_bench::perfgate::{
    self, KernelCheck, LegStatus, ParallelLeg, ScalingPoint, ScalingStatus, SuiteTimings, Verdict,
    REGRESSION_TOLERANCE, WARM_START_TOLERANCE,
};
use rsin_bench::provision_bench;
use rsin_bench::suite::run_suite;
use rsin_bench::RunQuality;
use rsin_bitslice::{or_pairs_compress, rotating_grant, set_bit, swap_or, tile_double};
use rsin_broker::net::{run_net_load, NetLoadConfig, NetServer, NetServerConfig};
use rsin_broker::{
    run_saturated, run_saturated_chaos, Broker, ChaosOptions, ChaosPlan, ClientChaos, ClientEvent,
    OmegaBroker, RunControl, SbusBroker, ShardedBroker, XbarBroker, XbarPolicy,
};
use rsin_core::{simulate, SimOptions, SystemConfig};
use rsin_des::{Calendar, SimRng, SimTime};
use rsin_omega::{Admission, OmegaState};
use rsin_queueing::{traffic, SharedBusChain, SharedBusParams};
use rsin_xbar::{BitFabric, CrossbarFabric};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn time_suite(q: &RunQuality) -> f64 {
    let start = Instant::now();
    black_box(run_suite(q).len());
    start.elapsed().as_secs_f64()
}

/// The stable rho grid for the analytic-solver kernels: every point of the
/// figure grid at which the 2-processor/4-resource bus is stable, so the
/// cold and warm kernels do identical *useful* work and differ only in
/// iteration counts.
fn sbus_kernel_grid() -> Vec<SharedBusParams> {
    let (mu_n, mu_s) = (1.0, 0.1);
    std::iter::once(0.05)
        .chain((1..=9).map(|i| f64::from(i) / 10.0))
        .map(|rho| SharedBusParams {
            processors: 2,
            resources: 4,
            lambda: traffic::lambda_for_intensity(16, 32, rho, mu_n, mu_s),
            mu_n,
            mu_s,
        })
        .filter(|&p| SharedBusChain::new(p).is_ok())
        .collect()
}

fn kernels() -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();

    let mut rng = SimRng::new(1);
    out.push((
        "calendar_schedule_pop_1k",
        measure_ns_floor(|| {
            let mut cal = Calendar::new();
            for i in 0..1_000u32 {
                cal.schedule(SimTime::new(rng.uniform() * 100.0 + 100.0), i);
            }
            let mut count = 0;
            while cal.pop().is_some() {
                count += 1;
            }
            black_box(count)
        }),
    ));

    let mut rng = SimRng::new(2);
    out.push((
        "calendar_cancel_heavy_1k",
        measure_ns_floor(|| {
            // The timer-cancellation pattern the simulator leans on: every
            // other event is revoked by handle before the queue drains.
            let mut cal = Calendar::new();
            let handles: Vec<_> = (0..1_000u32)
                .map(|i| cal.schedule(SimTime::new(rng.uniform() * 100.0 + 100.0), i))
                .collect();
            for h in handles.iter().step_by(2) {
                cal.cancel(*h);
            }
            let mut count = 0;
            while cal.pop().is_some() {
                count += 1;
            }
            black_box(count)
        }),
    ));

    let everyone: Vec<usize> = (0..16).collect();
    out.push((
        "omega_resolve_all_requesting_16",
        measure_ns_floor(|| {
            let mut net = OmegaState::new(16, 1).expect("power of two");
            net.resolve(&everyone, Admission::Simultaneous)
        }),
    ));

    let requests = vec![true; 16];
    let available = vec![true; 32];
    out.push((
        "xbar_request_cycle_16x32",
        measure_ns_floor(|| {
            let mut fabric = CrossbarFabric::new(16, 32);
            fabric.request_cycle(&requests, &available)
        }),
    ));

    let grid = sbus_kernel_grid();
    out.push((
        "sbus_rho_grid_cold_2x4",
        measure_ns_floor(|| {
            let mut acc = 0.0;
            for &p in &grid {
                let chain = SharedBusChain::new(p).expect("grid is stable");
                acc += chain.solve().expect("solves").normalized_delay;
            }
            black_box(acc)
        }),
    ));
    out.push((
        "sbus_rho_grid_warm_2x4",
        measure_ns_floor(|| {
            // Same grid, but each point seeds its neighbor's R iteration.
            let mut acc = 0.0;
            let mut seed = None;
            for &p in &grid {
                let chain = SharedBusChain::new(p).expect("grid is stable");
                let (sol, next) = chain.solve_seeded(seed.as_ref()).expect("solves");
                seed = Some(next);
                acc += sol.normalized_delay;
            }
            black_box(acc)
        }),
    ));

    // Uncontended acquire → end_transmission → release cycles of the
    // runtime brokers: the single-thread fast path every loaded run pays on
    // top of the queueing the models predict. ns/iter here is the inverse
    // of the broker's peak grant throughput, so the `--check` gate doubles
    // as a throughput-regression gate.
    let ctl = RunControl::new();
    let sbus = SbusBroker::new(2, 2);
    out.push((
        "broker_sbus_uncontended_cycle",
        measure_ns_floor(|| {
            let g = sbus.acquire(0, &ctl).expect("uncontended");
            sbus.end_transmission(0, g);
            sbus.release(0, g);
            black_box(g.resource)
        }),
    ));
    let xbar = XbarBroker::new(2, 2, XbarPolicy::TokenRotation);
    out.push((
        "broker_xbar_uncontended_cycle",
        measure_ns_floor(|| {
            let g = xbar.acquire(0, &ctl).expect("uncontended");
            xbar.end_transmission(0, g);
            xbar.release(0, g);
            black_box(g.resource)
        }),
    ));
    let omega = OmegaBroker::new(2, 2);
    out.push((
        "broker_omega_uncontended_cycle",
        measure_ns_floor(|| {
            let g = omega.acquire(0, &ctl).expect("uncontended");
            omega.end_transmission(0, g);
            omega.release(0, g);
            black_box(g.resource)
        }),
    ));

    let cfg: SystemConfig = "16/1x16x16 XBAR/2".parse().expect("valid");
    let opts = SimOptions {
        warmup_tasks: 200,
        measured_tasks: 3_000,
    };
    let w = workload_at(0.5, 0.1);
    out.push((
        "simulate_3k_tasks_xbar_1x16x16_r2",
        measure_ns_floor(|| {
            let mut net = rsin_xbar::CrossbarNetwork::from_config(
                &cfg,
                rsin_xbar::CrossbarPolicy::FixedPriority,
            )
            .expect("xbar");
            let mut rng = SimRng::new(1);
            simulate(&mut net, &w, &opts, &mut rng).mean_delay()
        }),
    ));

    // Raw bit-sliced primitives (rsin-bitslice): the per-word cost of the
    // lane machinery the default resolvers are compiled onto. Absent from
    // older baselines — `--check` records them without failing.
    let mut req = vec![0u64; 64];
    for lane in (0..4096).step_by(3) {
        set_bit(&mut req, lane);
    }
    out.push((
        "bitslice_rotating_grant_4096",
        measure_ns_floor(move || {
            // A full rotation of the token across a 4096-lane request
            // vector: 64 parallel-prefix grants.
            let mut token = 0usize;
            let mut acc = 0usize;
            for _ in 0..64 {
                let g = rotating_grant(&req, token).expect("nonempty");
                acc += g;
                token = g + 1;
            }
            black_box(acc)
        }),
    ));

    let mut wave = vec![0u64; 4];
    for lane in (0..256).step_by(5) {
        set_bit(&mut wave, lane);
    }
    let (mut t_box, mut t_in, mut t_out) = (Vec::new(), Vec::new(), Vec::new());
    out.push((
        "bitslice_omega_stage_shuffle_256",
        measure_ns_floor(move || {
            // One Omega stage (box compress + inverse-shuffle tile) plus one
            // Cube stage (butterfly OR) over 256 wires.
            or_pairs_compress(&wave, 128, &mut t_box);
            tile_double(&t_box, 128, &mut t_in);
            swap_or(&t_in, 32, &mut t_out);
            black_box(t_out[0])
        }),
    ));

    let requests = vec![true; 64];
    let available = vec![true; 64];
    out.push((
        "bitslice_xbar_wave_64x64",
        measure_ns_floor(move || {
            let mut fabric = BitFabric::new(64, 64);
            fabric.request_cycle(&requests, &available)
        }),
    ));

    out
}

/// Saturated multi-threaded grant throughput (grants per wall second) of
/// each runtime broker discipline: 4 workers on 2 resources, zero hold
/// time, a short fixed window. Contended-path counterpart of the
/// `broker_*_uncontended_cycle` kernels; recorded in the `broker` section
/// of `BENCH_perf.json` for trend visibility (wall-clock thread scheduling
/// makes it too noisy for a hard gate — the gate is the kernels).
fn broker_saturated_throughput() -> Vec<(&'static str, f64)> {
    let window = std::time::Duration::from_millis(120);
    let secs = window.as_secs_f64();
    let disciplines: Vec<(&'static str, Box<dyn Broker>)> = vec![
        ("sbus", Box::new(SbusBroker::new(4, 2))),
        (
            "xbar_token",
            Box::new(XbarBroker::new(4, 2, XbarPolicy::TokenRotation)),
        ),
        ("omega", Box::new(OmegaBroker::new(4, 2))),
    ];
    disciplines
        .into_iter()
        .map(|(name, broker)| {
            let report = run_saturated(broker.as_ref(), std::time::Duration::ZERO, window);
            assert_eq!(report.violations, 0, "{name}: exclusivity violated");
            (name, report.total_grants() as f64 / secs)
        })
        .collect()
}

/// The grants/sec-vs-shards scaling curve: each discipline rebuilt as a
/// [`ShardedBroker`] over 8 workers and 4 resources at 1, 2, and 4 logical
/// shards, saturated for the same window as the flat measurement. The
/// point's `cpu_cores` stamp lets `--check` refuse to compare curves from
/// different hosts. On a single-core runner the curve measures the
/// sharding machinery's overhead and contention behavior, not real
/// parallel speedup — that is exactly what the shards_1 gate consumes.
fn broker_scaling(cpu_cores: usize) -> Vec<ScalingPoint> {
    let window = std::time::Duration::from_millis(120);
    let secs = window.as_secs_f64();
    const WORKERS: usize = 8;
    const RESOURCES: usize = 4;
    [1usize, 2, 4]
        .into_iter()
        .map(|shards| {
            let disciplines: Vec<(&'static str, Box<dyn Broker>)> = vec![
                (
                    "sbus",
                    Box::new(ShardedBroker::sbus(WORKERS, RESOURCES, shards)),
                ),
                (
                    "xbar_token",
                    Box::new(ShardedBroker::xbar(
                        WORKERS,
                        RESOURCES,
                        shards,
                        XbarPolicy::TokenRotation,
                    )),
                ),
                (
                    "omega",
                    Box::new(ShardedBroker::omega(WORKERS, RESOURCES, shards)),
                ),
            ];
            let rates = disciplines
                .into_iter()
                .map(|(name, broker)| {
                    let report = run_saturated(broker.as_ref(), std::time::Duration::ZERO, window);
                    assert_eq!(
                        report.violations, 0,
                        "{name} at {shards} shard(s): exclusivity violated"
                    );
                    (name.to_string(), report.total_grants() as f64 / secs)
                })
                .collect();
            ScalingPoint {
                shards,
                cpu_cores,
                rates,
            }
        })
        .collect()
}

/// The sharding-overhead gate: a single-shard [`ShardedBroker`] must stay
/// within [`REGRESSION_TOLERANCE`]× of the plain discipline it wraps, on
/// the same topology the flat saturated measurement uses (4 workers, 2
/// resources). Both sides are measured fresh in the same run so the
/// comparison never crosses hosts or baselines. Returns the names of
/// disciplines whose overhead persisted through the retries.
///
/// The comparison runs with a small but *nonzero* transmission hold. At
/// zero hold a plain discipline's throughput is dominated by whichever
/// thread happens to be hot re-acquiring the slot it just released — an
/// operating point the sharded wrapper deliberately forbids (its camp
/// queue hands freed capacity to the oldest waiter, which on a saturated
/// host costs a thread handoff per grant). A realistic hold measures the
/// wrapper's actual per-grant overhead instead of the price of fairness
/// under zero service time; the paper's transmissions always take time.
fn sharding_overhead_check() -> Vec<String> {
    let window = std::time::Duration::from_millis(120);
    let hold = std::time::Duration::from_micros(50);
    type Pair = (&'static str, BrokerFactory, BrokerFactory);
    let disciplines: Vec<Pair> = vec![
        (
            "sbus",
            Box::new(|| Box::new(SbusBroker::new(4, 2))),
            Box::new(|| Box::new(ShardedBroker::sbus(4, 2, 1))),
        ),
        (
            "xbar_token",
            Box::new(|| Box::new(XbarBroker::new(4, 2, XbarPolicy::TokenRotation))),
            Box::new(|| Box::new(ShardedBroker::xbar(4, 2, 1, XbarPolicy::TokenRotation))),
        ),
        (
            "omega",
            Box::new(|| Box::new(OmegaBroker::new(4, 2))),
            Box::new(|| Box::new(ShardedBroker::omega(4, 2, 1))),
        ),
    ];
    let rate = |make: &BrokerFactory| {
        let broker = make();
        let report = run_saturated(broker.as_ref(), hold, window);
        assert_eq!(report.violations, 0, "exclusivity violated");
        report.total_grants() as f64 / window.as_secs_f64()
    };
    let mut failed = Vec::new();
    for (name, plain, sharded) in disciplines {
        let (mut plain_rate, mut sharded_rate) = (rate(&plain), rate(&sharded));
        let mut ratio = plain_rate / sharded_rate.max(1.0);
        for attempt in 1..=CHECK_RETRIES {
            if ratio <= REGRESSION_TOLERANCE {
                break;
            }
            eprintln!(
                "perf check: shards_1 {name} overhead {ratio:.2}x; re-measuring to rule \
                 out runner noise (attempt {attempt}/{CHECK_RETRIES}) ..."
            );
            // Throughput gate, so fold in the *maximum* of repeated runs —
            // the best a discipline achieved is its capability.
            plain_rate = plain_rate.max(rate(&plain));
            sharded_rate = sharded_rate.max(rate(&sharded));
            ratio = plain_rate / sharded_rate.max(1.0);
        }
        if ratio > REGRESSION_TOLERANCE {
            eprintln!(
                "perf check: SHARDING OVERHEAD {name}: plain {plain_rate:.0} vs \
                 1-shard {sharded_rate:.0} grants/sec ({ratio:.2}x, tolerance \
                 {REGRESSION_TOLERANCE}x)"
            );
            failed.push(name.to_string());
        } else {
            eprintln!(
                "perf check: ok shards_1 {name}: plain {plain_rate:.0} vs 1-shard \
                 {sharded_rate:.0} grants/sec ({ratio:.2}x)"
            );
        }
    }
    failed
}

/// Degraded-mode counterpart of [`broker_saturated_throughput`]: each
/// discipline rebuilt with a lease and measured twice over the same
/// window — healthy, then with worker 0 killed mid-protocol at the 40 ms
/// mark and its leaked lease reclaimed by the supervisor. Recorded as the
/// `resilience_grants_per_sec` object of the `broker` section (trend
/// visibility, not a hard gate — same rationale as the saturated rates);
/// the run itself still hard-asserts zero violations, the kill firing,
/// and post-fault liveness, so a wedged discipline fails the report.
type BrokerFactory = Box<dyn Fn() -> Box<dyn Broker>>;

fn broker_resilience() -> Vec<(&'static str, f64, f64)> {
    let window = std::time::Duration::from_millis(120);
    // The lease must dominate the worst-case scheduler stall of a *live*
    // holder — on a loaded single-core runner a spinning holder can sit
    // off-CPU for several milliseconds, and evicting it would double-grant.
    // 20 ms still reclaims the killed worker's grant with two thirds of the
    // window left to measure post-fault throughput.
    let lease = std::time::Duration::from_millis(20);
    let secs = window.as_secs_f64();
    let disciplines: Vec<(&'static str, BrokerFactory)> = vec![
        (
            "sbus",
            Box::new(move || Box::new(SbusBroker::with_lease(4, 2, lease))),
        ),
        (
            "xbar_token",
            Box::new(move || {
                Box::new(XbarBroker::with_lease(
                    4,
                    2,
                    XbarPolicy::TokenRotation,
                    lease,
                ))
            }),
        ),
        (
            "omega",
            Box::new(move || Box::new(OmegaBroker::with_lease(4, 2, lease))),
        ),
    ];
    disciplines
        .into_iter()
        .map(|(name, make)| {
            let healthy = {
                let broker = make();
                let report = run_saturated(broker.as_ref(), std::time::Duration::ZERO, window);
                assert_eq!(report.violations, 0, "{name}: exclusivity violated");
                report.total_grants() as f64 / secs
            };
            let degraded = {
                let broker = make();
                let plan = ChaosPlan::new().with(ClientEvent {
                    at: 40.0, // milliseconds on the saturated driver's wall clock
                    worker: 0,
                    kind: ClientChaos::Crash,
                });
                let opts = ChaosOptions::new(plan, lease);
                let report =
                    run_saturated_chaos(broker.as_ref(), std::time::Duration::ZERO, window, &opts);
                assert_eq!(report.sat.violations, 0, "{name}: exclusivity violated");
                assert_eq!(report.crashed, 1, "{name}: the kill must fire");
                assert!(
                    report.post_chaos_grants > 0,
                    "{name}: wedged after the kill"
                );
                report.sat.total_grants() as f64 / secs
            };
            (name, healthy, degraded)
        })
        .collect()
}

/// Saturated loopback throughput and grant-latency quantiles of the
/// networked front-end: an in-process [`NetServer`] over a 2-shard SBUS
/// pool, driven closed-loop by 4 loopback TCP clients across 3 tenant
/// classes. Recorded as the `netbroker` section of `BENCH_perf.json` for
/// trend visibility — real sockets plus thread scheduling are too noisy
/// for a hard gate (the gated kernels are untouched) — but the run still
/// hard-asserts a clean exclusivity ledger and zero leaked slots, so a
/// broken wire protocol fails the report.
fn netbroker_perf() -> (f64, f64, f64, f64) {
    const CLIENTS: usize = 4;
    let broker = ShardedBroker::sbus_with_lease(2 * CLIENTS, 4, 2, CHAOS_LEASE);
    let server = NetServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        broker,
        NetServerConfig {
            tenants: 3,
            lease: CHAOS_LEASE,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback ephemeral port");
    let cfg = NetLoadConfig {
        clients: CLIENTS,
        tenants: 3,
        window: std::time::Duration::from_millis(150),
        deadline: Some(std::time::Duration::from_millis(100)),
        ..NetLoadConfig::default()
    };
    let report = run_net_load(server.local_addr(), &cfg);
    let sr = server.stop();
    assert_eq!(sr.violations, 0, "netbroker: exclusivity violated");
    assert_eq!(sr.leaked, 0, "netbroker: slots leaked through shutdown");
    assert!(
        report.grants > 0,
        "netbroker: the loopback sweep never granted"
    );
    (
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.99),
        report.latency_quantile_us(0.999),
        report.grants_per_sec,
    )
}

/// Prints one line per kernel verdict. New kernels are explicitly called
/// out as recorded rather than failed, so a CI log never reads an added
/// kernel as a problem.
fn print_checks(checks: &[KernelCheck]) {
    for c in checks {
        let (name, new_ns) = (&c.name, c.fresh_ns);
        match c.verdict {
            Verdict::Regressed { baseline_ns, ratio } => eprintln!(
                "perf check: REGRESSION {name}: {baseline_ns:.1} -> {new_ns:.1} ns/iter \
                 ({ratio:.2}x, tolerance {REGRESSION_TOLERANCE}x)"
            ),
            Verdict::Ok { baseline_ns, ratio } => eprintln!(
                "perf check: ok {name}: {baseline_ns:.1} -> {new_ns:.1} ns/iter ({ratio:.2}x)"
            ),
            Verdict::Recorded => eprintln!(
                "perf check: new kernel {name}: {new_ns:.1} ns/iter — \
                 recorded, not failed (no baseline entry)"
            ),
        }
    }
}

/// Reports how the parallel suite leg compares to the baseline. Wall-clock
/// suite timing is too noisy for a hard gate, so the comparison is
/// informational — but a leg that is `null` on either side (e.g. skipped
/// with reason "single core") is *skipped*, never compared or failed.
fn report_parallel_leg(baseline: &str, fresh: &SuiteTimings) {
    match perfgate::parallel_leg_status(&perfgate::parse_suite(baseline), fresh) {
        LegStatus::Skipped { reason } => {
            eprintln!("perf check: parallel suite leg skipped ({reason}); not compared");
        }
        LegStatus::Compared {
            baseline_secs,
            fresh_secs,
        } => eprintln!(
            "perf check: parallel suite leg {baseline_secs:.3}s -> {fresh_secs:.3}s \
             (informational, not gated)"
        ),
    }
}

/// How many times an apparent regression is re-measured before the gate
/// fails. A real slowdown reproduces on every attempt; a burst of runner
/// contention does not survive two more floor measurements.
const CHECK_RETRIES: usize = 3;

/// Runs the regression check, re-measuring (and folding in the per-kernel
/// minimum) while any kernel still exceeds tolerance. Mutates `rows` so the
/// persisted JSON carries the best floor observed.
fn run_check(baseline: &str, rows: &mut [(&'static str, f64)]) -> Vec<String> {
    let mut regressed = perfgate::regressed_names(&perfgate::check_kernels(baseline, rows));
    for attempt in 1..=CHECK_RETRIES {
        if regressed.is_empty() {
            break;
        }
        eprintln!(
            "perf check: {} kernel(s) above tolerance; re-measuring to rule out \
             runner noise (attempt {attempt}/{CHECK_RETRIES}) ...",
            regressed.len()
        );
        for (row, again) in rows.iter_mut().zip(kernels()) {
            debug_assert_eq!(row.0, again.0);
            row.1 = row.1.min(again.1);
        }
        regressed = perfgate::regressed_names(&perfgate::check_kernels(baseline, rows));
    }
    let checks = perfgate::check_kernels(baseline, rows);
    print_checks(&checks);
    perfgate::regressed_names(&checks)
}

/// The warm-start gate: `sbus_rho_grid_warm_2x4` must not be slower than
/// its cold twin beyond [`WARM_START_TOLERANCE`] — both kernels solve the
/// identical grid, so "warm materially above cold" means the seeding path
/// has regressed into a pessimization. A within-run comparison (no
/// baseline involved), re-measured with the same floor-folding as the
/// kernel gate before failing. Returns `true` when the regression
/// persists.
fn run_warm_start_check(rows: &mut [(&'static str, f64)]) -> bool {
    let ns_of = |rows: &[(&'static str, f64)], name: &str| {
        rows.iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |&(_, ns)| ns)
    };
    let (mut cold, mut warm) = (
        ns_of(rows, "sbus_rho_grid_cold_2x4"),
        ns_of(rows, "sbus_rho_grid_warm_2x4"),
    );
    for attempt in 1..=CHECK_RETRIES {
        if !perfgate::warm_start_regressed(cold, warm) {
            break;
        }
        eprintln!(
            "perf check: warm rho-grid kernel above its cold twin ({:.2}x); re-measuring \
             to rule out runner noise (attempt {attempt}/{CHECK_RETRIES}) ...",
            warm / cold
        );
        for (row, again) in rows.iter_mut().zip(kernels()) {
            debug_assert_eq!(row.0, again.0);
            row.1 = row.1.min(again.1);
        }
        cold = ns_of(rows, "sbus_rho_grid_cold_2x4");
        warm = ns_of(rows, "sbus_rho_grid_warm_2x4");
    }
    if perfgate::warm_start_regressed(cold, warm) {
        eprintln!(
            "perf check: WARM-START REGRESSION sbus_rho_grid_warm_2x4: cold {cold:.1} vs \
             warm {warm:.1} ns/iter ({:.2}x, tolerance {WARM_START_TOLERANCE}x)",
            warm / cold
        );
        true
    } else {
        eprintln!(
            "perf check: ok warm rho-grid kernel: cold {cold:.1} vs warm {warm:.1} ns/iter \
             ({:.2}x)",
            warm / cold.max(1e-9)
        );
        false
    }
}

/// Reports how the fresh scaling curve compares to the baseline, point by
/// point. Wall-clock throughput is informational (the hard scaling gate is
/// [`sharding_overhead_check`]); a point with no comparable baseline —
/// unknown shard count or a different host core count — is skipped with
/// its reason, exactly like the single-core parallel-leg skip.
fn report_scaling(baseline: &str, fresh: &[ScalingPoint]) {
    let old = perfgate::parse_scaling(baseline);
    for point in fresh {
        match perfgate::scaling_point_status(&old, point) {
            ScalingStatus::Skipped { reason } => eprintln!(
                "perf check: scaling point shards_{} skipped ({reason}); not compared",
                point.shards
            ),
            ScalingStatus::Compared { ratios } => {
                let rendered: Vec<String> = ratios
                    .iter()
                    .map(|(name, ratio)| format!("{name} {ratio:.2}x"))
                    .collect();
                eprintln!(
                    "perf check: scaling point shards_{}: {} (informational, not gated)",
                    point.shards,
                    rendered.join(", ")
                );
            }
        }
    }
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json")
}

fn main() {
    let base = RunQuality::from_args();
    let preset = if std::env::args().any(|a| a == "--full") {
        "full"
    } else {
        "quick"
    };
    let check = std::env::args().any(|a| a == "--check");
    let par_jobs = base.jobs();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    eprintln!("timing suite with --jobs 1 ...");
    let seq_secs = time_suite(&RunQuality { jobs: 1, ..base });
    // A parallel-vs-sequential comparison on one core measures nothing but
    // scheduling overhead; record it as skipped rather than as a bogus
    // sub-1.0 "speedup".
    let par_leg = if cores > 1 {
        eprintln!("timing suite with --jobs {par_jobs} ...");
        ParallelLeg::Measured(time_suite(&RunQuality {
            jobs: par_jobs,
            ..base
        }))
    } else {
        eprintln!("single-core host: skipping the parallel suite leg");
        ParallelLeg::Skipped {
            reason: perfgate::SINGLE_CORE_REASON.to_string(),
        }
    };
    let fresh_suite = SuiteTimings {
        sequential_seconds: Some(seq_secs),
        parallel_seconds: match par_leg {
            ParallelLeg::Measured(p) => Some(p),
            ParallelLeg::Skipped { .. } => None,
        },
        skipped_reason: match &par_leg {
            ParallelLeg::Skipped { reason } => Some(reason.clone()),
            ParallelLeg::Measured(_) => None,
        },
    };
    eprintln!("measuring hot-path kernels ...");
    let mut kernel_rows = kernels();
    eprintln!("measuring saturated broker throughput ...");
    let broker_rows = broker_saturated_throughput();
    eprintln!("measuring degraded-mode broker throughput ...");
    let resilience_rows = broker_resilience();
    eprintln!("measuring sharded broker scaling curve ...");
    let scaling_points = broker_scaling(cores);
    eprintln!("measuring networked front-end loopback throughput ...");
    let (net_p50, net_p99, net_p999, net_gps) = netbroker_perf();
    eprintln!("running the provisioning-search probe ...");
    let (prov_secs, prov_report) = provision_bench::perf_section();

    let path = baseline_path();
    let regressed = if check {
        match std::fs::read_to_string(&path) {
            Ok(baseline) => {
                report_parallel_leg(&baseline, &fresh_suite);
                report_scaling(&baseline, &scaling_points);
                run_check(&baseline, &mut kernel_rows)
            }
            Err(e) => {
                eprintln!(
                    "perf check: no baseline at {} ({e}); passing",
                    path.display()
                );
                Vec::new()
            }
        }
    } else {
        Vec::new()
    };
    // Within-run gates: no baseline needed, so they run on every --check
    // even when BENCH_perf.json is absent.
    let warm_regressed = check && run_warm_start_check(&mut kernel_rows);
    let overhead_failed = if check {
        eprintln!("perf check: gating single-shard wrapper overhead ...");
        sharding_overhead_check()
    } else {
        Vec::new()
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p rsin-bench --bin perf_report\",\n");
    json.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    json.push_str(&format!("  \"cpu_cores\": {cores},\n"));
    json.push_str(&perfgate::suite_json(par_jobs, seq_secs, &par_leg));
    json.push_str("  \"broker\": {\n");
    json.push_str("    \"saturated_grants_per_sec\": {\n");
    for (i, (name, rate)) in broker_rows.iter().enumerate() {
        let comma = if i + 1 < broker_rows.len() { "," } else { "" };
        json.push_str(&format!("      \"{name}\": {rate:.0}{comma}\n"));
    }
    json.push_str("    },\n");
    json.push_str("    \"resilience_grants_per_sec\": {\n");
    for (i, (name, healthy, degraded)) in resilience_rows.iter().enumerate() {
        let comma = if i + 1 < resilience_rows.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "      \"{name}\": {{ \"healthy\": {healthy:.0}, \"degraded\": {degraded:.0} }}{comma}\n"
        ));
    }
    json.push_str("    },\n");
    json.push_str(&perfgate::scaling_json(&scaling_points));
    json.push_str("    \"scaling_workers\": 8,\n");
    json.push_str("    \"scaling_resources\": 4\n");
    json.push_str("  },\n");
    json.push_str("  \"netbroker\": {\n");
    json.push_str("    \"clients\": 4,\n");
    json.push_str("    \"tenants\": 3,\n");
    json.push_str("    \"shards\": 2,\n");
    json.push_str(&format!(
        "    \"grant_latency_us\": {{ \"p50\": {net_p50:.0}, \"p99\": {net_p99:.0}, \
         \"p999\": {net_p999:.0} }},\n"
    ));
    json.push_str(&format!("    \"saturated_grants_per_sec\": {net_gps:.0}\n"));
    json.push_str("  },\n");
    // Informational only (not gated): search wall time varies by host; the
    // counters describe the optimizer's pruning and caching behavior on a
    // fixed 16-processor shared-bus probe.
    json.push_str("  \"provisioning\": {\n");
    json.push_str("    \"probe\": \"p=16 sbus-only quick search\",\n");
    json.push_str(&format!("    \"search_wall_seconds\": {prov_secs:.3},\n"));
    json.push_str(&format!(
        "    \"configs_enumerated\": {},\n",
        prov_report.total_configs
    ));
    json.push_str(&format!(
        "    \"configs_evaluated\": {},\n",
        prov_report.evaluated
    ));
    json.push_str(&format!(
        "    \"pruned_fraction\": {:.3},\n",
        prov_report.pruned_fraction()
    ));
    let (prov_hits, prov_misses) = (prov_report.cache_hits, prov_report.cache_misses);
    let prov_hit_rate = if prov_hits + prov_misses == 0 {
        0.0
    } else {
        prov_hits as f64 / (prov_hits + prov_misses) as f64
    };
    json.push_str(&format!(
        "    \"solver_cache_hit_rate\": {prov_hit_rate:.3}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"kernels_ns_per_iter\": {\n");
    for (i, (name, ns)) in kernel_rows.iter().enumerate() {
        let comma = if i + 1 < kernel_rows.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    print!("{json}");
    // Atomic + fatal: a missing or truncated BENCH_perf.json would silently
    // disarm the CI regression gate, so a failed write is a failed run.
    match rsin_bench::output::atomic_write(&path, json.as_bytes()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("perf_report: FAILED — {e}");
            std::process::exit(1);
        }
    }

    let mut failures = Vec::new();
    if !regressed.is_empty() {
        failures.push(format!(
            "{} kernel(s) regressed beyond {REGRESSION_TOLERANCE}x: {}",
            regressed.len(),
            regressed.join(", ")
        ));
    }
    if warm_regressed {
        failures.push(format!(
            "warm rho-grid kernel slower than its cold twin beyond {WARM_START_TOLERANCE}x"
        ));
    }
    if !overhead_failed.is_empty() {
        failures.push(format!(
            "single-shard wrapper overhead beyond {REGRESSION_TOLERANCE}x: {}",
            overhead_failed.join(", ")
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("perf check: FAILED — {f}");
        }
        std::process::exit(1);
    }
}
