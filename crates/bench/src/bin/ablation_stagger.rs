//! Ablation: Omega admission discipline (simultaneous vs staggered).
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text_or_exit(
        "ablation_stagger",
        &rsin_bench::tables::ablation_stagger_text(&q),
    );
}
