//! Regenerates Fig. 8: crossbar delay, µ_s/µ_n = 1.0.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let e = rsin_bench::figures::fig_xbar(1.0, 8, &q);
    rsin_bench::output::emit_or_exit("fig08", &e);
}
