//! Regenerates Fig. 12: Omega delay, µ_s/µ_n = 0.1.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let e = rsin_bench::figures::fig_omega(0.1, 12, &q);
    rsin_bench::output::emit_or_exit("fig12", &e);
}
