//! Ablation: bus arbitration policy (fixed-priority vs random vs RR).
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text_or_exit(
        "ablation_arbiter",
        &rsin_bench::tables::ablation_arbiter_text(&q),
    );
}
