//! Regenerates Table II plus the Section VI equal-cost comparison.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let mut text = rsin_bench::tables::table2_text();
    text.push('\n');
    text.push_str(&rsin_bench::tables::section6_text(&q));
    rsin_bench::output::emit_text_or_exit("table2", &text);
}
