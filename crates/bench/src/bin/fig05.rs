//! Regenerates Fig. 5: single-shared-bus delay, µ_s/µ_n = 1.0 (analytic
//! curves plus a simulation overlay of the 16-partition system).
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let mut e = rsin_bench::figures::fig_sbus(1.0, 5);
    e.add(rsin_bench::figures::sbus_sim_series(
        "16/16x1x1 SBUS/2",
        1.0,
        &q,
    ));
    rsin_bench::output::emit_or_exit("fig05", &e);
}
