//! Ablation: Omega vs indirect binary n-cube wiring.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text_or_exit(
        "ablation_wiring",
        &rsin_bench::tables::ablation_wiring_text(&q),
    );
}
