//! Cost-aware provisioning search over the `p / NET / r` configuration
//! space: per-`p` legs, Pareto frontier artifacts, and a digest-validated
//! resumable manifest.
//!
//! ```text
//! cargo run --release -p rsin-bench --bin provision -- \
//!     --p 16,64,1024 --rho 0.3 --ratio 0.1 --target 1.0 \
//!     [--families sbus,xbar,omega,cube,clx,mlomega] [--max-r 64] \
//!     [--cost-resource 8] [--cost-switch-point 1] [--cost-bus-tap 1] \
//!     [--no-confirm] [--fault-recheck] [--full] [--jobs N] \
//!     [--out-dir DIR] [--resume]
//! ```
//!
//! Artifacts land in `--out-dir` (default `RSIN_OUTPUT_DIR` or
//! `target/experiments`): `provision_p<p>.txt` (the report),
//! `provision_p<p>.csv` (the frontier), and `provision_manifest.json`
//! (the checkpoint `--resume` validates by digest before skipping a leg).
//!
//! Exit codes: 0 on success, 1 when a leg fails or an artifact cannot be
//! persisted, 2 on a malformed flag.

use rsin_bench::provision_bench::{self, ProvisionConfig};

fn main() {
    let cfg = ProvisionConfig::from_args();
    match provision_bench::run(&cfg) {
        Ok(summary) => {
            for leg in &summary.legs {
                if leg.resumed {
                    eprintln!("provision: {} resumed (digest-valid checkpoint)", leg.name);
                } else {
                    eprintln!(
                        "provision: {} {} ({} of {} configs evaluated, {} pruned{})",
                        leg.name,
                        leg.winner.as_deref().unwrap_or("no feasible config"),
                        leg.evaluated,
                        leg.total_configs,
                        leg.pruned,
                        match (leg.confirmed, leg.agrees) {
                            (Some(true), Some(true)) => ", DES-confirmed",
                            // The analytic search decomposes shared fabrics
                            // into independent per-bus chains; the simulated
                            // system meeting the target faster than predicted
                            // is the expected direction of that approximation.
                            (Some(true), _) => ", DES-confirmed (analytic conservative)",
                            (Some(false), _) => ", DES REFUTES (target missed)",
                            (None, _) => "",
                        }
                    );
                }
            }
            if summary.legs.iter().any(|l| l.confirmed == Some(false)) {
                eprintln!("provision: FAILED — DES found a winner missing its delay target");
                std::process::exit(1);
            }
            eprintln!(
                "provision: ok ({} legs, {} resumed, {:.1}s; artifacts in {})",
                summary.legs.len(),
                summary.resumed(),
                summary.wall_seconds,
                summary.out_dir.display()
            );
        }
        Err(e) => {
            eprintln!("provision: FAILED — {e}");
            std::process::exit(1);
        }
    }
}
