//! Ablation: service-time distribution sensitivity.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text_or_exit(
        "ablation_variability",
        &rsin_bench::tables::ablation_variability_text(&q),
    );
}
