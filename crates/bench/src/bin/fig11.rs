//! Regenerates the Fig. 11 distributed-scheduling walkthrough.
fn main() {
    rsin_bench::output::emit_text_or_exit("fig11", &rsin_bench::tables::fig11_text());
}
