//! Runs every figure/table regenerator in sequence.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let mut fig04 = rsin_bench::figures::fig_sbus(0.1, 4);
    fig04.add(rsin_bench::figures::sbus_sim_series(
        "16/16x1x1 SBUS/2",
        0.1,
        &q,
    ));
    rsin_bench::output::emit("fig04", &fig04);
    let mut fig05 = rsin_bench::figures::fig_sbus(1.0, 5);
    fig05.add(rsin_bench::figures::sbus_sim_series(
        "16/16x1x1 SBUS/2",
        1.0,
        &q,
    ));
    rsin_bench::output::emit("fig05", &fig05);
    rsin_bench::output::emit("fig07", &rsin_bench::figures::fig_xbar(0.1, 7, &q));
    rsin_bench::output::emit("fig08", &rsin_bench::figures::fig_xbar(1.0, 8, &q));
    rsin_bench::output::emit("fig12", &rsin_bench::figures::fig_omega(0.1, 12, &q));
    rsin_bench::output::emit("fig13", &rsin_bench::figures::fig_omega(1.0, 13, &q));
    rsin_bench::output::emit_text("table1", &rsin_bench::tables::table1_text());
    let mut t2 = rsin_bench::tables::table2_text();
    t2.push('\n');
    t2.push_str(&rsin_bench::tables::section6_text(&q));
    rsin_bench::output::emit_text("table2", &t2);
    rsin_bench::output::emit_text("blocking", &rsin_bench::tables::blocking_text(&q));
    rsin_bench::output::emit_text("fig11", &rsin_bench::tables::fig11_text());
    rsin_bench::output::emit_text(
        "mapping_example",
        &rsin_bench::tables::mapping_example_text(),
    );
    rsin_bench::output::emit_text(
        "ablation_arbiter",
        &rsin_bench::tables::ablation_arbiter_text(&q),
    );
    rsin_bench::output::emit_text(
        "ablation_stagger",
        &rsin_bench::tables::ablation_stagger_text(&q),
    );
    rsin_bench::output::emit_text(
        "ablation_freshness",
        &rsin_bench::tables::ablation_freshness_text(&q),
    );
    rsin_bench::output::emit_text(
        "ablation_wiring",
        &rsin_bench::tables::ablation_wiring_text(&q),
    );
    rsin_bench::output::emit_text(
        "ablation_placement",
        &rsin_bench::tables::ablation_placement_text(&q),
    );
    rsin_bench::output::emit_text(
        "ablation_variability",
        &rsin_bench::tables::ablation_variability_text(&q),
    );
    eprintln!(
        "all outputs written to {}",
        rsin_bench::output::output_dir().display()
    );
}
