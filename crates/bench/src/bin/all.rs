//! Runs every figure/table regenerator: artifacts are computed on `--jobs`
//! workers (default: all cores, or `RSIN_JOBS`) and emitted in the fixed
//! suite order, so the output is byte-identical to a `--jobs 1` run.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let outputs = rsin_bench::suite::run_suite(&q);
    rsin_bench::suite::emit_all(&outputs);
    eprintln!(
        "all outputs written to {}",
        rsin_bench::output::output_dir().display()
    );
}
