//! Runs every figure/table regenerator under the resilient harness:
//! artifacts are computed on `--jobs` workers (default: all cores, or
//! `RSIN_JOBS`) with panic isolation, watchdog deadlines, and bounded
//! deterministic retries, then emitted in the fixed suite order — so
//! stdout and the artifact files are byte-identical for every worker
//! count.
//!
//! Each artifact is persisted atomically the moment its task finishes and
//! `manifest.json` is checkpointed after every task, so a killed run can
//! be restarted with `--resume` to recompute only what is missing or
//! stale (the final artifacts are byte-identical to an uninterrupted
//! run). `RSIN_CHAOS=panic:<task>,stall:<task>,io` injects failures into
//! the harness for self-testing; any terminal failure makes the process
//! exit nonzero with a one-line summary of what failed.
use rsin_bench::harness::{self, HarnessConfig};

fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let mut cfg = match HarnessConfig::from_env(q) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    cfg.resume = std::env::args().any(|a| a == "--resume");
    let report = harness::run_resilient(&cfg);
    let failures = harness::emit_stdout(&report);
    if report.resumed() > 0 {
        eprintln!(
            "resumed {} task(s) from {}",
            report.resumed(),
            report.out_dir.join("manifest.json").display()
        );
    }
    if failures > 0 {
        let names: Vec<&str> = report
            .tasks
            .iter()
            .filter(|t| t.is_failure())
            .map(|t| t.name)
            .collect();
        eprintln!(
            "all: FAILED — {failures} failure(s) in task(s)/artifact(s): {}",
            names.join(", ")
        );
        std::process::exit(1);
    }
    eprintln!("all outputs written to {}", report.out_dir.display());
}
