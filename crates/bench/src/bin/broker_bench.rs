//! Runs the runtime-broker benchmark: model predictions (deterministic,
//! resumable via `broker_manifest.json`) plus a measured sweep of the SBUS
//! broker under real worker threads.
//!
//! ```text
//! cargo run --release -p rsin-bench --bin broker_bench -- \
//!     --threads 6 --duration-ms 400 --rho 0.2,0.5,0.8 [--jobs N] [--resume]
//! ```
//!
//! Exit codes: 0 on success, 1 when an artifact cannot be persisted or the
//! exclusivity audit flags a violation, 2 on a malformed flag.

use rsin_bench::broker_bench::{self, BrokerBenchConfig};
use rsin_bench::RunQuality;

fn main() {
    let quality = RunQuality::from_args();
    let cfg = BrokerBenchConfig::from_args();
    let resume = std::env::args().any(|a| a == "--resume");
    match broker_bench::run(&cfg, &quality, resume) {
        Ok(summary) => {
            if summary.violations > 0 {
                eprintln!(
                    "broker_bench: FAILED — {} exclusivity violation(s) in the measured sweep",
                    summary.violations
                );
                std::process::exit(1);
            }
            eprintln!(
                "broker_bench: ok (predictions {})",
                if summary.resumed_predictions {
                    "resumed"
                } else {
                    "computed"
                }
            );
        }
        Err(e) => {
            eprintln!("broker_bench: FAILED — {e}");
            std::process::exit(1);
        }
    }
}
