//! Runs the runtime-broker benchmark: model predictions (deterministic,
//! resumable via `broker_manifest.json`) plus a measured sweep of the SBUS
//! broker under real worker threads.
//!
//! ```text
//! cargo run --release -p rsin-bench --bin broker_bench -- \
//!     --threads 6 --duration-ms 400 --rho 0.2,0.5,0.8 \
//!     [--chaos kill=0.25,stall=0.125,seed=7[,mtbf=40,mttr=8]] \
//!     [--jobs N] [--resume]
//! ```
//!
//! `--chaos` (or the `RSIN_BROKER_CHAOS` environment variable) runs the
//! measured sweep under the chaos-hardened driver: seeded client crashes
//! and stalls, optional stochastic resource outages, leases reclaimed by
//! the supervisor.
//!
//! Exit codes: 0 on success, 1 when an artifact cannot be persisted, the
//! exclusivity audit flags a violation, or a chaos run leaks a resource;
//! 2 on a malformed flag (including a malformed chaos spec).

use rsin_bench::broker_bench::{self, BrokerBenchConfig};
use rsin_bench::RunQuality;

fn main() {
    let quality = RunQuality::from_args();
    let cfg = BrokerBenchConfig::from_args();
    let resume = std::env::args().any(|a| a == "--resume");
    match broker_bench::run(&cfg, &quality, resume) {
        Ok(summary) => {
            if summary.violations > 0 {
                eprintln!(
                    "broker_bench: FAILED — {} exclusivity violation(s) in the measured sweep",
                    summary.violations
                );
                std::process::exit(1);
            }
            if summary.leaked > 0 {
                eprintln!(
                    "broker_bench: FAILED — {} resource(s)/grant(s) leaked through \
                     chaos shutdown",
                    summary.leaked
                );
                std::process::exit(1);
            }
            eprintln!(
                "broker_bench: ok (predictions {})",
                if summary.resumed_predictions {
                    "resumed"
                } else {
                    "computed"
                }
            );
        }
        Err(e) => {
            eprintln!("broker_bench: FAILED — {e}");
            std::process::exit(1);
        }
    }
}
