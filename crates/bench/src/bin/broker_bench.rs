//! Runs the runtime-broker benchmark: model predictions (deterministic,
//! resumable via `broker_manifest.json`) plus a measured sweep of the SBUS
//! broker under real worker threads — or, with `--serve`/`--connect`, the
//! networked front-end and its multi-connection wire harness.
//!
//! ```text
//! cargo run --release -p rsin-bench --bin broker_bench -- \
//!     --threads 6 --duration-ms 400 --rho 0.2,0.5,0.8 \
//!     [--chaos kill=0.25,stall=0.125,seed=7[,mtbf=40,mttr=8]] \
//!     [--jobs N] [--resume]
//!
//! # networked front-end: serve on a port (until stdin closes) ...
//! cargo run --release -p rsin-bench --bin broker_bench -- \
//!     --serve 127.0.0.1:7070 --threads 8 --shards 2 --tenants 3
//! # ... or drive a server (`self` spins one up in-process):
//! cargo run --release -p rsin-bench --bin broker_bench -- \
//!     --connect self --threads 8 --shards 2 --tenants 3 --deadline-ms 100 \
//!     [--chaos kill=0.25,stall=0.125,trunc=0.125,junk=0.125,seed=7]
//! ```
//!
//! `--chaos` (or the `RSIN_BROKER_CHAOS` environment variable) runs the
//! measured sweep under the chaos-hardened driver: seeded client crashes
//! and stalls, optional stochastic resource outages, leases reclaimed by
//! the supervisor. In the networked mode `kill=`/`stall=` become
//! connection resets and half-open stalls, and `trunc=`/`junk=` add
//! wire-level truncated frames and byte garbage (those two are net-only).
//!
//! Exit codes: 0 on success, 1 when an artifact cannot be persisted, the
//! exclusivity audit flags a violation, a chaos run leaks a resource, or a
//! networked run never grants; 2 on a malformed flag (including a
//! malformed chaos spec).

use rsin_bench::broker_bench::{self, BrokerBenchConfig};
use rsin_bench::netbench;
use rsin_bench::RunQuality;

fn main() {
    let quality = RunQuality::from_args();
    let cfg = BrokerBenchConfig::from_args();
    let resume = std::env::args().any(|a| a == "--resume");

    if cfg.serve.is_some() {
        match netbench::serve(&cfg) {
            Ok(report) => {
                if report.violations > 0 || report.leaked > 0 {
                    eprintln!(
                        "broker_bench: FAILED — serve shutdown with {} violation(s), {} \
                         leaked slot(s)",
                        report.violations, report.leaked
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "broker_bench: serve ok ({} grants, {} protocol errors)",
                    report.counters.grants, report.counters.protocol_errors
                );
            }
            Err(e) => {
                eprintln!("broker_bench: FAILED — {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cfg.connect.is_some() {
        match netbench::run_net(&cfg, &quality, resume) {
            Ok(summary) => {
                if summary.violations > 0 {
                    eprintln!(
                        "broker_bench: FAILED — {} exclusivity violation(s) on the \
                         server-side ledger",
                        summary.violations
                    );
                    std::process::exit(1);
                }
                if summary.leaked > 0 {
                    eprintln!(
                        "broker_bench: FAILED — {} slot(s) leaked through server shutdown",
                        summary.leaked
                    );
                    std::process::exit(1);
                }
                if summary.grants == 0 {
                    eprintln!("broker_bench: FAILED — the networked sweep never granted");
                    std::process::exit(1);
                }
                eprintln!(
                    "broker_bench: net ok ({} grants; plan {})",
                    summary.grants,
                    if summary.resumed_plan {
                        "resumed"
                    } else {
                        "computed"
                    }
                );
            }
            Err(e) => {
                eprintln!("broker_bench: FAILED — {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    match broker_bench::run(&cfg, &quality, resume) {
        Ok(summary) => {
            if summary.violations > 0 {
                eprintln!(
                    "broker_bench: FAILED — {} exclusivity violation(s) in the measured sweep",
                    summary.violations
                );
                std::process::exit(1);
            }
            if summary.leaked > 0 {
                eprintln!(
                    "broker_bench: FAILED — {} resource(s)/grant(s) leaked through \
                     chaos shutdown",
                    summary.leaked
                );
                std::process::exit(1);
            }
            eprintln!(
                "broker_bench: ok (predictions {})",
                if summary.resumed_predictions {
                    "resumed"
                } else {
                    "computed"
                }
            );
        }
        Err(e) => {
            eprintln!("broker_bench: FAILED — {e}");
            std::process::exit(1);
        }
    }
}
