//! Regenerates Fig. 4: single-shared-bus delay, µ_s/µ_n = 0.1 (analytic
//! curves plus a simulation overlay of the 16-partition system).
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let mut e = rsin_bench::figures::fig_sbus(0.1, 4);
    e.add(rsin_bench::figures::sbus_sim_series(
        "16/16x1x1 SBUS/2",
        0.1,
        &q,
    ));
    rsin_bench::output::emit_or_exit("fig04", &e);
}
