//! Ablation: typed-resource placement (blocked vs interleaved).
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text_or_exit(
        "ablation_placement",
        &rsin_bench::tables::ablation_placement_text(&q),
    );
}
