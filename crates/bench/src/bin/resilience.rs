//! Regenerates the fault-injection resilience experiment: delivered
//! throughput and normalized delay versus failed elements, distributed
//! 16×16 Omega versus the centralized-scheduler baseline.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let points = rsin_bench::resilience::sweep(&q);
    rsin_bench::output::emit_or_exit(
        "resilience",
        &rsin_bench::resilience::throughput_experiment(&points),
    );
    rsin_bench::output::emit_or_exit(
        "resilience_delay",
        &rsin_bench::resilience::delay_experiment(&points),
    );
    rsin_bench::output::emit_text_or_exit(
        "resilience_summary",
        &rsin_bench::resilience::summary(&points),
    );
}
