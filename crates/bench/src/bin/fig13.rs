//! Regenerates Fig. 13: Omega delay, µ_s/µ_n = 1.0.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    let e = rsin_bench::figures::fig_omega(1.0, 13, &q);
    rsin_bench::output::emit_or_exit("fig13", &e);
}
