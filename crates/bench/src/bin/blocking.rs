//! Regenerates the Section V blocking-probability comparison.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text_or_exit("blocking", &rsin_bench::tables::blocking_text(&q));
}
