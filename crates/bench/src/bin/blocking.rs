//! Regenerates the Section V blocking-probability comparison.
fn main() {
    let q = rsin_bench::RunQuality::from_args();
    rsin_bench::output::emit_text("blocking", &rsin_bench::tables::blocking_text(&q));
}
