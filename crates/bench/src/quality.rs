//! Run-quality presets shared by the experiment regenerators.

use rsin_core::{ConfigError, SimOptions};

/// How much simulation effort to spend per point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunQuality {
    /// Warm-up allocations per replication.
    pub warmup: u64,
    /// Measured allocations per replication.
    pub measured: u64,
    /// Independent replications per simulation point.
    pub reps: usize,
    /// Monte Carlo trials (blocking experiment).
    pub trials: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel stages; `0` means auto
    /// ([`rsin_des::default_jobs`]: the `RSIN_JOBS` environment variable or
    /// the machine's available parallelism). Results are byte-identical for
    /// every value.
    pub jobs: usize,
}

impl RunQuality {
    /// Fast preset for smoke tests and CI (seconds per figure).
    #[must_use]
    pub fn quick() -> Self {
        RunQuality {
            warmup: 1_000,
            measured: 8_000,
            reps: 2,
            trials: 2_000,
            seed: 1983,
            jobs: 0,
        }
    }

    /// Publication preset (minutes per figure).
    #[must_use]
    pub fn full() -> Self {
        RunQuality {
            warmup: 5_000,
            measured: 40_000,
            reps: 5,
            trials: 20_000,
            seed: 1983,
            jobs: 0,
        }
    }

    /// Chooses the preset from the process arguments: `--full` selects the
    /// publication preset; `--jobs N` (or `--jobs=N`) pins the worker
    /// count, which changes only wall-clock time, never the results.
    ///
    /// A malformed `--jobs` value is an actionable error on stderr followed
    /// by exit code 2 — silently falling back to a default would make a
    /// typo'd run differ from the one the user asked for.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match RunQuality::try_from_args(&args) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// [`RunQuality::from_args`] over an explicit argument list, returning
    /// a typed error instead of exiting.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] when `--jobs` is present but its value is
    /// missing, not an integer, or zero.
    pub fn try_from_args(args: &[String]) -> Result<Self, ConfigError> {
        let mut q = if args.iter().any(|a| a == "--full") {
            RunQuality::full()
        } else {
            RunQuality::quick()
        };
        q.jobs = parse_jobs(args)?.unwrap_or(0);
        Ok(q)
    }

    /// A stable fingerprint of everything that determines the suite's
    /// *results* (worker count excluded — it never changes artifacts).
    /// Resume manifests record it so a `--resume` against artifacts from a
    /// different preset recomputes instead of mixing qualities.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "warmup={} measured={} reps={} trials={} seed={}",
            self.warmup, self.measured, self.reps, self.trials, self.seed
        )
    }

    /// The resolved worker count: the explicit value, or
    /// [`rsin_des::default_jobs`] when `jobs == 0`.
    #[must_use]
    pub fn jobs(&self) -> usize {
        if self.jobs == 0 {
            rsin_des::default_jobs()
        } else {
            self.jobs
        }
    }

    /// Simulator options for this preset.
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            warmup_tasks: self.warmup,
            measured_tasks: self.measured,
        }
    }
}

/// Extracts `--jobs N` / `--jobs=N` from an argument list. `Ok(None)` when
/// the flag is absent; a typed error when it is present but unusable.
fn parse_jobs(args: &[String]) -> Result<Option<usize>, ConfigError> {
    let parse = |v: &str| -> Result<Option<usize>, ConfigError> {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(ConfigError::Parse {
                input: format!("--jobs {v}"),
                expected: "a positive worker count, e.g. --jobs 4",
            }),
        }
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return match it.next() {
                Some(v) => parse(v),
                None => Err(ConfigError::Parse {
                    input: "--jobs".into(),
                    expected: "a worker count after --jobs, e.g. --jobs 4",
                }),
            };
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return parse(v);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn jobs_flag_is_parsed_in_both_spellings() {
        assert_eq!(parse_jobs(&args(&["bin", "--jobs", "4"])), Ok(Some(4)));
        assert_eq!(
            parse_jobs(&args(&["bin", "--jobs=8", "--full"])),
            Ok(Some(8))
        );
        assert_eq!(parse_jobs(&args(&["bin", "--full"])), Ok(None));
    }

    #[test]
    fn malformed_jobs_is_a_typed_actionable_error() {
        for bad in [
            args(&["bin", "--jobs"]),
            args(&["bin", "--jobs", "zero"]),
            args(&["bin", "--jobs=0"]),
            args(&["bin", "--jobs=-2"]),
        ] {
            let err = parse_jobs(&bad).expect_err("must reject");
            assert!(
                err.to_string().contains("--jobs"),
                "error must name the flag: {err}"
            );
            assert!(RunQuality::try_from_args(&bad).is_err());
        }
    }

    #[test]
    fn fingerprint_tracks_result_relevant_fields_only() {
        let q = RunQuality::quick();
        let same_but_parallel = RunQuality { jobs: 8, ..q };
        assert_eq!(q.fingerprint(), same_but_parallel.fingerprint());
        let other = RunQuality { seed: 7, ..q };
        assert_ne!(q.fingerprint(), other.fingerprint());
        assert_ne!(q.fingerprint(), RunQuality::full().fingerprint());
    }

    #[test]
    fn zero_jobs_resolves_to_a_positive_default() {
        let q = RunQuality::quick();
        assert_eq!(q.jobs, 0);
        assert!(q.jobs() >= 1);
        let pinned = RunQuality {
            jobs: 3,
            ..RunQuality::quick()
        };
        assert_eq!(pinned.jobs(), 3);
    }

    #[test]
    fn quick_is_cheaper_than_full() {
        let q = RunQuality::quick();
        let f = RunQuality::full();
        assert!(q.measured < f.measured);
        assert!(q.reps <= f.reps);
        assert!(q.trials < f.trials);
        assert_eq!(q.sim_options().measured_tasks, q.measured);
    }
}
