//! Run-quality presets shared by the experiment regenerators.

use rsin_core::SimOptions;

/// How much simulation effort to spend per point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunQuality {
    /// Warm-up allocations per replication.
    pub warmup: u64,
    /// Measured allocations per replication.
    pub measured: u64,
    /// Independent replications per simulation point.
    pub reps: usize,
    /// Monte Carlo trials (blocking experiment).
    pub trials: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel stages; `0` means auto
    /// ([`rsin_des::default_jobs`]: the `RSIN_JOBS` environment variable or
    /// the machine's available parallelism). Results are byte-identical for
    /// every value.
    pub jobs: usize,
}

impl RunQuality {
    /// Fast preset for smoke tests and CI (seconds per figure).
    #[must_use]
    pub fn quick() -> Self {
        RunQuality {
            warmup: 1_000,
            measured: 8_000,
            reps: 2,
            trials: 2_000,
            seed: 1983,
            jobs: 0,
        }
    }

    /// Publication preset (minutes per figure).
    #[must_use]
    pub fn full() -> Self {
        RunQuality {
            warmup: 5_000,
            measured: 40_000,
            reps: 5,
            trials: 20_000,
            seed: 1983,
            jobs: 0,
        }
    }

    /// Chooses the preset from the process arguments: `--full` selects the
    /// publication preset; `--jobs N` (or `--jobs=N`) pins the worker
    /// count, which changes only wall-clock time, never the results.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut q = if args.iter().any(|a| a == "--full") {
            RunQuality::full()
        } else {
            RunQuality::quick()
        };
        q.jobs = parse_jobs(&args).unwrap_or(0);
        q
    }

    /// The resolved worker count: the explicit value, or
    /// [`rsin_des::default_jobs`] when `jobs == 0`.
    #[must_use]
    pub fn jobs(&self) -> usize {
        if self.jobs == 0 {
            rsin_des::default_jobs()
        } else {
            self.jobs
        }
    }

    /// Simulator options for this preset.
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            warmup_tasks: self.warmup,
            measured_tasks: self.measured,
        }
    }
}

/// Extracts `--jobs N` / `--jobs=N` from an argument list.
fn parse_jobs(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return it.next()?.parse().ok();
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_flag_is_parsed_in_both_spellings() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs(&args(&["bin", "--jobs", "4"])), Some(4));
        assert_eq!(parse_jobs(&args(&["bin", "--jobs=8", "--full"])), Some(8));
        assert_eq!(parse_jobs(&args(&["bin", "--full"])), None);
        assert_eq!(parse_jobs(&args(&["bin", "--jobs"])), None);
    }

    #[test]
    fn zero_jobs_resolves_to_a_positive_default() {
        let q = RunQuality::quick();
        assert_eq!(q.jobs, 0);
        assert!(q.jobs() >= 1);
        let pinned = RunQuality {
            jobs: 3,
            ..RunQuality::quick()
        };
        assert_eq!(pinned.jobs(), 3);
    }

    #[test]
    fn quick_is_cheaper_than_full() {
        let q = RunQuality::quick();
        let f = RunQuality::full();
        assert!(q.measured < f.measured);
        assert!(q.reps <= f.reps);
        assert!(q.trials < f.trials);
        assert_eq!(q.sim_options().measured_tasks, q.measured);
    }
}
