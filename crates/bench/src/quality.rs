//! Run-quality presets shared by the experiment regenerators.

use rsin_core::SimOptions;

/// How much simulation effort to spend per point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunQuality {
    /// Warm-up allocations per replication.
    pub warmup: u64,
    /// Measured allocations per replication.
    pub measured: u64,
    /// Independent replications per simulation point.
    pub reps: usize,
    /// Monte Carlo trials (blocking experiment).
    pub trials: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl RunQuality {
    /// Fast preset for smoke tests and CI (seconds per figure).
    #[must_use]
    pub fn quick() -> Self {
        RunQuality {
            warmup: 1_000,
            measured: 8_000,
            reps: 2,
            trials: 2_000,
            seed: 1983,
        }
    }

    /// Publication preset (minutes per figure).
    #[must_use]
    pub fn full() -> Self {
        RunQuality {
            warmup: 5_000,
            measured: 40_000,
            reps: 5,
            trials: 20_000,
            seed: 1983,
        }
    }

    /// Chooses the preset from the process arguments (`--full` selects the
    /// publication preset).
    #[must_use]
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            RunQuality::full()
        } else {
            RunQuality::quick()
        }
    }

    /// Simulator options for this preset.
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            warmup_tasks: self.warmup,
            measured_tasks: self.measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_cheaper_than_full() {
        let q = RunQuality::quick();
        let f = RunQuality::full();
        assert!(q.measured < f.measured);
        assert!(q.reps <= f.reps);
        assert!(q.trials < f.trials);
        assert_eq!(q.sim_options().measured_tasks, q.measured);
    }
}
