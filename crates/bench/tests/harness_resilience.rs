//! End-to-end tests of the resilient suite harness: panic isolation,
//! watchdog abandonment + retry, and crash-safe `--resume` semantics.
//!
//! Every test drives [`rsin_bench::harness::run_resilient`] directly with
//! an explicit output directory and an explicit [`ChaosPlan`] — no
//! environment variables — so the tests can run concurrently.

use rsin_bench::harness::{ChaosPlan, HarnessConfig, TaskOutcome};
use rsin_bench::manifest::{EntryStatus, Manifest};
use rsin_bench::RunQuality;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A preset small enough that the whole 17-task suite runs in seconds.
fn tiny(jobs: usize) -> RunQuality {
    RunQuality {
        warmup: 20,
        measured: 120,
        reps: 2,
        trials: 200,
        jobs,
        ..RunQuality::quick()
    }
}

/// A fresh, empty output directory unique to this test.
fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsin_harness_it_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn config_in(dir: &Path, jobs: usize) -> HarnessConfig {
    let mut cfg = HarnessConfig::new(tiny(jobs));
    cfg.out_dir = dir.to_path_buf();
    cfg
}

/// Reads every suite artifact (`*.txt`, `*.csv`) in a directory as
/// `(file name, bytes)`, sorted by name. `manifest.json` is excluded —
/// its duration fields legitimately vary run to run.
fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read test dir")
        .map(|e| e.expect("dir entry"))
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".txt") || name.ends_with(".csv")
        })
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).expect("read artifact");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn chaos_panic_isolates_one_task_and_the_rest_complete() {
    let dir = test_dir("panic_isolation");
    let mut cfg = config_in(&dir, 3);
    cfg.chaos = Arc::new(ChaosPlan::none().with_panic("fig07"));
    cfg.backoff_base = Duration::from_millis(5);

    let report = rsin_bench::harness::run_resilient(&cfg);

    assert_eq!(report.tasks.len(), 17);
    for t in &report.tasks {
        if t.name == "fig07" {
            assert!(
                matches!(t.outcome, TaskOutcome::Failed(_)),
                "fig07 must fail terminally"
            );
            assert_eq!(t.attempts, 3, "1 attempt + max_retries retries");
        } else {
            assert!(
                matches!(t.outcome, TaskOutcome::Computed(_)),
                "{} must survive fig07's panics",
                t.name
            );
            assert!(t.persist_error.is_none(), "{} must persist", t.name);
            assert!(
                dir.join(format!("{}.txt", t.name)).exists(),
                "{}.txt must be on disk",
                t.name
            );
        }
    }
    let failures = report.failure_lines();
    assert_eq!(failures.len(), 1);
    assert!(
        failures[0].contains("fig07"),
        "report names the task: {failures:?}"
    );
    assert!(
        !dir.join("fig07.txt").exists(),
        "failed task leaves no artifact"
    );

    // The checkpointed manifest records the failure in a machine-readable
    // form, with digests for everything that succeeded.
    let manifest = Manifest::load(&dir.join("manifest.json")).expect("manifest written");
    assert_eq!(manifest.entries.len(), 17);
    let failed = manifest.entry("fig07").expect("fig07 entry");
    assert_eq!(failed.status, EntryStatus::Failed);
    assert!(failed.digest.is_none());
    assert!(
        failed.error.as_deref().unwrap_or("").contains("panicked"),
        "entry carries the failure: {:?}",
        failed.error
    );
    let ok = manifest.entry("fig04").expect("fig04 entry");
    assert_eq!(ok.status, EntryStatus::Ok);
    assert!(ok.digest.is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_partial_run_matches_a_cold_run_byte_for_byte() {
    // Reference: an uninterrupted sequential run.
    let cold_dir = test_dir("resume_cold");
    let cold = rsin_bench::harness::run_resilient(&config_in(&cold_dir, 1));
    assert!(cold.failure_lines().is_empty(), "cold run is clean");

    // "Interrupted" run: two tasks are knocked out by chaos, so the first
    // pass checkpoints a partial suite...
    let dir = test_dir("resume_partial");
    let mut cfg = config_in(&dir, 3);
    cfg.chaos = Arc::new(ChaosPlan::none().with_panic("fig04").with_panic("table2"));
    cfg.backoff_base = Duration::from_millis(5);
    let partial = rsin_bench::harness::run_resilient(&cfg);
    assert_eq!(partial.failure_lines().len(), 2);

    // ...and a `--resume` pass (chaos gone) recomputes exactly the missing
    // two, skipping the 15 digest-valid artifacts.
    let mut cfg = config_in(&dir, 3);
    cfg.resume = true;
    let resumed = rsin_bench::harness::run_resilient(&cfg);
    assert!(
        resumed.failure_lines().is_empty(),
        "resume completes the suite"
    );
    assert_eq!(resumed.resumed(), 15);
    for t in &resumed.tasks {
        match t.name {
            "fig04" | "table2" => assert!(
                matches!(t.outcome, TaskOutcome::Computed(_)),
                "{} must be recomputed",
                t.name
            ),
            _ => assert!(
                matches!(t.outcome, TaskOutcome::Resumed { .. }),
                "{} must be skipped",
                t.name
            ),
        }
    }

    // The interrupted-then-resumed directory is byte-identical to the cold
    // one — different worker counts included.
    let cold_files = artifact_bytes(&cold_dir);
    let resumed_files = artifact_bytes(&dir);
    assert_eq!(
        cold_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        resumed_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "same artifact set"
    );
    for ((name, a), (_, b)) in cold_files.iter().zip(&resumed_files) {
        assert_eq!(a, b, "artifact {name} differs from the cold run");
    }

    // Manifest digests (the result-bearing fields) agree as well.
    let cold_manifest = Manifest::load(&cold_dir.join("manifest.json")).expect("cold manifest");
    let manifest = Manifest::load(&dir.join("manifest.json")).expect("resumed manifest");
    for e in &cold_manifest.entries {
        let r = manifest.entry(&e.name).expect("entry present after resume");
        assert_eq!(e.digest, r.digest, "digest for {}", e.name);
        assert_eq!(e.csv_digest, r.csv_digest, "csv digest for {}", e.name);
        assert_eq!(r.status, EntryStatus::Ok);
    }

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_recomputes_tampered_artifacts() {
    let dir = test_dir("resume_tamper");
    let first = rsin_bench::harness::run_resilient(&config_in(&dir, 2));
    assert!(first.failure_lines().is_empty());
    let path = dir.join("fig11.txt");
    let original = std::fs::read(&path).expect("fig11 artifact");
    std::fs::write(&path, b"tampered\n").expect("tamper");

    let mut cfg = config_in(&dir, 2);
    cfg.resume = true;
    let resumed = rsin_bench::harness::run_resilient(&cfg);
    assert_eq!(resumed.resumed(), 16, "only the tampered task recomputes");
    let fig11 = resumed
        .tasks
        .iter()
        .find(|t| t.name == "fig11")
        .expect("fig11 report");
    assert!(matches!(fig11.outcome, TaskOutcome::Computed(_)));
    assert_eq!(
        std::fs::read(&path).expect("fig11 artifact"),
        original,
        "recomputation restores the digest-valid bytes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_ignores_a_manifest_from_a_different_quality_preset() {
    let dir = test_dir("resume_quality");
    let first = rsin_bench::harness::run_resilient(&config_in(&dir, 2));
    assert!(first.failure_lines().is_empty());

    let mut other = tiny(2);
    other.seed += 1;
    let mut cfg = HarnessConfig::new(other);
    cfg.out_dir = dir.clone();
    cfg.resume = true;
    let resumed = rsin_bench::harness::run_resilient(&cfg);
    assert_eq!(
        resumed.resumed(),
        0,
        "a different seed invalidates every checkpoint"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_first_attempt_is_abandoned_and_the_retry_succeeds() {
    let dir = test_dir("stall_retry");
    let mut cfg = config_in(&dir, 4);
    // fig11 is a pure text task that normally finishes in microseconds, so
    // a short hard deadline only ever bites the injected stall.
    cfg.chaos = Arc::new(ChaosPlan::none().with_stall("fig11"));
    cfg.soft_deadline = Duration::from_millis(500);
    cfg.hard_deadline = Duration::from_secs(3);
    cfg.backoff_base = Duration::from_millis(5);

    let report = rsin_bench::harness::run_resilient(&cfg);
    assert!(report.failure_lines().is_empty(), "the retry recovers");
    let fig11 = report
        .tasks
        .iter()
        .find(|t| t.name == "fig11")
        .expect("fig11 report");
    assert!(matches!(fig11.outcome, TaskOutcome::Computed(_)));
    assert_eq!(fig11.attempts, 2, "abandoned first attempt + clean retry");
    assert!(fig11.stalled, "the stall is recorded");

    let manifest = Manifest::load(&dir.join("manifest.json")).expect("manifest written");
    let entry = manifest.entry("fig11").expect("fig11 entry");
    assert_eq!(entry.status, EntryStatus::Ok);
    assert_eq!(entry.attempts, 2);
    assert!(entry.stalled);

    let _ = std::fs::remove_dir_all(&dir);
}
