//! Chaos acceptance suite: the three distributed disciplines keep
//! granting through seeded client crashes and stalls — zero exclusivity
//! violations, every leaked lease reclaimed, full capacity recovered at
//! shutdown — while the central-scheduler baseline demonstrably stops the
//! moment its arbiter dies. This is the paper's distributed-vs-central
//! resilience claim, executed rather than modeled.
//!
//! Timing-sensitive (leases expire on a wall clock): serialized on a
//! static mutex, single-core friendly.

use rsin_broker::{
    run_load_chaos, run_saturated_chaos, Broker, CentralBroker, ChaosOptions, ChaosPlan,
    ClientChaos, ClientEvent, LoadConfig, OmegaBroker, RunControl, SbusBroker, XbarBroker,
    XbarPolicy,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lease long enough that well-behaved holders (service ≈ 0.25 ms here)
/// never expire, short enough that eviction is prompt on this scale.
const LEASE: Duration = Duration::from_millis(4);

/// The seeded schedule every discipline faces: 25% of the client threads
/// crash mid-protocol and 12.5% stall far past their lease, at seeded
/// times inside the measured window.
fn chaos_plan(workers: usize) -> ChaosPlan {
    let plan = ChaosPlan::seeded(0xC405, workers, 0.25, 0.125, (10.0, 40.0), 20.0);
    assert!(
        plan.crashes() + plan.stalls() >= workers.div_ceil(10),
        "schedule must touch at least 10% of the client threads"
    );
    plan
}

fn chaos_cfg() -> LoadConfig {
    let mut cfg = LoadConfig::new(0.5, 2.0);
    cfg.scale_us = 500.0;
    cfg.warmup = 5.0;
    cfg.duration = 80.0;
    cfg.drain = 40.0;
    cfg.seed = 0xBEEF;
    cfg
}

/// The tentpole acceptance check, per discipline: run the seeded chaos
/// schedule and require exclusivity, reclamation, liveness, and a clean
/// shutdown inventory.
fn assert_survives_chaos<B: Broker + ?Sized>(broker: &B, name: &str) {
    let plan = chaos_plan(broker.workers());
    let cfg = chaos_cfg();
    let opts = ChaosOptions::new(plan.clone(), LEASE);
    let report = run_load_chaos(broker, &cfg, &opts);
    assert_eq!(
        report.load.violations, 0,
        "{name}: exclusivity violated under chaos"
    );
    assert_eq!(
        report.crashed,
        plan.crashes(),
        "{name}: every scheduled crash must fire"
    );
    assert_eq!(
        report.stalled,
        plan.stalls(),
        "{name}: every scheduled stall must fire"
    );
    assert!(
        report.reclaimed + report.forced_reclaims >= plan.crashes() as u64,
        "{name}: {} reclaims cannot cover {} leaked grants",
        report.reclaimed + report.forced_reclaims,
        plan.crashes()
    );
    assert!(
        report.post_chaos_grants > 0,
        "{name}: no grants after the last chaos event — the system wedged"
    );
    assert_eq!(
        report.available_at_end,
        broker.resources(),
        "{name}: resources leaked through shutdown"
    );
    assert_eq!(
        report.ledger_held_at_end, 0,
        "{name}: audit ledger still records held grants"
    );
}

#[test]
fn xbar_token_rotation_survives_chaos() {
    let _guard = serial();
    let broker = XbarBroker::with_lease(8, 4, XbarPolicy::TokenRotation, LEASE);
    assert_survives_chaos(&broker, "xbar/token");
}

#[test]
fn xbar_fixed_priority_survives_chaos() {
    let _guard = serial();
    let broker = XbarBroker::with_lease(8, 4, XbarPolicy::FixedPriority, LEASE);
    assert_survives_chaos(&broker, "xbar/fixed");
}

#[test]
fn sbus_survives_chaos() {
    let _guard = serial();
    let broker = SbusBroker::with_lease(8, 4, LEASE);
    assert_survives_chaos(&broker, "sbus");
}

#[test]
fn omega_survives_chaos() {
    let _guard = serial();
    let broker = OmegaBroker::with_lease(8, 8, LEASE);
    assert_survives_chaos(&broker, "omega");
}

/// After any number of holder deaths the rotating token must still exist,
/// uniquely: a post-chaos serial sweep in which every worker acquires and
/// releases once can only complete if exactly one live token circulates
/// (zero tokens wedges the sweep; a duplicated token shows up as an
/// exclusivity violation during the chaos run itself).
#[test]
fn token_rotation_has_exactly_one_live_token_after_chaos() {
    let _guard = serial();
    let broker = XbarBroker::with_lease(6, 1, XbarPolicy::TokenRotation, LEASE);
    let plan = ChaosPlan::seeded(0x70CE, 6, 0.34, 0.0, (10.0, 40.0), 5.0);
    assert!(plan.crashes() >= 2, "want multiple token-relevant deaths");
    let cfg = chaos_cfg();
    let opts = ChaosOptions::new(plan.clone(), LEASE);
    let report = run_load_chaos(&broker, &cfg, &opts);
    assert_eq!(report.load.violations, 0, "duplicated token double-grants");
    assert_eq!(report.crashed, plan.crashes());
    assert_eq!(report.available_at_end, 1);

    // The liveness sweep, under a watchdog so a lost token fails loudly
    // instead of hanging the suite.
    let ctl = RunControl::new();
    std::thread::scope(|s| {
        let watchdog = s.spawn(|| {
            std::thread::sleep(Duration::from_secs(3));
            ctl.stop();
        });
        for w in 0..6 {
            let grant = broker
                .acquire(w, &ctl)
                .unwrap_or_else(|| panic!("worker {w}: token lost after chaos"));
            broker.end_transmission(w, grant);
            broker.release(w, grant);
        }
        drop(watchdog); // sweep done; let the watchdog run out harmlessly
    });
}

/// Stall-only schedule: live-but-slow stragglers are evicted by the
/// supervisor and their own late releases land as stale no-ops — no
/// violation, no leak, and the stragglers' threads all return normally.
#[test]
fn stalled_stragglers_are_evicted_and_release_stale() {
    let _guard = serial();
    let broker = SbusBroker::with_lease(8, 2, LEASE);
    let plan = ChaosPlan::seeded(0x57A1, 8, 0.0, 0.25, (10.0, 30.0), 25.0);
    assert!(plan.stalls() >= 2);
    let cfg = chaos_cfg();
    let opts = ChaosOptions::new(plan.clone(), LEASE);
    let report = run_load_chaos(&broker, &cfg, &opts);
    assert_eq!(report.crashed, 0, "nobody dies in a stall-only schedule");
    assert_eq!(report.stalled, plan.stalls());
    assert_eq!(report.load.violations, 0);
    assert!(
        report.reclaimed >= plan.stalls() as u64,
        "each 12.5 ms stall must outlive the 4 ms lease and be evicted"
    );
    assert_eq!(report.available_at_end, 2);
    assert_eq!(report.ledger_held_at_end, 0);
}

/// The saturated driver under a kill: the survivors keep the grant rate
/// up and the dead worker's lease is reclaimed.
#[test]
fn saturated_chaos_keeps_granting_through_a_kill() {
    let _guard = serial();
    let broker = XbarBroker::with_lease(4, 2, XbarPolicy::TokenRotation, LEASE);
    let plan = ChaosPlan::new().with(ClientEvent {
        at: 30.0, // milliseconds, on the saturated driver's wall clock
        worker: 1,
        kind: ClientChaos::Crash,
    });
    let opts = ChaosOptions::new(plan, LEASE);
    let report = run_saturated_chaos(
        &broker,
        Duration::from_micros(300),
        Duration::from_millis(150),
        &opts,
    );
    assert_eq!(report.sat.violations, 0);
    assert_eq!(report.crashed, 1, "the kill must fire");
    assert!(
        report.reclaimed + report.forced_reclaims >= 1,
        "the dead worker's grant must be reclaimed"
    );
    assert!(
        report.post_chaos_grants > 0,
        "survivors must keep granting after the kill"
    );
    assert_eq!(report.available_at_end, 2);
}

/// The paper's resilience claim, head to head: kill the central arbiter
/// and granting stops (only in-flight grants land); give a distributed
/// discipline the same treatment — a worker killed mid-protocol — and the
/// survivors keep granting.
#[test]
fn central_spof_stops_granting_while_distributed_continues() {
    let _guard = serial();

    // Central: one arbiter thread, killable.
    let central = CentralBroker::new(4, 2);
    let ctl = RunControl::new();
    let grants = AtomicU64::new(0);
    let (at_kill, at_end) = std::thread::scope(|s| {
        for w in 0..4 {
            let (grants, ctl, central) = (&grants, &ctl, &central);
            s.spawn(move || {
                while let Some(grant) = central.acquire(w, ctl) {
                    grants.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(200));
                    central.release(w, grant);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(40));
        central.kill_arbiter();
        let at_kill = grants.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(40));
        let at_end = grants.load(Ordering::Relaxed);
        ctl.stop();
        (at_kill, at_end)
    });
    assert!(at_kill > 10, "arbiter must have been granting before death");
    assert!(
        at_end - at_kill <= 4,
        "dead arbiter kept granting: {} grants after the kill",
        at_end - at_kill
    );

    // Distributed, same treatment: kill a client, throughput survives.
    let broker = XbarBroker::with_lease(4, 2, XbarPolicy::TokenRotation, LEASE);
    let plan = ChaosPlan::new().with(ClientEvent {
        at: 40.0, // ms
        worker: 0,
        kind: ClientChaos::Crash,
    });
    let opts = ChaosOptions::new(plan, LEASE);
    let report = run_saturated_chaos(
        &broker,
        Duration::from_micros(200),
        Duration::from_millis(80),
        &opts,
    );
    assert_eq!(report.crashed, 1);
    assert!(
        report.post_chaos_grants > 10,
        "distributed discipline must keep granting after a death \
         (got {} post-chaos grants)",
        report.post_chaos_grants
    );
    assert_eq!(report.sat.violations, 0);
    assert_eq!(report.available_at_end, 2);
}

/// A client dies mid-steal: its home shard is exhausted, so its last grant
/// was stolen from the sibling shard — and the thread exits without
/// releasing it. The reclaimer must route the expired lease back to the
/// *owning* shard (a stolen slot must never be double-granted or leaked),
/// refund the shard's credit hint, and leave the pool fully available.
#[test]
fn dead_thief_leaks_nothing_across_shards() {
    let _guard = serial();
    // 2 shards × 1 slot; workers 0/2 are home on shard 0, workers 1/3 on
    // shard 1.
    let broker = rsin_broker::ShardedBroker::sbus_with_lease(4, 2, 2, LEASE);
    let ctl = RunControl::new();

    // Exhaust the thief's home shard.
    let home_hold = broker.acquire(0, &ctl).expect("shard 0 free");
    // Worker 2 (also home on shard 0) must now steal from shard 1 — and
    // its thread dies holding the stolen grant.
    std::thread::scope(|s| {
        s.spawn(|| {
            let stolen = broker.acquire(2, &ctl).expect("steals from shard 1");
            broker.end_transmission(2, stolen);
            // Crash: exit without releasing.
        });
    });
    assert_eq!(broker.stolen_grants(), 1, "the grant must have been stolen");
    assert_eq!(broker.available_resources(), 0);

    // The live holder releases before its own lease runs out, so the only
    // expirable lease is the dead thief's.
    broker.end_transmission(0, home_hold);
    broker.release(0, home_hold);

    // The orphan's lease expires; reclamation must find it on the shard
    // that owns the slot and audit it with its global index.
    std::thread::sleep(2 * LEASE);
    let mut reclaimed = Vec::new();
    let n = broker.reclaim_expired(&mut |resource, holder| reclaimed.push((resource, holder)));
    assert_eq!(n, 1, "exactly the dead thief's lease expires");
    assert_eq!(reclaimed, vec![(1, 2)], "shard 1's slot, held by worker 2");

    // The slot is grantable again, by its home-shard local.
    let again = broker.acquire(3, &ctl).expect("reclaimed slot grants");
    assert_eq!(again.resource, 1);
    broker.end_transmission(3, again);
    broker.release(3, again);
    assert_eq!(broker.available_resources(), 2, "nothing leaked");
}

/// The saturated chaos driver over the sharded broker: a kill lands while
/// the steal path is continuously probed (2 shards × 1 slot under 4
/// saturating workers), and the sharded pool still shows zero violations,
/// prompt reclamation, post-kill liveness, and a clean shutdown inventory.
#[test]
fn sharded_saturated_chaos_survives_a_mid_steal_kill() {
    let _guard = serial();
    let broker = rsin_broker::ShardedBroker::sbus_with_lease(4, 2, 2, LEASE);
    let plan = ChaosPlan::new().with(ClientEvent {
        at: 30.0, // milliseconds, on the saturated driver's wall clock
        worker: 2,
        kind: ClientChaos::Crash,
    });
    let opts = ChaosOptions::new(plan, LEASE);
    let report = run_saturated_chaos(
        &broker,
        Duration::from_micros(300),
        Duration::from_millis(150),
        &opts,
    );
    assert_eq!(report.sat.violations, 0, "stealing must never double-grant");
    assert_eq!(report.crashed, 1, "the kill must fire");
    assert!(
        report.reclaimed + report.forced_reclaims >= 1,
        "the dead worker's lease must be reclaimed"
    );
    assert!(
        report.post_chaos_grants > 0,
        "survivors must keep granting after the kill"
    );
    assert_eq!(report.available_at_end, 2, "full pool back at shutdown");
    // Under symmetric saturation the camp gates route each shard's
    // capacity to its own campers, so completed steals are load-dependent;
    // the steal path must still be probed throughout (completed-steal
    // coverage is the deterministic dead-thief test above).
    assert!(
        broker.steal_probes() > 0,
        "saturating 2 one-slot shards must keep the steal path probing"
    );
}
