//! Fairness regression: under saturation, fixed-priority crossbar
//! arbitration starves the highest-index requester while the
//! token-rotation variant bounds every requester's wait — asserted in
//! BOTH the gate-level/DES simulator (`rsin-xbar`) and the runtime broker
//! (`rsin-broker`), so the model and the artifact can never silently
//! diverge on the paper's fairness claim (Section IV's POLYP discussion).

use rsin_broker::{run_saturated, XbarBroker, XbarPolicy};
use rsin_core::ResourceNetwork;
use rsin_des::SimRng;
use rsin_xbar::{CrossbarFabric, CrossbarNetwork, CrossbarPolicy};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

const WORKERS: usize = 4;
const HOLD: Duration = Duration::from_micros(300);
const RUN: Duration = Duration::from_millis(400);

/// Broker side, baseline: with one column and every row hammering it, the
/// fixed-priority wave never ranks row 3 first while a lower row requests,
/// so row 3 wins (at most) a couple of startup-race grants while row 0
/// collects hundreds.
#[test]
fn broker_fixed_priority_starves_the_highest_row() {
    let _guard = serial();
    let broker = XbarBroker::new(WORKERS, 1, XbarPolicy::FixedPriority);
    let report = run_saturated(&broker, HOLD, RUN);
    assert_eq!(report.violations, 0);
    let g = &report.grants;
    assert!(g[0] > 50, "low rows must monopolize, got {g:?}");
    assert!(
        g[WORKERS - 1] <= 2,
        "highest row must starve under fixed priority, got {g:?}"
    );
    assert!(
        g[WORKERS - 1] * 20 < g[0].max(1),
        "starvation must be extreme, got {g:?}"
    );
}

/// Broker side, fix: token rotation serves every row and bounds each
/// row's worst-case wait to a small multiple of one full rotation.
#[test]
fn broker_token_rotation_bounds_every_rows_wait() {
    let _guard = serial();
    let broker = XbarBroker::new(WORKERS, 1, XbarPolicy::TokenRotation);
    let report = run_saturated(&broker, HOLD, RUN);
    assert_eq!(report.violations, 0);
    let g = &report.grants;
    let total = report.total_grants();
    for (w, &won) in g.iter().enumerate() {
        assert!(won > 0, "worker {w} starved under token rotation: {g:?}");
        assert!(
            won as f64 > total as f64 / (4.0 * WORKERS as f64),
            "worker {w} got far less than its share: {g:?}"
        );
    }
    // One rotation is WORKERS grants; generous scheduling slack for a
    // single-core host, but far below the starvation regime (where the
    // wait would be the whole run).
    let bound = RUN / 4;
    for (w, &worst) in report.max_wait.iter().enumerate() {
        assert!(
            worst < bound,
            "worker {w} waited {worst:?} (> {bound:?}): rotation is not bounding waits"
        );
    }
}

/// Simulator side, gate level: the Table-I wave itself is the asymmetry —
/// with all rows requesting one available column, the wave closes the
/// top-left crosspoint.
#[test]
fn fabric_wave_grants_the_lowest_requesting_row() {
    let mut fabric = CrossbarFabric::new(WORKERS, 1);
    let grants = fabric.request_cycle(&[true; WORKERS], &[true]);
    assert_eq!(grants, vec![(0, 0)], "wave must favor the lowest row");
}

/// Simulator side, network level: drive saturated request cycles through
/// the DES-facing [`CrossbarNetwork`]. Fixed priority gives every grant to
/// processor 0; the token policy serves everyone, with every processor's
/// gap between consecutive grants bounded.
#[test]
fn simulated_crossbar_policies_split_on_starvation() {
    let cycles = 2_000u64;
    let run = |policy: CrossbarPolicy| {
        let mut net = CrossbarNetwork::new(1, WORKERS, 1, 1, policy);
        let mut rng = SimRng::new(0xFA1);
        let mut counts = vec![0u64; WORKERS];
        let mut last_grant = [0u64; WORKERS];
        let mut max_gap = vec![0u64; WORKERS];
        let pending = vec![true; WORKERS];
        for cycle in 1..=cycles {
            for grant in net.request_cycle(&pending, &mut rng) {
                counts[grant.processor] += 1;
                let gap = cycle - last_grant[grant.processor];
                max_gap[grant.processor] = max_gap[grant.processor].max(gap);
                last_grant[grant.processor] = cycle;
                // Free the bus and the resource for the next cycle.
                net.end_transmission(grant);
                net.end_service(grant);
            }
        }
        (counts, max_gap)
    };

    let (fixed, _) = run(CrossbarPolicy::FixedPriority);
    assert_eq!(fixed[0], cycles, "fixed priority: row 0 wins every cycle");
    assert!(
        fixed[1..].iter().all(|&c| c == 0),
        "fixed priority must starve rows 1..: {fixed:?}"
    );

    let (token, gaps) = run(CrossbarPolicy::RandomToken);
    for (w, (&c, &gap)) in token.iter().zip(&gaps).enumerate() {
        assert!(
            c > cycles / (4 * WORKERS as u64),
            "token: processor {w} under-served: {token:?}"
        );
        assert!(
            gap <= 64,
            "token: processor {w} waited {gap} cycles between grants"
        );
    }
}

/// Cross-shard fairness: partition the token-rotation crossbar into two
/// one-slot shards and saturate it. Within a shard the camp queue serves
/// waiters in FIFO order; across shards the rotating steal token keeps
/// probing siblings for overflow, so *every* worker — whichever shard it
/// calls home — keeps a bounded wait and a non-trivial share of the
/// grants. Under *symmetric* saturation the camp gates correctly route
/// each shard's capacity to its own campers, so completed steals may be
/// rare — but the steal path must at least be probed continuously (the
/// deterministic completed-steal coverage lives in the shard unit tests
/// and the dead-thief chaos test).
#[test]
fn sharded_token_rotation_bounds_waits_across_shards() {
    let _guard = serial();
    let broker = rsin_broker::ShardedBroker::xbar(WORKERS, 2, 2, XbarPolicy::TokenRotation);
    let report = run_saturated(&broker, HOLD, RUN);
    assert_eq!(report.violations, 0, "stealing must never double-grant");
    assert!(
        broker.steal_probes() > 0,
        "saturating two one-slot shards must keep the steal path probing"
    );
    let g = &report.grants;
    let total = report.total_grants();
    for (w, &won) in g.iter().enumerate() {
        assert!(won > 0, "worker {w} starved across shards: {g:?}");
        assert!(
            won as f64 > total as f64 / (4.0 * WORKERS as f64),
            "worker {w} got far less than its share: {g:?}"
        );
    }
    // Same slack as the flat token-rotation bound: a full home-shard
    // rotation plus one steal-token rotation is still far below RUN/4.
    let bound = RUN / 4;
    for (w, &worst) in report.max_wait.iter().enumerate() {
        assert!(
            worst < bound,
            "worker {w} waited {worst:?} (> {bound:?}): cross-shard rotation \
             is not bounding waits"
        );
    }
}
