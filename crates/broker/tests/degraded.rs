//! Degraded-mode cross-validation: under an *identical* resource-outage
//! realization, the runtime broker's measured mean grant delay must agree
//! with `simulate_faulty` for all three disciplines, within the honest
//! tolerance methodology of DESIGN.md §8.
//!
//! ## Identical fault realization
//!
//! Both sides must see the *same* outages, not just the same MTBF/MTTR
//! process: a different draw of the fail/repair times changes the mean
//! delay by far more than the statistical tolerance. So the stochastic
//! `mtbf`/`mttr` process is materialized **once** (via
//! `FaultTimeline::drain_until`) into a *scripted* [`FaultPlan`] — a fixed
//! list of fail/repair instants — and that scripted plan is fed verbatim
//! to both `simulate_faulty` and the broker's chaos supervisor. Scripted
//! events consume no randomness, so every DES replication and every broker
//! repetition degrades on exactly the same schedule while keeping its own
//! independent arrival/service randomness.
//!
//! ## Why mean delay, not raw throughput
//!
//! In a stable open-loop run the completed throughput equals the offered
//! rate on both sides by construction — it cannot discriminate. The
//! statistic an outage actually moves is the *delay inflation* from the
//! capacity dips (and their queue-drain tails), so that is what is
//! compared. (Degraded *saturated* throughput — where outages do move the
//! grant rate — is recorded by the perf harness as `broker_resilience`.)
//!
//! ## Tolerance (DESIGN.md §8, plus one model-difference term)
//!
//! DES replication CI half-width + 2·(broker across-rep SE) + the poll
//! floor, plus an explicit casualty-semantics allowance: the DES aborts
//! and requeues tasks in service at a failing resource (they redo the
//! full acquire–transmit–serve cycle, after backoff), while the broker
//! parks the fault until the holder's release. A handful of tasks per
//! outage therefore see genuinely different service; the allowance is
//! budgeted per outage, not hidden in a fudge factor.
//!
//! Timing-sensitive: serialized on a static mutex, single-core friendly.

use rsin_broker::{
    run_load_chaos, Broker, ChaosOptions, ChaosPlan, LoadConfig, OmegaBroker, SbusBroker,
    XbarBroker, XbarPolicy,
};
use rsin_core::{simulate_faulty, FaultOptions, SimOptions, Workload};
use rsin_des::{
    replicate, FaultAction, FaultEvent, FaultPlan, FaultTarget, SimRng, SimTime, StochasticFault,
};
use rsin_omega::{Admission, OmegaNetwork};
use rsin_queueing::{SharedBusChain, SharedBusParams};
use rsin_sbus::{Arbitration, SharedBusNetwork};
use rsin_xbar::{CrossbarNetwork, CrossbarPolicy};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Measurement floor from the broker's bounded poll interval, in wall µs
/// (≈ 2 × `Waiter::MAX_SLEEP`) — same budget as `cross_validation.rs`.
const POLL_SLACK_US: f64 = 400.0;

/// Long on purpose: at these time scales a short lease would truncate the
/// exponential service tail (the supervisor would evict *legitimate*
/// holders whose service draw exceeds the lease), silently raising the
/// broker's capacity and deflating its queueing. 100 ms ≥ 40 model units
/// at every scale used here, so P(service > lease) is negligible; the
/// supervisor still polls every 2 ms (the clamp), which is what applies
/// the fault schedule promptly.
const LEASE: Duration = Duration::from_millis(100);

/// Outage process shared by every discipline: exponential up-times of
/// mean 70 and repairs of mean 25 model units, per faulted resource.
const MTBF: f64 = 70.0;
const MTTR: f64 = 25.0;

/// Materializes the stochastic outage process into a *scripted* plan:
/// the prefix of the realization inside `horizon`, with any outage still
/// open at the horizon closed by a scripted repair, so the run's tail can
/// drain and a final-repair edge never straddles the measurement end.
fn scripted_outages(seed: u64, targets: &[usize], horizon: f64) -> FaultPlan {
    let mut process = FaultPlan::new();
    for &t in targets {
        process = process.stochastic(StochasticFault {
            target: FaultTarget::Resource(t),
            mtbf: MTBF,
            mttr: MTTR,
        });
    }
    let mut rng = SimRng::new(seed);
    let mut timeline = process.timeline(&mut rng);
    let mut plan = FaultPlan::new();
    let mut open: Vec<usize> = Vec::new();
    for event in timeline.drain_until(SimTime::new(horizon)) {
        plan = plan.scripted(event);
        if let FaultTarget::Resource(r) = event.target {
            match event.action {
                FaultAction::Fail => open.push(r),
                FaultAction::Repair => open.retain(|&x| x != r),
            }
        }
    }
    let closing = open.len();
    for r in open {
        plan = plan.repair_at(SimTime::new(horizon), FaultTarget::Resource(r));
    }
    assert!(
        !plan.is_empty(),
        "the realization must contain at least one outage (closed {closing} at horizon)"
    );
    plan
}

/// Duplicates every event of a scripted plan onto resources `0..pool`.
///
/// The DES's `FaultTarget::Resource` is *pool*-granular for the shared
/// bus: `fail_resource(0)` downs the whole resource pool behind bus 0,
/// while the broker faults individual resources. Replaying the identical
/// physical scenario therefore requires fanning each DES event out to
/// every resource of the pool on the broker side.
fn fan_out_to_pool(plan: &FaultPlan, pool: usize) -> FaultPlan {
    let mut rng = SimRng::new(0); // scripted events consume no randomness
    let mut timeline = plan.timeline(&mut rng);
    let mut out = FaultPlan::new();
    for e in timeline.drain_until(SimTime::new(1e18)) {
        for r in 0..pool {
            out = out.scripted(FaultEvent {
                time: e.time,
                target: FaultTarget::Resource(r),
                action: e.action,
            });
        }
    }
    out
}

/// Counts the fail events of a scripted plan (for the casualty allowance).
fn count_outages(plan: &FaultPlan) -> usize {
    let mut rng = SimRng::new(0); // scripted events consume no randomness
    let mut timeline = plan.timeline(&mut rng);
    timeline
        .drain_until(SimTime::new(1e18))
        .iter()
        .filter(|e| e.action == FaultAction::Fail)
        .count()
}

struct BrokerSide {
    mean: f64,
    se: f64,
    measured: u64,
}

/// `reps` independent degraded broker runs (fresh broker each, same
/// scripted outage plan, different arrival seeds); across-rep SE.
fn degraded_broker_runs<B: Broker, F: Fn() -> B>(
    make: F,
    cfg0: &LoadConfig,
    opts: &ChaosOptions,
    reps: u64,
    resources: usize,
    name: &str,
) -> BrokerSide {
    let mut means = Vec::new();
    let mut iid_se = 0.0;
    let mut measured = 0u64;
    for rep in 0..reps {
        let mut cfg = *cfg0;
        cfg.seed = cfg0.seed + rep * 0x1000;
        let broker = make();
        let report = run_load_chaos(&broker, &cfg, opts);
        assert_eq!(
            report.load.violations, 0,
            "{name} rep {rep}: exclusivity violated"
        );
        assert!(
            report.load.abandoned <= report.load.offered / 50,
            "{name} rep {rep}: {} of {} acquires abandoned",
            report.load.abandoned,
            report.load.offered
        );
        assert_eq!(
            report.available_at_end, resources,
            "{name} rep {rep}: resources leaked"
        );
        assert_eq!(
            report.ledger_held_at_end, 0,
            "{name} rep {rep}: ledger still holds grants"
        );
        means.push(report.load.mean_delay());
        iid_se = report.load.delay.std_error();
        measured += report.load.measured();
    }
    let k = means.len() as f64;
    let mean = means.iter().sum::<f64>() / k;
    let se = if means.len() > 1 {
        let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (k - 1.0);
        (var / k).sqrt()
    } else {
        iid_se
    };
    BrokerSide { mean, se, measured }
}

/// The shared assertion: |broker − DES| within half-width + 2·SE + poll
/// floor + casualty allowance.
#[allow(clippy::too_many_arguments)]
fn assert_degraded_agreement(
    name: &str,
    des_mean: f64,
    des_half_width: f64,
    broker: &BrokerSide,
    scale_us: f64,
    outages: usize,
    tasks_per_run: f64,
    healthy_mean: f64,
) {
    let slack = POLL_SLACK_US / scale_us;
    // Casualty allowance: per outage, at most a couple of in-service
    // tasks differ between abort-and-redo (DES) and run-to-completion
    // (broker); each can move its own delay by roughly one healthy mean
    // residence. Spread over the measured tasks of a run, that bounds the
    // mean shift at ~2·outages·healthy_mean / tasks.
    let casualty = 2.0 * outages as f64 * healthy_mean.max(1.0) / tasks_per_run;
    let tol = des_half_width + 2.0 * broker.se + slack + casualty;
    eprintln!(
        "{name}: broker d = {:.4} (n = {}, se = {:.4}) vs faulty DES {des_mean:.4} ± \
         {des_half_width:.4}; tol = {tol:.4} (slack {slack:.4}, casualty {casualty:.4}, \
         {outages} outages)",
        broker.mean, broker.measured, broker.se,
    );
    assert!(
        (broker.mean - des_mean).abs() <= tol,
        "{name}: degraded broker {:.4} vs faulty DES {des_mean:.4} ± {des_half_width:.4} \
         (tol {tol:.4})",
        broker.mean
    );
}

/// SBUS at ρ = 0.55 with one of two resources failing (ρ_eff ≈ 1.1 during
/// outages): delay inflates visibly, and broker and DES agree on it.
#[test]
fn sbus_degraded_agrees_with_faulty_des() {
    let _guard = serial();
    let p = 8;
    let r = 2usize;
    let mu_n = 4.0;
    let mu_s = 1.0;
    let cap = SharedBusChain::new(SharedBusParams {
        processors: p as u32,
        resources: r as u32,
        lambda: 1e-9,
        mu_n,
        mu_s,
    })
    .expect("stable at vanishing load")
    .saturation_throughput();
    let lambda = 0.55 * cap / p as f64;

    let warmup = 80.0;
    let duration = 600.0;
    let fault_horizon = warmup + 0.8 * duration;
    let plan = scripted_outages(0xFA17, &[0], fault_horizon);
    let outages = count_outages(&plan);

    // DES, replicated: same scripted outages, independent arrivals.
    let workload = Workload::new(lambda, mu_n, mu_s).expect("valid workload");
    let tasks = (p as f64 * lambda * duration).round();
    let opts = SimOptions {
        warmup_tasks: (p as f64 * lambda * warmup).round() as u64,
        measured_tasks: tasks as u64,
    };
    let fopts = FaultOptions::default();
    let des = replicate(&SimRng::new(0xD15B), 5, 0.95, |_, mut rng| {
        let mut net = SharedBusNetwork::new(1, p, r as u32, Arbitration::RoundRobin);
        simulate_faulty(&mut net, &workload, &opts, &plan, &fopts, &mut rng)
            .expect("faulty run completes")
            .mean_delay()
    });
    let interval = des.interval.expect("5 replications");
    // Healthy DES point estimate, for the casualty allowance scale.
    let mut healthy_rng = SimRng::new(0xD15B);
    let healthy = {
        let mut net = SharedBusNetwork::new(1, p, r as u32, Arbitration::RoundRobin);
        rsin_core::simulate(&mut net, &workload, &opts, &mut healthy_rng).mean_delay()
    };

    // Broker under the same scripted outages — fanned out to the whole
    // pool, because the DES shared-bus resource fault is pool-granular
    // (see `fan_out_to_pool`). The generous drain lets the total-outage
    // backlog clear before the leak audit.
    let mut cfg = LoadConfig::new(lambda, mu_s);
    cfg.mu_n = Some(mu_n);
    cfg.scale_us = 2_500.0;
    cfg.warmup = warmup;
    cfg.duration = duration;
    cfg.drain = 250.0;
    cfg.seed = 0x5B05;
    let mut chaos = ChaosOptions::new(ChaosPlan::new(), LEASE);
    chaos.faults = fan_out_to_pool(&plan, r);
    let broker = degraded_broker_runs(
        || SbusBroker::with_lease(p, r, LEASE),
        &cfg,
        &chaos,
        3,
        r,
        "sbus",
    );

    assert_degraded_agreement(
        "sbus",
        interval.mean,
        interval.half_width,
        &broker,
        cfg.scale_us,
        outages,
        tasks,
        healthy + mu_n.recip() + mu_s.recip(),
    );
    assert!(
        interval.mean > healthy,
        "outages must inflate the DES delay ({:.4} vs healthy {healthy:.4}) — \
         else this test validates nothing",
        interval.mean
    );
}

/// Crossbar (fixed priority both sides) at near-M/M/2 geometry — short
/// transmissions, one resource per column — with column 0's resource on
/// the outage schedule.
#[test]
fn xbar_degraded_agrees_with_faulty_des() {
    let _guard = serial();
    let p = 8;
    let columns = 2usize;
    let mu_n = 200.0; // transmissions ≈ 0: broker and DES column pipelining coincide
    let mu_s = 1.0;
    let lambda = 0.55 * columns as f64 * mu_s / p as f64;

    let warmup = 80.0;
    let duration = 600.0;
    let fault_horizon = warmup + 0.8 * duration;
    let plan = scripted_outages(0xFA18, &[0], fault_horizon);
    let outages = count_outages(&plan);

    let workload = Workload::new(lambda, mu_n, mu_s).expect("valid workload");
    let tasks = (p as f64 * lambda * duration).round();
    let opts = SimOptions {
        warmup_tasks: (p as f64 * lambda * warmup).round() as u64,
        measured_tasks: tasks as u64,
    };
    let fopts = FaultOptions::default();
    let des = replicate(&SimRng::new(0xD15C), 5, 0.95, |_, mut rng| {
        let mut net = CrossbarNetwork::new(1, p, columns, 1, CrossbarPolicy::FixedPriority);
        simulate_faulty(&mut net, &workload, &opts, &plan, &fopts, &mut rng)
            .expect("faulty run completes")
            .mean_delay()
    });
    let interval = des.interval.expect("5 replications");
    let mut healthy_rng = SimRng::new(0xD15C);
    let healthy = {
        let mut net = CrossbarNetwork::new(1, p, columns, 1, CrossbarPolicy::FixedPriority);
        rsin_core::simulate(&mut net, &workload, &opts, &mut healthy_rng).mean_delay()
    };

    let mut cfg = LoadConfig::new(lambda, mu_s);
    cfg.mu_n = Some(mu_n);
    cfg.scale_us = 2_500.0;
    cfg.warmup = warmup;
    cfg.duration = duration;
    cfg.drain = 120.0;
    cfg.seed = 0x5B06;
    let mut chaos = ChaosOptions::new(ChaosPlan::new(), LEASE);
    chaos.faults = plan.clone();
    let broker = degraded_broker_runs(
        || XbarBroker::with_lease(p, columns, XbarPolicy::FixedPriority, LEASE),
        &cfg,
        &chaos,
        3,
        columns,
        "xbar",
    );

    assert_degraded_agreement(
        "xbar",
        interval.mean,
        interval.half_width,
        &broker,
        cfg.scale_us,
        outages,
        tasks,
        healthy + mu_n.recip() + mu_s.recip(),
    );
    assert!(
        interval.mean > healthy,
        "outages must inflate the DES delay ({:.4} vs healthy {healthy:.4})",
        interval.mean
    );
}

/// Omega 8×8 (staggered admission — the DES mode closest to the broker's
/// asynchronous retry protocol) with three of eight port resources on the
/// outage schedule.
#[test]
fn omega_degraded_agrees_with_faulty_des() {
    let _guard = serial();
    let p = 8;
    let size = 8usize;
    let mu_n = 200.0;
    let mu_s = 1.0;
    let lambda = 0.55;

    let warmup = 60.0;
    let duration = 300.0;
    let fault_horizon = warmup + 0.8 * duration;
    let plan = scripted_outages(0xFA19, &[0, 3, 5], fault_horizon);
    let outages = count_outages(&plan);

    let workload = Workload::new(lambda, mu_n, mu_s).expect("valid workload");
    let tasks = (p as f64 * lambda * duration).round();
    let opts = SimOptions {
        warmup_tasks: (p as f64 * lambda * warmup).round() as u64,
        measured_tasks: tasks as u64,
    };
    let fopts = FaultOptions::default();
    let des = replicate(&SimRng::new(0xD15D), 5, 0.95, |_, mut rng| {
        let mut net = OmegaNetwork::new(1, size, 1, Admission::Staggered);
        simulate_faulty(&mut net, &workload, &opts, &plan, &fopts, &mut rng)
            .expect("faulty run completes")
            .mean_delay()
    });
    let interval = des.interval.expect("5 replications");
    let mut healthy_rng = SimRng::new(0xD15D);
    let healthy = {
        let mut net = OmegaNetwork::new(1, size, 1, Admission::Staggered);
        rsin_core::simulate(&mut net, &workload, &opts, &mut healthy_rng).mean_delay()
    };

    let mut cfg = LoadConfig::new(lambda, mu_s);
    cfg.mu_n = Some(mu_n);
    cfg.scale_us = 1_200.0;
    cfg.warmup = warmup;
    cfg.duration = duration;
    cfg.drain = 60.0;
    cfg.seed = 0x5B07;
    let mut chaos = ChaosOptions::new(ChaosPlan::new(), LEASE);
    chaos.faults = plan.clone();
    let broker = degraded_broker_runs(
        || OmegaBroker::with_lease(p, size, LEASE),
        &cfg,
        &chaos,
        3,
        size,
        "omega",
    );

    assert_degraded_agreement(
        "omega",
        interval.mean,
        interval.half_width,
        &broker,
        cfg.scale_us,
        outages,
        tasks,
        healthy + mu_n.recip() + mu_s.recip(),
    );
}
