//! Headline cross-validation: the runtime broker's *measured* mean grant
//! delay must agree with the workspace's predictive stack — the DES (with
//! a replication confidence interval), the exact `SharedBusChain`, and
//! M/M/r in the µ_n → ∞ degenerate limit.
//!
//! ## Tolerances (DESIGN.md §8)
//!
//! The broker runs on a wall clock, so two measurement effects are
//! budgeted explicitly on top of the statistical terms:
//!
//! - **Sampling error**: the broker's own `2·SE` plus the DES replication
//!   CI half-width.
//! - **Poll resolution**: a blocked acquire re-examines the world at worst
//!   every `Waiter::MAX_SLEEP` (200 µs), so measured delays carry a
//!   positive floor of roughly one poll interval. `POLL_SLACK_US` converts
//!   that to model units at the configured time scale.
//!
//! The M/M/r check runs at ρ = 0.8 with a 10 ms/unit scale precisely so
//! the 5% criterion dwarfs the poll floor.
//!
//! Timing-sensitive: serialized on a static mutex, single-core friendly.

use rsin_broker::{run_load, LoadConfig, SbusBroker};
use rsin_core::{simulate, SimOptions, Workload};
use rsin_des::{replicate, SimRng};
use rsin_queueing::{Mmr, SharedBusChain, SharedBusParams};
use rsin_sbus::{Arbitration, SharedBusNetwork};
use std::sync::{Mutex, MutexGuard, PoisonError};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

const P: usize = 8;
const R: usize = 2;
const MU_S: f64 = 1.0;

/// Measurement floor from the broker's bounded poll interval, in wall µs
/// (≈ 2 × `Waiter::MAX_SLEEP`).
const POLL_SLACK_US: f64 = 400.0;

/// At matched offered load ρ ∈ {0.2, 0.5, 0.8}, the SBUS broker's mean
/// grant delay falls inside the DES replication interval (plus the
/// broker's own sampling error and the poll floor), and tracks the exact
/// Markov chain the same way.
#[test]
fn sbus_broker_matches_des_and_chain_across_rho() {
    let _guard = serial();
    let mu_n = 4.0;
    // Capacity of the bus–resource pipeline: the chain's saturation
    // throughput µ_n·(1 − B(µ_n/µ_s, r)), probed with a vanishing load.
    let cap = SharedBusChain::new(SharedBusParams {
        processors: P as u32,
        resources: R as u32,
        lambda: 1e-9,
        mu_n,
        mu_s: MU_S,
    })
    .expect("stable at vanishing load")
    .saturation_throughput();
    // Replications per ρ: delays at high load are strongly autocorrelated
    // (integrated autocorrelation ~ tens of tasks near saturation), so a
    // single run's iid standard error understates the true sampling error
    // badly. Independent replications restore an honest spread — the same
    // reason `replicate` exists on the DES side.
    for (rho, warmup, duration, reps) in [
        (0.2, 40.0, 1500.0, 1u64),
        (0.5, 100.0, 1200.0, 1),
        (0.8, 200.0, 900.0, 4),
    ] {
        // ρ is offered load relative to that capacity — exactly the chain's
        // `utilization()`, so ρ → 1 is saturation of *this* system. (Naive
        // dials like p·λ/(r·µ_s) overshoot: the coupled pipeline saturates
        // below the bare resource capacity, and an "ρ = 0.8" chosen that
        // way is already unstable.)
        let lambda = rho * cap / P as f64;

        // DES prediction with a replication confidence interval.
        let workload = Workload::new(lambda, mu_n, MU_S).expect("valid workload");
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 15_000,
        };
        let des = replicate(&SimRng::new(0xC0FE), 5, 0.95, |_, mut rng| {
            let mut net = SharedBusNetwork::new(1, P, R as u32, Arbitration::RoundRobin);
            simulate(&mut net, &workload, &opts, &mut rng).mean_delay()
        });
        let interval = des.interval.expect("5 replications");

        // Exact chain prediction.
        let chain = SharedBusChain::new(SharedBusParams {
            processors: P as u32,
            resources: R as u32,
            lambda,
            mu_n,
            mu_s: MU_S,
        })
        .expect("stable")
        .solve()
        .expect("solves")
        .mean_queue_delay;

        // The measured artifact: `reps` independent broker runs.
        let mut means = Vec::new();
        let mut iid_se = 0.0;
        let mut measured = 0u64;
        for rep in 0..reps {
            let mut cfg = LoadConfig::new(lambda, MU_S);
            cfg.mu_n = Some(mu_n);
            cfg.scale_us = 3_000.0;
            cfg.warmup = warmup;
            cfg.duration = duration;
            cfg.drain = 80.0;
            cfg.seed = 0x5B05 + (rho * 10.0) as u64 + rep * 0x1000;
            let broker = SbusBroker::new(P, R);
            let report = run_load(&broker, &cfg);
            assert_eq!(report.violations, 0, "rho {rho}: exclusivity violated");
            assert!(
                report.abandoned <= report.offered / 100,
                "rho {rho}: {} of {} acquires abandoned",
                report.abandoned,
                report.offered
            );
            means.push(report.mean_delay());
            iid_se = report.delay.std_error();
            measured += report.measured();
        }
        let k = means.len() as f64;
        let d = means.iter().sum::<f64>() / k;
        let se = if means.len() > 1 {
            let var = means.iter().map(|m| (m - d).powi(2)).sum::<f64>() / (k - 1.0);
            (var / k).sqrt()
        } else {
            iid_se
        };
        let slack = POLL_SLACK_US / 3_000.0;
        let tol = interval.half_width + 2.0 * se + slack;
        eprintln!(
            "rho {rho}: broker d = {d:.4} (n = {measured}, reps {reps}, se = {se:.4}, \
             means {means:.4?}), DES = {:.4} ± {:.4}, chain = {chain:.4}, tol = {tol:.4}",
            interval.mean, interval.half_width,
        );
        assert!(
            (d - interval.mean).abs() <= tol,
            "rho {rho}: broker {d:.4} vs DES {:.4} ± {:.4} (tol {tol:.4})",
            interval.mean,
            interval.half_width
        );
        assert!(
            (d - chain).abs() <= tol + (chain - interval.mean).abs(),
            "rho {rho}: broker {d:.4} vs chain {chain:.4}"
        );
    }
}

/// In the µ_n → ∞ degenerate limit the ticket-FIFO bus is exactly an
/// M/M/r queue: at ρ = 0.8 the measured mean delay must land within 5% of
/// `Mmr::mean_wait_in_queue` (plus the broker's 2·SE sampling guard).
#[test]
fn mmr_degenerate_limit_within_five_percent() {
    let _guard = serial();
    let rho = 0.8;
    let lambda = rho * R as f64 * MU_S / P as f64; // per-worker
    let predicted = Mmr::new(P as f64 * lambda, MU_S, R as u32)
        .expect("stable")
        .mean_wait_in_queue();

    let mut cfg = LoadConfig::new(lambda, MU_S);
    cfg.mu_n = None;
    cfg.scale_us = 10_000.0;
    cfg.warmup = 250.0;
    cfg.duration = 1_000.0;
    cfg.drain = 120.0;
    cfg.seed = 0x3A11;
    let broker = SbusBroker::new(P, R);
    let report = run_load(&broker, &cfg);
    assert_eq!(report.violations, 0, "exclusivity violated");
    assert!(
        report.abandoned <= report.offered / 100,
        "{} of {} acquires abandoned",
        report.abandoned,
        report.offered
    );

    let d = report.mean_delay();
    let se = report.delay.std_error();
    let tol = 0.05 * predicted + 2.0 * se;
    eprintln!(
        "M/M/{R}: broker d = {d:.4} (n = {}, se = {se:.4}) vs Wq = {predicted:.4}, tol = {tol:.4}",
        report.measured()
    );
    assert!(
        (d - predicted).abs() <= tol,
        "broker {d:.4} vs M/M/{R} Wq {predicted:.4} (tol {tol:.4})"
    );
}
