//! End-to-end tests of the networked broker front-end: codec fuzz
//! properties, (tenant, connection) grant attribution across
//! reclaim-after-disconnect races, deadline/admission shedding, and the
//! headline chaos run — saturated load with seeded connection faults plus
//! a mid-run reactor restart, zero leaks, clean ledger.
//!
//! Like the other broker suites these are timing-sensitive under heavy
//! oversubscription; CI runs them serialized (`--test-threads 1`).

use rsin_broker::net::proto::{encode, MAGIC, MAX_PAYLOAD};
use rsin_broker::net::{
    attribution_tag, run_net_load, split_tag, ConnChaos, Decoder, Frame, NetChaosEvent,
    NetChaosFractions, NetChaosPlan, NetClient, NetError, NetLoadConfig, NetLoadReport, NetServer,
    NetServerConfig, ProtocolError, RejectReason,
};
use rsin_broker::{Ledger, ShardedBroker};
use rsin_des::RetryPolicy;
use rsin_minicheck::check;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback")
}

fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 10,
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(10),
        jitter_seed: 0x4E45,
        hard_deadline: None,
    }
}

fn random_frame(g: &mut rsin_minicheck::Gen) -> Frame {
    match g.u32_in(0, 5) {
        0 => Frame::Request {
            req_id: g.u64() as u32,
            tenant: (g.u64() % 256) as u8,
            deadline_us: g.u64() as u32,
        },
        1 => Frame::Release {
            req_id: g.u64() as u32,
            resource: g.u64() as u32,
            generation: g.u64() as u32,
        },
        2 => Frame::Grant {
            req_id: g.u64() as u32,
            resource: g.u64() as u32,
            generation: g.u64() as u32,
        },
        3 => Frame::Reject {
            req_id: g.u64() as u32,
            reason: match g.u32_in(0, 4) {
                0 => RejectReason::Expired,
                1 => RejectReason::Shed,
                2 => RejectReason::Busy,
                _ => RejectReason::Stopping,
            },
        },
        _ => Frame::Released {
            req_id: g.u64() as u32,
            live: g.bool(),
        },
    }
}

/// Property: any frame sequence round-trips identically through the
/// codec, regardless of how the byte stream is chunked on the way in.
#[test]
fn proto_round_trip_identity_under_arbitrary_chunking() {
    check(200, |g| {
        let frames: Vec<Frame> = (0..g.usize_in(1, 12)).map(|_| random_frame(g)).collect();
        let mut stream = Vec::new();
        for f in &frames {
            encode(f, &mut stream);
        }
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        let mut fed = 0;
        while fed < stream.len() {
            let n = g.usize_in(1, stream.len() - fed + 1);
            dec.feed(&stream[fed..fed + n]);
            fed += n;
            while let Some(f) = dec.next_frame().expect("valid stream") {
                out.push(f);
            }
        }
        assert_eq!(out, frames, "chunking must not change the decoded frames");
        assert_eq!(dec.buffered(), 0, "no residue after a whole stream");
    });
}

/// Property: random bytes never panic the decoder — they produce frames
/// or a typed error, and a poisoned decoder stays poisoned.
#[test]
fn proto_random_bytes_never_panic() {
    check(500, |g| {
        let bytes: Vec<u8> = (0..g.usize_in(0, 96)).map(|_| g.u64() as u8).collect();
        let mut dec = Decoder::new();
        let mut first_err: Option<ProtocolError> = None;
        for chunk in bytes.chunks(g.usize_in(1, 16).max(1)) {
            dec.feed(chunk);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        if let Some(prev) = first_err {
                            assert_eq!(prev, e, "poisoned decoder must repeat its error");
                        }
                        first_err = Some(e);
                        break;
                    }
                }
            }
        }
    });
}

/// Property: every strict prefix of a valid stream is "need more bytes",
/// never an error; an oversized length in the header is a typed error
/// before any payload arrives.
#[test]
fn proto_truncation_and_oversize_are_classified() {
    check(200, |g| {
        let mut stream = Vec::new();
        encode(&random_frame(g), &mut stream);
        let cut = g.usize_in(0, stream.len() - 1);
        let mut dec = Decoder::new();
        dec.feed(&stream[..cut]);
        assert_eq!(
            dec.next_frame().expect("prefix of a valid frame"),
            None,
            "truncation is not an error until the stream ends"
        );

        let len = g.u32_in(MAX_PAYLOAD as u32 + 1, u32::from(u16::MAX) + 1) as u16;
        let mut dec = Decoder::new();
        dec.feed(&[MAGIC, 0x01]);
        dec.feed(&len.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(ProtocolError::Oversized { len }));
    });
}

/// Ledger attribution: claims carry a (tenant, connection) tag, vacates
/// clear it, and a reclaim-then-regrant to a new connection re-tags
/// without ever reading as a double grant. This is the unit-level half of
/// the reclaim-after-disconnect regression.
#[test]
fn ledger_attribution_survives_reclaim_regrant() {
    let ledger = Ledger::new(2);
    let tag_a = attribution_tag(1, 7);
    ledger.claim_tagged(0, 3, tag_a);
    assert_eq!(ledger.tag(0), Some(tag_a));
    assert_eq!(split_tag(tag_a), (1, 7));
    assert_eq!(ledger.violations(), 0);

    // Connection 7 dies; the reclaim path vacates through the same hook.
    ledger.vacate(0, 3);
    assert_eq!(ledger.tag(0), None);

    // Regrant to a successor connection (same worker slot, new conn id):
    // attribution must show the successor, and no violation.
    let tag_b = attribution_tag(2, 8);
    ledger.claim_tagged(0, 3, tag_b);
    assert_eq!(ledger.tag(0), Some(tag_b));
    assert_eq!(ledger.violations(), 0);

    // A true double grant is still caught, and keeps the original tag.
    ledger.claim_tagged(0, 4, attribution_tag(0, 9));
    assert_eq!(ledger.violations(), 1);
    assert_eq!(
        ledger.tag(0),
        Some(tag_b),
        "violator must not steal the tag"
    );
}

/// One client, one grant: the minimal happy path over real loopback TCP.
#[test]
fn grants_and_releases_over_loopback() {
    let broker = ShardedBroker::sbus_with_lease(4, 4, 2, Duration::from_millis(100));
    let cfg = NetServerConfig {
        tenants: 2,
        ..NetServerConfig::default()
    };
    let server = NetServer::bind(loopback(), broker, cfg).expect("bind");
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, 0).expect("connect");
    let grant = client
        .acquire(Some(Duration::from_millis(500)))
        .expect("grant");
    assert_eq!(server.ledger().held(), 1);
    let (tenant, _conn) = split_tag(
        server
            .ledger()
            .tag(grant.resource as usize)
            .expect("tagged"),
    );
    assert_eq!(tenant, 0);
    assert!(client.release(grant).expect("release"), "grant was live");
    drop(client);

    let report = server.stop();
    assert_eq!(report.counters.grants, 1);
    assert_eq!(report.counters.releases, 1);
    assert_eq!(report.violations, 0);
    assert_eq!(report.leaked, 0);
    assert_eq!(report.queue_wait.welford.count(), 1);
}

/// A request whose deadline passes while the pool is exhausted comes back
/// as a typed `Expired` rejection — shed before arbitration, not granted
/// late, not leaked.
#[test]
fn deadlines_shed_exhausted_pool_requests() {
    let broker = ShardedBroker::sbus_with_lease(4, 1, 1, Duration::from_secs(2));
    let server = NetServer::bind(loopback(), broker, NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut holder = NetClient::connect(addr, 0).expect("connect");
    let held = holder
        .acquire(Some(Duration::from_millis(500)))
        .expect("holder wins the only slot");

    let mut late = NetClient::connect(addr, 1).expect("connect");
    match late.acquire(Some(Duration::from_millis(30))) {
        Err(NetError::Rejected(RejectReason::Expired)) => {}
        other => panic!("want Expired rejection, got {other:?}"),
    }

    assert!(holder.release(held).expect("release"));
    let report = server.stop();
    assert_eq!(report.counters.rejected_expired, 1);
    assert_eq!(report.violations, 0);
    assert_eq!(report.leaked, 0);
}

/// Admission control sheds the lowest tenant class once queue depth
/// breaches the configured bound, while class 0 stays admitted.
#[test]
fn admission_sheds_lowest_class_under_depth_overload() {
    let broker = ShardedBroker::sbus_with_lease(6, 1, 1, Duration::from_secs(2));
    let cfg = NetServerConfig {
        tenants: 2,
        max_pending: 1,
        ..NetServerConfig::default()
    };
    let server = NetServer::bind(loopback(), broker, cfg).expect("bind");
    let addr = server.local_addr();

    let mut holder = NetClient::connect(addr, 0).expect("connect");
    let held = holder
        .acquire(Some(Duration::from_millis(500)))
        .expect("holder wins the only slot");

    // Queue one request (admitted at depth 0), putting depth at the bound.
    let mut queued = NetClient::connect(addr, 0).expect("connect");
    let waiter = std::thread::spawn(move || {
        let g = queued.acquire(Some(Duration::from_millis(800)));
        (queued, g)
    });
    std::thread::sleep(Duration::from_millis(30));

    // Now the lowest class must be shed at ingress...
    let mut shed = NetClient::connect(addr, 1).expect("connect");
    match shed.acquire(Some(Duration::from_millis(300))) {
        Err(NetError::Rejected(RejectReason::Shed)) => {}
        other => panic!("want Shed rejection, got {other:?}"),
    }

    // ...and the queued class-0 request still completes once the holder
    // releases.
    assert!(holder.release(held).expect("release"));
    let (mut queued, got) = waiter.join().expect("waiter thread");
    let grant = got.expect("queued class-0 request must be served");
    assert!(queued.release(grant).expect("release"));

    let report = server.stop();
    assert!(report.counters.rejected_shed >= 1);
    assert_eq!(report.counters.grants, 2);
    assert_eq!(report.violations, 0);
    assert_eq!(report.leaked, 0);
}

/// Malformed bytes on the wire are classified, the offending connection
/// is dropped (its grant reclaimed), and other connections keep working.
#[test]
fn malformed_frames_drop_only_the_offender() {
    let broker = ShardedBroker::sbus_with_lease(4, 2, 1, Duration::from_millis(80));
    let server = NetServer::bind(loopback(), broker, NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut vandal = NetClient::connect(addr, 0).expect("connect");
    let _held = vandal
        .acquire(Some(Duration::from_millis(500)))
        .expect("grant");
    vandal
        .inject_raw(&[0xDE, 0xAD, 0xBE, 0xEF])
        .expect("inject");

    // The server must classify, drop the vandal, and release its grant.
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.ledger().held() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.ledger().held(), 0, "vandal's grant reclaimed");

    // A healthy client is untouched.
    let mut healthy = NetClient::connect(addr, 0).expect("connect");
    let g = healthy
        .acquire(Some(Duration::from_millis(500)))
        .expect("healthy client still served");
    assert!(healthy.release(g).expect("release"));

    let report = server.stop();
    assert!(report.counters.protocol_errors >= 1);
    assert_eq!(report.violations, 0);
    assert_eq!(report.leaked, 0);
}

/// The reclaim-after-disconnect double-grant regression, end to end: a
/// connection dies holding the only resource, the reclaim must finish
/// before a successor can be granted, and the ledger must attribute the
/// regrant to the successor connection with zero violations.
#[test]
fn reclaim_after_disconnect_never_double_grants() {
    let broker = ShardedBroker::sbus_with_lease(4, 1, 1, Duration::from_millis(50));
    let server = NetServer::bind(loopback(), broker, NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    for round in 0..8 {
        let mut doomed = NetClient::connect(addr, 1).expect("connect");
        let _grant = doomed
            .acquire(Some(Duration::from_millis(500)))
            .expect("doomed wins the slot");
        let doomed_tag = server.ledger().tag(0).expect("attributed");
        // Die abruptly mid-grant.
        doomed.shutdown_abrupt();

        // The successor races the reclaim: its request can only be served
        // after the disconnect (or lease) path vacated the slot.
        let mut successor = NetClient::connect(addr, 0).expect("connect");
        let grant = successor
            .acquire_retry(Some(Duration::from_millis(250)), &quick_retry())
            .expect("successor granted after reclaim");
        let successor_tag = server.ledger().tag(0).expect("attributed");
        assert_ne!(
            split_tag(doomed_tag).1,
            split_tag(successor_tag).1,
            "round {round}: regrant must be attributed to the successor connection"
        );
        assert_eq!(
            server.ledger().violations(),
            0,
            "round {round}: reclaim-then-regrant must never read as a double grant"
        );
        assert!(successor.release(grant).is_ok());
    }

    let report = server.stop();
    assert_eq!(report.violations, 0);
    assert_eq!(report.leaked, 0);
    assert!(report.counters.reclaimed_disconnect + report.counters.reclaimed_lease >= 1);
}

/// The headline chaos test: saturated multi-tenant load over loopback
/// with seeded resets, half-open stalls, truncated frames, and byte
/// garbage — plus a reactor restart mid-run. The server must keep serving
/// (grants continue after the restart), reclaim every dead connection's
/// grant within a bounded multiple of the lease, keep the ledger clean,
/// and leak nothing. Surviving clients' stat shards must merge
/// deterministically, bit for bit.
#[test]
fn saturated_chaos_with_reactor_restart_stays_clean() {
    let lease = Duration::from_millis(25);
    let clients = 8usize;
    let broker = ShardedBroker::sbus_with_lease(2 * clients, 6, 2, lease);
    let cfg = NetServerConfig {
        tenants: 3,
        lease,
        ..NetServerConfig::default()
    };
    let mut server = NetServer::bind(loopback(), broker, cfg).expect("bind");
    let addr = server.local_addr();

    let window = Duration::from_millis(600);
    let chaos = NetChaosPlan::seeded(
        11,
        clients,
        NetChaosFractions {
            reset: 0.25,
            stall: 0.125,
            trunc: 0.125,
            junk: 0.125,
        },
        (Duration::from_millis(60), Duration::from_millis(220)),
        3 * lease,
    );
    assert!(!chaos.is_empty());
    let load_cfg = NetLoadConfig {
        clients,
        tenants: 3,
        window,
        deadline: Some(Duration::from_millis(60)),
        hold: Duration::from_micros(200),
        mean_think: None,
        seed: 11,
        retry: quick_retry(),
        chaos,
    };

    let (report, restarted_at) = std::thread::scope(|scope| {
        let load = scope.spawn(|| run_net_load(addr, &load_cfg));
        // Restart the reactor mid-chaos: connections drop, grants must be
        // released, the listener survives, clients reconnect and go on.
        std::thread::sleep(Duration::from_millis(300));
        server.restart_reactor();
        let restarted_at = Instant::now();
        (load.join().expect("load"), restarted_at)
    });

    // Bounded reclaim latency: shortly after the run every slot is back.
    let reclaim_deadline = Instant::now() + 20 * lease;
    while server.ledger().held() > 0 && Instant::now() < reclaim_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        server.ledger().held(),
        0,
        "every dead connection's grant reclaimed within the bound"
    );

    let counters = server.counters();
    assert_eq!(
        counters.reactor_starts, 2,
        "restart spawned a second generation"
    );
    assert!(report.chaos_injected >= 4, "chaos actually executed");
    assert!(
        report.grants > 0 && counters.grants > 0,
        "server kept granting through the chaos"
    );
    // Service continued after the restart: clients reconnected and the
    // second generation accepted them.
    assert!(
        restarted_at.elapsed() >= Duration::from_millis(100),
        "window extends past the restart"
    );
    assert!(
        counters.accepted > load_cfg.clients as u64,
        "reconnects landed on the new reactor generation"
    );

    // Surviving clients: those that made it to the end of the run with
    // recorded grants (every active connection eats one transport error at
    // the restart, so io_errors alone says nothing about survival). Their
    // shards must merge deterministically, bit for bit.
    let survivors: Vec<_> = report
        .shards
        .iter()
        .filter(|s| s.grants > 0)
        .cloned()
        .collect();
    assert!(!survivors.is_empty(), "some clients survived the chaos");
    let m1 = NetLoadReport::merge(survivors.clone(), report.elapsed);
    let m2 = NetLoadReport::merge(survivors.clone(), report.elapsed);
    assert_eq!(m1.latency.count(), m2.latency.count());
    assert_eq!(m1.latency.mean().to_bits(), m2.latency.mean().to_bits());
    assert_eq!(
        m1.latency.sample_variance().to_bits(),
        m2.latency.sample_variance().to_bits()
    );
    assert_eq!(m1.hist.count(), m2.hist.count());
    for i in 0..m1.hist.num_bins() {
        assert_eq!(m1.hist.bin_count(i), m2.hist.bin_count(i), "bin {i}");
    }
    assert_eq!(
        m1.hist.count(),
        m1.latency.count(),
        "hist and moments agree"
    );

    let final_report = server.stop();
    assert_eq!(
        final_report.violations, 0,
        "exclusivity ledger stayed clean"
    );
    assert_eq!(final_report.leaked, 0, "zero leaked slots");
    assert_eq!(
        final_report.available_at_end, 6,
        "every resource grantable again after shutdown"
    );
}

/// Half-open stall specifically: a client that goes silent holding a
/// grant is reclaimed by the lease supervisor, and its late release lands
/// harmlessly stale.
#[test]
fn half_open_stall_is_reclaimed_by_lease() {
    let lease = Duration::from_millis(30);
    let broker = ShardedBroker::sbus_with_lease(4, 1, 1, lease);
    let server = NetServer::bind(loopback(), broker, NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut sleeper = NetClient::connect(addr, 0).expect("connect");
    let grant = sleeper
        .acquire(Some(Duration::from_millis(500)))
        .expect("grant");

    // Go silent past the lease; the supervisor must evict us.
    std::thread::sleep(4 * lease);
    let mut other = NetClient::connect(addr, 0).expect("connect");
    let regrant = other
        .acquire_retry(Some(Duration::from_millis(300)), &quick_retry())
        .expect("slot reclaimed from the half-open holder");
    assert!(other.release(regrant).expect("release"));

    // The straggler's own release must land stale, not corrupt anything.
    assert!(
        !sleeper.release(grant).expect("stale release acknowledged"),
        "late release after lease reclaim reports not-live"
    );

    let report = server.stop();
    assert!(report.counters.reclaimed_lease >= 1);
    assert!(report.counters.stale_releases >= 1);
    assert_eq!(report.violations, 0);
    assert_eq!(report.leaked, 0);
}

/// Chaos plan event shapes reach the server: a dedicated single-event
/// check per shape, so a regression in one injection path is named, not
/// buried in the big run.
#[test]
fn each_chaos_shape_reclaims_cleanly() {
    for kind in [
        ConnChaos::Reset,
        ConnChaos::Stall(Duration::from_millis(90)),
        ConnChaos::Truncate,
        ConnChaos::Junk,
    ] {
        let lease = Duration::from_millis(30);
        let broker = ShardedBroker::sbus_with_lease(4, 2, 1, lease);
        let server = NetServer::bind(loopback(), broker, NetServerConfig::default()).expect("bind");
        let addr = server.local_addr();
        let plan = NetChaosPlan::new().with(NetChaosEvent {
            at: Duration::from_millis(10),
            client: 0,
            kind,
        });
        let cfg = NetLoadConfig {
            clients: 2,
            tenants: 2,
            window: Duration::from_millis(250),
            deadline: Some(Duration::from_millis(60)),
            hold: Duration::from_micros(100),
            mean_think: None,
            seed: 5,
            retry: quick_retry(),
            chaos: plan,
        };
        let report = run_net_load(addr, &cfg);
        assert_eq!(report.chaos_injected, 1, "{kind:?} executed");
        assert!(report.grants > 0, "{kind:?}: grants continued");

        let deadline = Instant::now() + 20 * lease;
        while server.ledger().held() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let final_report = server.stop();
        assert_eq!(final_report.violations, 0, "{kind:?}: ledger clean");
        assert_eq!(final_report.leaked, 0, "{kind:?}: zero leaks");
    }
}
