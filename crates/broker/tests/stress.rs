//! Safety-invariant stress tests (CI `broker-smoke`): every discipline is
//! driven by real contending threads while an independent [`Ledger`] audits
//! exclusivity, and every run is bounded by the load generator's stop
//! watchdog — a hung broker fails, it does not hang the suite.
//!
//! Timing-sensitive: the tests serialize on a static mutex so a single-core
//! host never runs two multi-threaded runs at once.

use rsin_broker::{
    run_load, run_saturated, Broker, LoadConfig, OmegaBroker, SbusBroker, XbarBroker, XbarPolicy,
};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn disciplines(workers: usize, resources: usize) -> Vec<(&'static str, Box<dyn Broker>)> {
    vec![
        ("SBUS", Box::new(SbusBroker::new(workers, resources))),
        (
            "XBAR/fixed",
            Box::new(XbarBroker::new(
                workers,
                resources,
                XbarPolicy::FixedPriority,
            )),
        ),
        (
            "XBAR/token",
            Box::new(XbarBroker::new(
                workers,
                resources,
                XbarPolicy::TokenRotation,
            )),
        ),
        ("OMEGA", Box::new(OmegaBroker::new(workers, resources))),
    ]
}

/// Each resource has at most one holder at a time, under saturation, for
/// every discipline — checked by the ledger, not by the broker itself.
#[test]
fn saturation_preserves_exclusivity_and_makes_progress() {
    let _guard = serial();
    for (name, broker) in disciplines(8, 3) {
        let report = run_saturated(
            broker.as_ref(),
            Duration::from_micros(200),
            Duration::from_millis(350),
        );
        assert_eq!(report.violations, 0, "{name}: exclusivity violated");
        assert!(
            report.total_grants() > 100,
            "{name}: only {} grants under saturation",
            report.total_grants()
        );
    }
}

/// Fair disciplines leave no worker empty-handed even at saturation.
/// (Fixed-priority XBAR is *supposed* to starve high rows — that behavior
/// has its own regression in `tests/fairness.rs`. OMEGA's claim-or-retry
/// arbitration carries no queue-order state at all, so under sustained
/// saturation a fresh releaser can re-win the race against sleeping
/// waiters indefinitely — unfairness is a documented property of the
/// discipline, not a regression; see `omega.rs` module docs.)
#[test]
fn fair_disciplines_serve_every_worker_under_saturation() {
    let _guard = serial();
    for (name, broker) in disciplines(6, 2) {
        if name == "XBAR/fixed" || name == "OMEGA" {
            continue;
        }
        let report = run_saturated(
            broker.as_ref(),
            Duration::from_micros(200),
            Duration::from_millis(400),
        );
        assert_eq!(report.violations, 0, "{name}: exclusivity violated");
        for (w, &g) in report.grants.iter().enumerate() {
            assert!(g > 0, "{name}: worker {w} starved ({:?})", report.grants);
        }
    }
}

/// Open-loop Poisson runs complete without abandonment (every acquire
/// eventually completes — the liveness invariant) and with a clean audit.
#[test]
fn open_loop_runs_drain_cleanly() {
    let _guard = serial();
    for (name, broker) in disciplines(6, 2) {
        let mut cfg = LoadConfig::new(0.2, 1.0); // ρ = 6·0.2 / (2·1) = 0.6
        cfg.scale_us = 800.0;
        cfg.warmup = 15.0;
        cfg.duration = 120.0;
        cfg.drain = 60.0;
        cfg.seed = 0xBEEF;
        let report = run_load(broker.as_ref(), &cfg);
        assert_eq!(report.violations, 0, "{name}: exclusivity violated");
        assert_eq!(report.abandoned, 0, "{name}: acquires left hanging");
        assert_eq!(
            report.measured(),
            report.offered,
            "{name}: measured tasks lost"
        );
        assert!(report.measured() > 50, "{name}: run too small to trust");
        assert_eq!(report.hist.count(), report.measured(), "{name}: shard skew");
        assert!(report.mean_delay() >= 0.0, "{name}: negative delay");
    }
}

/// The degenerate µ_n → ∞ run and a finite-µ_n run both audit clean on the
/// bus discipline, whose end_transmission path is the subtle one.
#[test]
fn sbus_transmission_phase_audits_clean() {
    let _guard = serial();
    for mu_n in [None, Some(4.0)] {
        let broker = SbusBroker::new(6, 2);
        let mut cfg = LoadConfig::new(0.15, 1.0);
        cfg.mu_n = mu_n;
        cfg.scale_us = 800.0;
        cfg.warmup = 15.0;
        cfg.duration = 100.0;
        cfg.drain = 60.0;
        cfg.seed = 7;
        let report = run_load(&broker, &cfg);
        assert_eq!(report.violations, 0, "mu_n {mu_n:?}: exclusivity violated");
        assert_eq!(report.abandoned, 0, "mu_n {mu_n:?}: acquires left hanging");
        assert!(report.measured() > 40, "mu_n {mu_n:?}: run too small");
    }
}
