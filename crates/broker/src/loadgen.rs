//! Closed-loop load generation against a [`Broker`], with sharded
//! statistics, an independent grant audit, and a chaos mode that injects
//! client crashes, stalls, and resource faults under supervision.
//!
//! [`run_load`] replays the paper's task lifecycle in real time: each of
//! the broker's workers is an OS thread playing one processor. The thread
//! draws a Poisson arrival schedule from its own deterministic
//! [`SimRng`] stream and, for every arrival, blocks in
//! [`Broker::acquire`], holds the circuit for an exponential transmission,
//! then hands the grant to a **reaper** thread that releases it after the
//! exponential service interval. Offloading the release is what makes the
//! semantics match the DES in `rsin-core`: there a processor is occupied
//! only while queueing and transmitting — service overlaps with the
//! processor's next request — so the worker thread must be free to start
//! its next acquire while earlier grants are still in service.
//!
//! Every held grant lives inside a [`GrantGuard`]: if the holding thread
//! unwinds for any reason, the guard's `Drop` ends the transmission and
//! releases the resource with the ledger kept honest, so a panic can no
//! longer leak a grant. The only way to leak is to *ask* for it
//! ([`GrantGuard::forget`]) — which is exactly what the chaos driver does
//! to simulate fail-stop client death.
//!
//! [`run_load_chaos`] is the hardened twin: it additionally executes a
//! [`ChaosPlan`](crate::ChaosPlan) (seeded client crashes and stalls), a
//! [`rsin_des::FaultPlan`] of resource outages, and promotes the
//! reaper into a **supervisor** that periodically reclaims expired leases
//! ([`Broker::reclaim_expired`]) and applies due fault events. Crashed
//! worker threads genuinely unwind; their statistics shards ride out in
//! the unwind payload and are recovered at join, so crashed workers still
//! count in the merged report.
//!
//! Grant delay is measured from the *scheduled* arrival instant (so a
//! backlogged processor correctly charges head-of-line waiting to the
//! tasks behind it, exactly as the DES does) and recorded in per-worker
//! [`Welford`]/[`Histogram`] shards that are merged losslessly after the
//! run — the merge operations that `tests/property.rs` proves equivalent
//! to single-stream accumulation.
//!
//! Model time maps to wall time through [`LoadConfig::scale_us`]
//! (microseconds per model unit). All timed waits finish with a short spin
//! ([`sleep_until`]) so scheduling overshoot stays in the microseconds;
//! the residual measurement floor — a blocked acquire re-polls at worst
//! every [`Waiter::MAX_SLEEP`](crate::Waiter::MAX_SLEEP) — is budgeted
//! explicitly by the cross-validation tolerances (DESIGN.md §8).
//!
//! [`run_saturated`] is the companion closed-loop driver for fairness and
//! safety work: every worker re-requests as fast as it can, and the report
//! exposes per-worker grant counts and worst-case waits.
//! [`run_saturated_chaos`] adds the same supervision; there, chaos and
//! fault times are in **milliseconds of wall time** (a saturated run has
//! no model clock).

use crate::chaos::ChaosOptions;
use crate::{Broker, BrokerGrant, RunControl, WorkerId, VACANT};
use rsin_des::stats::{Histogram, Welford};
use rsin_des::{FaultAction, FaultPlan, FaultTarget, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Final stretch of every timed wait that is spun, not slept, so wall
/// targets are hit with microsecond accuracy even though `thread::sleep`
/// overshoots by scheduler quanta.
const SPIN_WINDOW: Duration = Duration::from_micros(250);

/// Sleeps until `target`, finishing with a bounded spin for accuracy.
fn sleep_until(target: Instant) {
    loop {
        let now = Instant::now();
        let Some(remaining) = target.checked_duration_since(now) else {
            return;
        };
        if remaining > SPIN_WINDOW {
            std::thread::sleep(remaining - SPIN_WINDOW);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Offered load and run-length parameters for [`run_load`], in the
/// paper's model units.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Poisson arrival rate per worker.
    pub lambda: f64,
    /// Transmission rate µ_n; `None` is the µ_n → ∞ degenerate limit
    /// (the circuit is released the instant it is granted).
    pub mu_n: Option<f64>,
    /// Service rate µ_s.
    pub mu_s: f64,
    /// Wall microseconds per model time unit.
    pub scale_us: f64,
    /// Model time discarded while the system warms up.
    pub warmup: f64,
    /// Model time measured after warm-up.
    pub duration: f64,
    /// Model time allowed after the measured window for queued tasks to
    /// drain before stragglers are aborted.
    pub drain: f64,
    /// Root seed; worker `w` draws from the derived stream `w`.
    pub seed: u64,
    /// Bins of the per-worker delay histograms.
    pub hist_bins: usize,
    /// Upper edge of the delay histograms, in model units.
    pub hist_upper: f64,
}

impl LoadConfig {
    /// A config with the workspace's defaults for everything but the
    /// rates: 4 ms per model unit, 50 warm-up units, 200 measured units.
    #[must_use]
    pub fn new(lambda: f64, mu_s: f64) -> Self {
        LoadConfig {
            lambda,
            mu_n: None,
            mu_s,
            scale_us: 4_000.0,
            warmup: 50.0,
            duration: 200.0,
            drain: 30.0,
            seed: 1,
            hist_bins: 64,
            hist_upper: 8.0,
        }
    }

    fn scale_secs(&self) -> f64 {
        self.scale_us * 1e-6
    }

    fn wall_after(&self, model_t: f64) -> Duration {
        Duration::from_secs_f64(model_t * self.scale_secs())
    }
}

/// One worker thread's statistics, recorded without any cross-thread
/// sharing and merged after the run.
#[derive(Clone, Debug)]
pub struct WorkerShard {
    /// Grant delays (model units) of tasks arriving in the measured window.
    pub delay: Welford,
    /// The same delays, binned.
    pub hist: Histogram,
    /// Grants won over the whole run, warm-up included.
    pub grants: u64,
    /// Tasks scheduled inside the measured window.
    pub offered: u64,
    /// Acquires aborted by the drain deadline.
    pub abandoned: u64,
}

impl WorkerShard {
    fn new(cfg: &LoadConfig) -> Self {
        WorkerShard {
            delay: Welford::new(),
            hist: Histogram::new(cfg.hist_bins, cfg.hist_upper),
            grants: 0,
            offered: 0,
            abandoned: 0,
        }
    }
}

/// Merged output of one [`run_load`] run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// All measured grant delays, in model units.
    pub delay: Welford,
    /// The same delays, binned.
    pub hist: Histogram,
    /// Grants won over the whole run, warm-up included.
    pub grants: u64,
    /// Tasks scheduled inside the measured window.
    pub offered: u64,
    /// Acquires aborted by the drain deadline.
    pub abandoned: u64,
    /// Exclusivity violations detected by the [`Ledger`]; zero for a
    /// correct broker.
    pub violations: u64,
    /// The per-worker shards the totals were merged from.
    pub shards: Vec<WorkerShard>,
}

impl LoadReport {
    /// Mean grant delay in model units — the paper's `d`.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        self.delay.mean()
    }

    /// Measured tasks whose delay was recorded.
    #[must_use]
    pub fn measured(&self) -> u64 {
        self.delay.count()
    }
}

/// Output of one [`run_load_chaos`] run: the ordinary load report plus
/// the fault-tolerance accounting the chaos acceptance criteria assert on.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The merged load statistics (crashed workers' shards included —
    /// they are recovered from the unwind payload).
    pub load: LoadReport,
    /// Worker threads that genuinely crashed (unwound) mid-protocol.
    pub crashed: usize,
    /// Stalls executed (grants held past their lease by live stragglers).
    pub stalled: usize,
    /// Leases the supervisor reclaimed from dead or stalled holders.
    pub reclaimed: u64,
    /// Leases force-reclaimed at shutdown (leaked grants whose lease had
    /// not yet expired when the run ended).
    pub forced_reclaims: u64,
    /// Grants won by arrivals after the last scheduled chaos event — the
    /// "system keeps granting" liveness witness.
    pub post_chaos_grants: u64,
    /// [`Broker::available_resources`] after shutdown reclamation and
    /// fault repair; equals the resource count iff nothing leaked.
    pub available_at_end: usize,
    /// [`Ledger::held`] after shutdown — zero iff the audit saw every
    /// grant matched by a release or a reclaim.
    pub ledger_held_at_end: usize,
}

/// Output of one [`run_saturated`] run.
#[derive(Clone, Debug)]
pub struct SaturatedReport {
    /// Grants won by each worker.
    pub grants: Vec<u64>,
    /// Longest single acquire wait each worker observed.
    pub max_wait: Vec<Duration>,
    /// Exclusivity violations detected by the [`Ledger`].
    pub violations: u64,
}

impl SaturatedReport {
    /// Total grants across all workers.
    #[must_use]
    pub fn total_grants(&self) -> u64 {
        self.grants.iter().sum()
    }
}

/// Output of one [`run_saturated_chaos`] run.
#[derive(Clone, Debug)]
pub struct SaturatedChaosReport {
    /// The per-worker saturation statistics (crashed workers included).
    pub sat: SaturatedReport,
    /// Worker threads that genuinely crashed mid-protocol.
    pub crashed: usize,
    /// Leases the supervisor reclaimed from dead or stalled holders.
    pub reclaimed: u64,
    /// Leases force-reclaimed at shutdown.
    pub forced_reclaims: u64,
    /// Grants won after the last scheduled chaos event.
    pub post_chaos_grants: u64,
    /// [`Broker::available_resources`] after shutdown reclamation and
    /// fault repair.
    pub available_at_end: usize,
}

/// Independent audit of grant exclusivity.
///
/// The ledger mirrors every claim and vacate in its own atomic array,
/// *outside* the broker under test: if a broken broker ever grants one
/// resource to two holders, the second [`Ledger::claim`] finds the slot
/// occupied and counts a violation instead of trusting the broker's own
/// bookkeeping. Under chaos the reclaim paths vacate through the same
/// audit hooks, during the window in which the slot is unclaimable, so a
/// reclaim-then-regrant can never appear as a double claim.
#[derive(Debug)]
pub struct Ledger {
    slots: Vec<AtomicU64>,
    /// Attribution tags, parallel to `slots`: an opaque caller-packed word
    /// (the networked front-end packs `(tenant, connection id)`) recorded
    /// alongside each claim. [`NO_TAG`] when vacant. Tags are bookkeeping,
    /// not the exclusivity check — `slots` alone decides violations — so a
    /// racing reader sees at worst a stale tag, never a false violation.
    tags: Vec<AtomicU64>,
    violations: AtomicU64,
}

/// Tag value of a vacant slot.
pub const NO_TAG: u64 = u64::MAX;

impl Ledger {
    /// A ledger for `resources` slots, all vacant.
    #[must_use]
    pub fn new(resources: usize) -> Self {
        Ledger {
            slots: (0..resources).map(|_| AtomicU64::new(VACANT)).collect(),
            tags: (0..resources).map(|_| AtomicU64::new(NO_TAG)).collect(),
            violations: AtomicU64::new(0),
        }
    }

    /// Records that `who` was granted `resource`.
    pub fn claim(&self, resource: usize, who: WorkerId) {
        self.claim_tagged(resource, who, who as u64);
    }

    /// Records that `who` was granted `resource`, attributed to `tag` (an
    /// opaque word; the net layer packs `(tenant, connection id)` so audits
    /// can distinguish a reclaim-then-regrant to a *new* connection from a
    /// double grant to a dead one). The thread-local load generators tag
    /// with the worker id.
    pub fn claim_tagged(&self, resource: usize, who: WorkerId, tag: u64) {
        if self.slots[resource]
            .compare_exchange(VACANT, who as u64, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            self.violations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.tags[resource].store(tag, Ordering::Release);
        }
    }

    /// Records that `who` released `resource`.
    pub fn vacate(&self, resource: usize, who: WorkerId) {
        // Clear the tag before freeing the slot: once the CAS lands another
        // claimant may retag immediately, and a late store from this side
        // would misattribute the new holder.
        self.tags[resource].store(NO_TAG, Ordering::Release);
        if self.slots[resource]
            .compare_exchange(who as u64, VACANT, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The attribution tag of `resource`'s current holder, or `None` when
    /// vacant. Advisory: concurrent claim/vacate can race the two loads, so
    /// callers treat this as a diagnostic snapshot, not a synchronization
    /// primitive.
    #[must_use]
    pub fn tag(&self, resource: usize) -> Option<u64> {
        if self.slots[resource].load(Ordering::Acquire) == VACANT {
            return None;
        }
        match self.tags[resource].load(Ordering::Acquire) {
            NO_TAG => None,
            t => Some(t),
        }
    }

    /// Violations observed so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Slots currently marked held.
    #[must_use]
    pub fn held(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != VACANT)
            .count()
    }
}

/// RAII custody of one grant: ends the transmission and releases the
/// resource (audited) when dropped, so an unwinding holder can no longer
/// leak a grant.
///
/// The pre-guard load generator had exactly that bug: a panic between
/// `acquire` and `release` left the resource held forever. Now the only
/// way to leak is deliberate — [`GrantGuard::forget`] — which is the
/// chaos driver's fail-stop crash simulation, and whose leak the lease
/// supervisor is designed to reclaim.
pub struct GrantGuard<'a, B: Broker + ?Sized> {
    broker: &'a B,
    ledger: Option<&'a Ledger>,
    who: WorkerId,
    grant: BrokerGrant,
    transmitting: bool,
    armed: bool,
}

impl<'a, B: Broker + ?Sized> GrantGuard<'a, B> {
    /// Guards `grant` without ledger bookkeeping.
    #[must_use]
    pub fn new(broker: &'a B, who: WorkerId, grant: BrokerGrant) -> Self {
        GrantGuard {
            broker,
            ledger: None,
            who,
            grant,
            transmitting: true,
            armed: true,
        }
    }

    /// Guards `grant` and records the claim in `ledger` now; the matching
    /// vacate runs inside the audited release when the guard drops.
    #[must_use]
    pub fn audited(broker: &'a B, ledger: &'a Ledger, who: WorkerId, grant: BrokerGrant) -> Self {
        ledger.claim(grant.resource, who);
        GrantGuard {
            broker,
            ledger: Some(ledger),
            who,
            grant,
            transmitting: true,
            armed: true,
        }
    }

    /// The guarded grant.
    #[must_use]
    pub fn grant(&self) -> BrokerGrant {
        self.grant
    }

    /// Ends the transmission phase (idempotent; `Drop` calls it if the
    /// holder never did).
    pub fn end_transmission(&mut self) {
        if self.transmitting {
            self.transmitting = false;
            self.broker.end_transmission(self.who, self.grant);
        }
    }

    /// Releases now (equivalent to dropping, spelled out at call sites).
    pub fn release(self) {}

    /// Deliberately leaks the grant — no transmission end, no release, no
    /// audit — simulating the holder's fail-stop death mid-protocol.
    /// Returns the leaked grant for the record.
    #[must_use]
    pub fn forget(mut self) -> BrokerGrant {
        self.armed = false;
        self.grant
    }

    /// Hands the release off to the reaper at `due` and disarms the
    /// guard. Transmission must already be ended.
    fn defer(mut self, reaper: &Reaper, due: Instant) {
        debug_assert!(!self.transmitting, "defer before end_transmission");
        self.armed = false;
        reaper.push(due, self.who, self.grant);
    }
}

impl<B: Broker + ?Sized> fmt::Debug for GrantGuard<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GrantGuard")
            .field("who", &self.who)
            .field("grant", &self.grant)
            .field("transmitting", &self.transmitting)
            .field("armed", &self.armed)
            .finish()
    }
}

impl<B: Broker + ?Sized> Drop for GrantGuard<'_, B> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.end_transmission();
        let ledger = self.ledger;
        self.broker
            .release_audited(self.who, self.grant, &mut |r, w| {
                if let Some(l) = ledger {
                    l.vacate(r, w);
                }
            });
    }
}

/// A grant awaiting its service-completion release.
#[derive(Debug)]
struct PendingRelease {
    due: Instant,
    who: WorkerId,
    grant: BrokerGrant,
}

impl PartialEq for PendingRelease {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.who == other.who
    }
}
impl Eq for PendingRelease {}
impl PartialOrd for PendingRelease {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingRelease {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.who).cmp(&(other.due, other.who))
    }
}

/// The reaper's shared queue of pending releases.
#[derive(Debug, Default)]
struct ReaperQueue {
    heap: BinaryHeap<Reverse<PendingRelease>>,
    closed: bool,
}

/// Release scheduler shared between the workers (producers) and the
/// reaper thread (consumer). Under chaos the same thread doubles as the
/// **supervisor**: between releases it reclaims expired leases and
/// applies due resource-fault events.
#[derive(Debug, Default)]
struct Reaper {
    queue: Mutex<ReaperQueue>,
    wake: Condvar,
}

impl Reaper {
    fn push(&self, due: Instant, who: WorkerId, grant: BrokerGrant) {
        let mut q = self.queue.lock().expect("reaper lock");
        q.heap.push(Reverse(PendingRelease { due, who, grant }));
        self.wake.notify_one();
    }

    fn close(&self) {
        self.queue.lock().expect("reaper lock").closed = true;
        self.wake.notify_one();
    }

    /// Runs until closed *and* drained, releasing each grant at its due
    /// instant (immediately once closed — the run is over). With a
    /// supervisor attached, additionally wakes at least every
    /// `supervisor.poll` to reclaim expired leases and apply fault
    /// events; returns the number of leases reclaimed.
    ///
    /// Releases go through [`Broker::release_audited`] and tolerate
    /// [`ReleaseOutcome::Stale`](crate::ReleaseOutcome::Stale): a grant
    /// the supervisor already reclaimed (its holder stalled) must not be
    /// vacated a second time.
    fn run<B: Broker + ?Sized>(
        &self,
        broker: &B,
        ledger: &Ledger,
        mut supervisor: Option<&mut Supervisor>,
    ) -> u64 {
        let mut reclaimed = 0u64;
        loop {
            if let Some(sup) = supervisor.as_deref_mut() {
                sup.faults.apply_due(broker);
                reclaimed += broker.reclaim_expired(&mut |r, w| ledger.vacate(r, w)) as u64;
            }
            let mut q = self.queue.lock().expect("reaper lock");
            loop {
                let now = Instant::now();
                match q.heap.peek() {
                    Some(Reverse(top)) if top.due <= now || q.closed => {
                        let Reverse(p) = q.heap.pop().expect("peeked");
                        drop(q);
                        broker.release_audited(p.who, p.grant, &mut |r, w| ledger.vacate(r, w));
                        q = self.queue.lock().expect("reaper lock");
                    }
                    _ => break,
                }
            }
            let now = Instant::now();
            let next_due = q.heap.peek().map(|Reverse(top)| top.due);
            if q.closed && next_due.is_none() {
                return reclaimed;
            }
            let mut wait = match next_due {
                Some(due) => due.saturating_duration_since(now),
                None => Duration::from_secs(3_600),
            };
            if let Some(sup) = supervisor.as_deref() {
                wait = wait.min(sup.poll);
            }
            if wait > SPIN_WINDOW {
                let (guard, _) = self
                    .wake
                    .wait_timeout(q, wait - SPIN_WINDOW)
                    .expect("reaper lock");
                drop(guard);
            } else {
                drop(q);
                sleep_until(now + wait);
            }
        }
    }
}

/// Wall-clock materialization of a [`FaultPlan`]: the finite, time-sorted
/// prefix of events inside the run horizon, mapped to instants.
#[derive(Debug)]
struct FaultSchedule {
    /// `(when, resource, down)` in nondecreasing `when` order.
    events: Vec<(Instant, usize, bool)>,
    next: usize,
    down: Vec<bool>,
}

impl FaultSchedule {
    /// Drains `plan`'s timeline (materialized with `seed` — feed the DES
    /// the same seed and it sees the identical event sequence) up to
    /// `horizon` model units, mapping model time `t` to
    /// `epoch + t * scale_secs`. `Element` targets and out-of-range
    /// resource indices are ignored.
    fn materialize(
        plan: &FaultPlan,
        seed: u64,
        resources: usize,
        epoch: Instant,
        scale_secs: f64,
        horizon: f64,
    ) -> Self {
        let mut events = Vec::new();
        if !plan.is_empty() {
            let mut rng = SimRng::new(seed);
            let mut timeline = plan.timeline(&mut rng);
            for e in timeline.drain_until(SimTime::new(horizon)) {
                if let FaultTarget::Resource(r) = e.target {
                    if r < resources {
                        let due = epoch + Duration::from_secs_f64(e.time.as_f64() * scale_secs);
                        events.push((due, r, e.action == FaultAction::Fail));
                    }
                }
            }
        }
        FaultSchedule {
            events,
            next: 0,
            down: vec![false; resources],
        }
    }

    /// Applies every event that is due, skipping no-op transitions.
    fn apply_due<B: Broker + ?Sized>(&mut self, broker: &B) {
        let now = Instant::now();
        while let Some(&(due, r, down)) = self.events.get(self.next) {
            if due > now {
                break;
            }
            self.next += 1;
            if self.down[r] != down {
                self.down[r] = down;
                broker.set_resource_faulted(r, down);
            }
        }
    }

    /// Repairs everything still down — the shutdown path, so the
    /// leak audit compares against full capacity.
    fn repair_all<B: Broker + ?Sized>(&mut self, broker: &B) {
        for (r, d) in self.down.iter_mut().enumerate() {
            if *d {
                *d = false;
                broker.set_resource_faulted(r, false);
            }
        }
    }
}

/// The reaper's chaos-mode side job.
#[derive(Debug)]
struct Supervisor {
    poll: Duration,
    faults: FaultSchedule,
}

/// What a chaos worker thread hands back — normally by return, after a
/// crash by unwind payload.
struct ChaosOut {
    shard: WorkerShard,
    post_grants: u64,
    stalls: usize,
}

/// Unwind payload of a simulated fail-stop crash. Carried via
/// [`std::panic::resume_unwind`] so the default panic hook stays silent —
/// these deaths are scheduled, not bugs.
struct CrashPayload(ChaosOut);

/// Client-side chaos context for one run.
struct ChaosCtx {
    plan: crate::ChaosPlan,
    /// Model time after which every scheduled misbehavior has begun.
    horizon: f64,
}

/// One worker thread: replays its arrival schedule against the broker,
/// misbehaving on cue when a chaos context is attached.
#[allow(clippy::too_many_arguments)]
fn drive_worker<B: Broker + ?Sized>(
    broker: &B,
    ledger: &Ledger,
    reaper: &Reaper,
    ctl: &RunControl,
    cfg: &LoadConfig,
    epoch: Instant,
    who: WorkerId,
    chaos: Option<&ChaosCtx>,
) -> ChaosOut {
    let mut rng = SimRng::new(cfg.seed).derive(who as u64);
    let mut shard = WorkerShard::new(cfg);
    let my_events = chaos.map(|cx| cx.plan.for_worker(who)).unwrap_or_default();
    let mut next_event = 0usize;
    let mut post_grants = 0u64;
    let mut stalls = 0usize;
    let horizon = cfg.warmup + cfg.duration;
    let mut t = 0.0_f64;
    loop {
        t += rng.exponential(cfg.lambda);
        if t >= horizon {
            break;
        }
        let measured = t >= cfg.warmup;
        if measured {
            shard.offered += 1;
        }
        let scheduled = epoch + cfg.wall_after(t);
        sleep_until(scheduled);
        let Some(grant) = broker.acquire(who, ctl) else {
            shard.abandoned += 1;
            break;
        };
        let waited = Instant::now().saturating_duration_since(scheduled);
        let mut guard = GrantGuard::audited(broker, ledger, who, grant);
        shard.grants += 1;
        if measured {
            let d = waited.as_secs_f64() / cfg.scale_secs();
            shard.delay.push(d);
            shard.hist.record(d);
        }
        if let Some(cx) = chaos {
            if t >= cx.horizon {
                post_grants += 1;
            }
            if let Some(e) = my_events.get(next_event) {
                if e.at <= t {
                    next_event += 1;
                    match e.kind {
                        crate::ClientChaos::Crash => {
                            // Fail-stop death while holding the grant: leak
                            // it (the lease supervisor's problem now) and
                            // genuinely unwind, smuggling the statistics
                            // out through the panic payload.
                            let _ = guard.forget();
                            std::panic::resume_unwind(Box::new(CrashPayload(ChaosOut {
                                shard,
                                post_grants,
                                stalls,
                            })));
                        }
                        crate::ClientChaos::StallFor(s) => {
                            // Sit on the grant far past the lease: the
                            // supervisor evicts us mid-sleep and our own
                            // late protocol calls must land as stale no-ops.
                            stalls += 1;
                            std::thread::sleep(cfg.wall_after(s));
                        }
                    }
                }
            }
        }
        if let Some(mu_n) = cfg.mu_n {
            let tx = rng.exponential(mu_n);
            sleep_until(Instant::now() + cfg.wall_after(tx));
        }
        guard.end_transmission();
        let svc = rng.exponential(cfg.mu_s);
        guard.defer(reaper, Instant::now() + cfg.wall_after(svc));
    }
    ChaosOut {
        shard,
        post_grants,
        stalls,
    }
}

/// Joins a chaos worker, recovering the statistics of a scheduled crash
/// from the unwind payload; real (unscheduled) panics propagate.
fn join_chaos_worker(
    handle: std::thread::ScopedJoinHandle<'_, ChaosOut>,
    crashed: &mut usize,
) -> ChaosOut {
    match handle.join() {
        Ok(out) => out,
        Err(payload) => match payload.downcast::<CrashPayload>() {
            Ok(crash) => {
                *crashed += 1;
                crash.0
            }
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Drives `broker` with open-loop Poisson traffic from one thread per
/// worker, returning merged delay statistics.
///
/// The run is self-limiting: once the schedule horizon plus
/// [`LoadConfig::drain`] has elapsed on the wall clock, the shared
/// [`RunControl`] is stopped and any still-blocked acquire unwinds as an
/// abandonment — a hung broker fails the run's assertions instead of
/// hanging the process.
///
/// # Panics
///
/// Panics if a worker thread panics (e.g. a broker protocol assertion
/// fires) or if the config's rates are not positive.
pub fn run_load<B: Broker + ?Sized>(broker: &B, cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.lambda > 0.0, "arrival rate must be positive");
    assert!(cfg.mu_s > 0.0, "service rate must be positive");
    assert!(cfg.scale_us > 0.0, "time scale must be positive");
    let workers = broker.workers();
    let ledger = Ledger::new(broker.resources());
    let reaper = Reaper::default();
    let ctl = RunControl::new();
    let epoch = Instant::now() + Duration::from_millis(10);
    let deadline = epoch + cfg.wall_after(cfg.warmup + cfg.duration + cfg.drain);

    let mut shards: Vec<Option<WorkerShard>> = (0..workers).map(|_| None).collect();
    std::thread::scope(|s| {
        let reaper_handle = s.spawn(|| reaper.run(broker, &ledger, None));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ledger, reaper, ctl, cfg) = (&ledger, &reaper, &ctl, &cfg);
                s.spawn(move || drive_worker(broker, ledger, reaper, ctl, cfg, epoch, w, None))
            })
            .collect();
        sleep_until(deadline);
        ctl.stop();
        for (w, h) in handles.into_iter().enumerate() {
            shards[w] = Some(h.join().expect("worker panicked").shard);
        }
        reaper.close();
        reaper_handle.join().expect("reaper panicked");
    });

    let shards: Vec<WorkerShard> = shards.into_iter().map(|s| s.expect("joined")).collect();
    merge_report(cfg, shards, &ledger)
}

/// Merges per-worker shards and the ledger verdict into a [`LoadReport`].
fn merge_report(cfg: &LoadConfig, shards: Vec<WorkerShard>, ledger: &Ledger) -> LoadReport {
    let mut delay = Welford::new();
    let mut hist = Histogram::new(cfg.hist_bins, cfg.hist_upper);
    let (mut grants, mut offered, mut abandoned) = (0, 0, 0);
    for s in &shards {
        delay.merge(&s.delay);
        hist.merge(&s.hist);
        grants += s.grants;
        offered += s.offered;
        abandoned += s.abandoned;
    }
    LoadReport {
        delay,
        hist,
        grants,
        offered,
        abandoned,
        violations: ledger.violations(),
        shards,
    }
}

/// [`run_load`] under fire: executes `opts.plan`'s client crashes and
/// stalls, applies `opts.faults` resource outages, and supervises the
/// broker's leases throughout. The broker should be built `with_lease`
/// (roughly `opts.lease`), or leaked grants survive until the shutdown
/// force-reclaim.
///
/// Shutdown sequence: workers joined (crash payloads recovered) → reaper
/// drained → [`Broker::reclaim_all`] (catches leaks whose lease had not
/// yet expired) → outstanding faults repaired → capacity audited. A
/// chaos-correct broker ends with `available_at_end == resources()`,
/// `ledger_held_at_end == 0`, and zero violations.
///
/// # Panics
///
/// Panics on an *unscheduled* worker panic (broker protocol assertion) or
/// non-positive rates.
pub fn run_load_chaos<B: Broker + ?Sized>(
    broker: &B,
    cfg: &LoadConfig,
    opts: &ChaosOptions,
) -> ChaosReport {
    assert!(cfg.lambda > 0.0, "arrival rate must be positive");
    assert!(cfg.mu_s > 0.0, "service rate must be positive");
    assert!(cfg.scale_us > 0.0, "time scale must be positive");
    let workers = broker.workers();
    let resources = broker.resources();
    let ledger = Ledger::new(resources);
    let reaper = Reaper::default();
    let ctl = RunControl::new();
    let epoch = Instant::now() + Duration::from_millis(10);
    let horizon = cfg.warmup + cfg.duration + cfg.drain;
    let deadline = epoch + cfg.wall_after(horizon);
    let chaos_ctx = ChaosCtx {
        plan: opts.plan.clone(),
        horizon: opts.plan.horizon(),
    };
    let mut supervisor = Supervisor {
        poll: opts.supervisor_poll(),
        faults: FaultSchedule::materialize(
            &opts.faults,
            opts.fault_seed,
            resources,
            epoch,
            cfg.scale_secs(),
            horizon,
        ),
    };

    let mut outs: Vec<Option<ChaosOut>> = (0..workers).map(|_| None).collect();
    let mut crashed = 0usize;
    let reclaimed = std::thread::scope(|s| {
        let sup = &mut supervisor;
        let reaper_handle = s.spawn(|| reaper.run(broker, &ledger, Some(sup)));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ledger, reaper, ctl, cfg, cx) = (&ledger, &reaper, &ctl, &cfg, &chaos_ctx);
                s.spawn(move || drive_worker(broker, ledger, reaper, ctl, cfg, epoch, w, Some(cx)))
            })
            .collect();
        sleep_until(deadline);
        ctl.stop();
        for (w, h) in handles.into_iter().enumerate() {
            outs[w] = Some(join_chaos_worker(h, &mut crashed));
        }
        reaper.close();
        reaper_handle.join().expect("reaper panicked")
    });

    let forced_reclaims = broker.reclaim_all(&mut |r, w| ledger.vacate(r, w)) as u64;
    supervisor.faults.repair_all(broker);

    let outs: Vec<ChaosOut> = outs.into_iter().map(|o| o.expect("joined")).collect();
    let post_chaos_grants = outs.iter().map(|o| o.post_grants).sum();
    let stalled = outs.iter().map(|o| o.stalls).sum();
    let shards = outs.into_iter().map(|o| o.shard).collect();
    ChaosReport {
        load: merge_report(cfg, shards, &ledger),
        crashed,
        stalled,
        reclaimed,
        forced_reclaims,
        post_chaos_grants,
        available_at_end: broker.available_resources(),
        ledger_held_at_end: ledger.held(),
    }
}

/// Drives `broker` at saturation: every worker loops acquire → hold →
/// release with zero think time for `run_for`, then the run is stopped.
///
/// The per-worker grant counts and worst-case waits are what the fairness
/// regression asserts on: fixed-priority arbitration starves the
/// highest-index worker here, token rotation does not.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_saturated<B: Broker + ?Sized>(
    broker: &B,
    hold: Duration,
    run_for: Duration,
) -> SaturatedReport {
    let workers = broker.workers();
    let ledger = Ledger::new(broker.resources());
    let ctl = RunControl::new();
    let mut grants = vec![0u64; workers];
    let mut max_wait = vec![Duration::ZERO; workers];

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ledger, ctl) = (&ledger, &ctl);
                s.spawn(move || {
                    let mut won = 0u64;
                    let mut worst = Duration::ZERO;
                    loop {
                        let started = Instant::now();
                        let Some(grant) = broker.acquire(w, ctl) else {
                            break;
                        };
                        worst = worst.max(started.elapsed());
                        let mut guard = GrantGuard::audited(broker, ledger, w, grant);
                        won += 1;
                        std::thread::sleep(hold);
                        guard.end_transmission();
                        guard.release();
                    }
                    (won, worst)
                })
            })
            .collect();
        std::thread::sleep(run_for);
        ctl.stop();
        for (w, h) in handles.into_iter().enumerate() {
            let (won, worst) = h.join().expect("worker panicked");
            grants[w] = won;
            max_wait[w] = worst;
        }
    });

    SaturatedReport {
        grants,
        max_wait,
        violations: ledger.violations(),
    }
}

/// Unwind payload of a crashed saturated worker.
struct SatCrashPayload {
    won: u64,
    worst: Duration,
    post_grants: u64,
}

/// [`run_saturated`] under fire. Because a saturated run has no model
/// clock, `opts.plan` event times, stall durations, and `opts.faults`
/// times are interpreted as **milliseconds of wall time** from the run's
/// start.
///
/// # Panics
///
/// Panics on an unscheduled worker panic.
pub fn run_saturated_chaos<B: Broker + ?Sized>(
    broker: &B,
    hold: Duration,
    run_for: Duration,
    opts: &ChaosOptions,
) -> SaturatedChaosReport {
    const MS_PER_UNIT: f64 = 1e-3;
    let workers = broker.workers();
    let resources = broker.resources();
    let ledger = Ledger::new(resources);
    let ctl = RunControl::new();
    let epoch = Instant::now();
    let chaos_over = epoch + Duration::from_secs_f64(opts.plan.horizon() * MS_PER_UNIT);
    let mut faults = FaultSchedule::materialize(
        &opts.faults,
        opts.fault_seed,
        resources,
        epoch,
        MS_PER_UNIT,
        run_for.as_secs_f64() / MS_PER_UNIT,
    );
    let poll = opts.supervisor_poll();
    let supervisor_done = AtomicBool::new(false);

    let mut grants = vec![0u64; workers];
    let mut max_wait = vec![Duration::ZERO; workers];
    let mut crashed = 0usize;
    let mut post_chaos_grants = 0u64;
    let reclaimed = std::thread::scope(|s| {
        let (faults_ref, done, sup_ledger) = (&mut faults, &supervisor_done, &ledger);
        let sup_handle = s.spawn(move || {
            let mut reclaimed = 0u64;
            loop {
                faults_ref.apply_due(broker);
                reclaimed += broker.reclaim_expired(&mut |r, w| sup_ledger.vacate(r, w)) as u64;
                if done.load(Ordering::Acquire) {
                    return reclaimed;
                }
                std::thread::sleep(poll);
            }
        });
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ledger, ctl, opts) = (&ledger, &ctl, &opts);
                s.spawn(move || {
                    let my_events = opts.plan.for_worker(w);
                    let mut next_event = 0usize;
                    let mut won = 0u64;
                    let mut worst = Duration::ZERO;
                    let mut post = 0u64;
                    loop {
                        let started = Instant::now();
                        let Some(grant) = broker.acquire(w, ctl) else {
                            break;
                        };
                        worst = worst.max(started.elapsed());
                        let mut guard = GrantGuard::audited(broker, ledger, w, grant);
                        won += 1;
                        if Instant::now() >= chaos_over {
                            post += 1;
                        }
                        if let Some(e) = my_events.get(next_event) {
                            let due = epoch + Duration::from_secs_f64(e.at * MS_PER_UNIT);
                            if Instant::now() >= due {
                                next_event += 1;
                                match e.kind {
                                    crate::ClientChaos::Crash => {
                                        let _ = guard.forget();
                                        std::panic::resume_unwind(Box::new(SatCrashPayload {
                                            won,
                                            worst,
                                            post_grants: post,
                                        }));
                                    }
                                    crate::ClientChaos::StallFor(ms) => {
                                        std::thread::sleep(Duration::from_secs_f64(
                                            ms * MS_PER_UNIT,
                                        ));
                                    }
                                }
                            }
                        }
                        std::thread::sleep(hold);
                        guard.end_transmission();
                        guard.release();
                    }
                    (won, worst, post)
                })
            })
            .collect();
        std::thread::sleep(run_for);
        ctl.stop();
        for (w, h) in handles.into_iter().enumerate() {
            let (won, worst, post) = match h.join() {
                Ok(out) => out,
                Err(payload) => match payload.downcast::<SatCrashPayload>() {
                    Ok(crash) => {
                        crashed += 1;
                        (crash.won, crash.worst, crash.post_grants)
                    }
                    Err(other) => std::panic::resume_unwind(other),
                },
            };
            grants[w] = won;
            max_wait[w] = worst;
            post_chaos_grants += post;
        }
        supervisor_done.store(true, Ordering::Release);
        sup_handle.join().expect("supervisor panicked")
    });

    let forced_reclaims = broker.reclaim_all(&mut |r, w| ledger.vacate(r, w)) as u64;
    faults.repair_all(broker);

    SaturatedChaosReport {
        sat: SaturatedReport {
            grants,
            max_wait,
            violations: ledger.violations(),
        },
        crashed,
        reclaimed,
        forced_reclaims,
        post_chaos_grants,
        available_at_end: broker.available_resources(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaosPlan, ClientChaos, ClientEvent, XbarBroker, XbarPolicy};

    #[test]
    fn ledger_counts_double_claims_and_foreign_vacates() {
        let l = Ledger::new(2);
        l.claim(0, 3);
        assert_eq!(l.held(), 1);
        l.claim(0, 4); // double grant
        assert_eq!(l.violations(), 1);
        l.vacate(0, 5); // not the holder
        assert_eq!(l.violations(), 2);
        l.vacate(0, 3);
        assert_eq!(l.held(), 0);
        assert_eq!(l.violations(), 2);
    }

    #[test]
    fn sleep_until_is_accurate_to_the_spin_window() {
        let target = Instant::now() + Duration::from_millis(5);
        sleep_until(target);
        let over = Instant::now().saturating_duration_since(target);
        assert!(over < Duration::from_millis(2), "overshot by {over:?}");
    }

    #[test]
    fn grant_guard_releases_when_the_holder_panics() {
        let broker = XbarBroker::new(2, 2, XbarPolicy::FixedPriority);
        let ledger = Ledger::new(2);
        let ctl = RunControl::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let grant = broker.acquire(0, &ctl).expect("free column");
            let _guard = GrantGuard::audited(&broker, &ledger, 0, grant);
            panic!("holder dies mid-protocol");
        }));
        assert!(result.is_err());
        // The unwound guard ended the transmission, released, and vacated.
        assert_eq!(broker.available_resources(), 2, "grant leaked on panic");
        assert_eq!(ledger.held(), 0);
        assert_eq!(ledger.violations(), 0);
    }

    #[test]
    fn grant_guard_forget_leaks_on_purpose() {
        let broker = XbarBroker::new(2, 2, XbarPolicy::FixedPriority);
        let ledger = Ledger::new(2);
        let ctl = RunControl::new();
        let grant = broker.acquire(0, &ctl).expect("free column");
        let guard = GrantGuard::audited(&broker, &ledger, 0, grant);
        let leaked = guard.forget();
        assert_eq!(leaked, grant);
        assert_eq!(broker.available_resources(), 1, "leak must persist");
        // Shutdown force-reclaim recovers it and squares the ledger.
        let n = broker.reclaim_all(&mut |r, w| ledger.vacate(r, w));
        assert_eq!(n, 1);
        assert_eq!(broker.available_resources(), 2);
        assert_eq!(ledger.held(), 0);
        assert_eq!(ledger.violations(), 0);
    }

    #[test]
    fn load_run_is_audited_and_self_limiting() {
        let broker = XbarBroker::new(2, 2, XbarPolicy::TokenRotation);
        let mut cfg = LoadConfig::new(0.4, 2.0);
        cfg.scale_us = 500.0;
        cfg.warmup = 10.0;
        cfg.duration = 60.0;
        let report = run_load(&broker, &cfg);
        assert_eq!(report.violations, 0);
        assert_eq!(report.abandoned, 0, "light load must drain fully");
        assert_eq!(report.measured(), report.offered);
        assert!(report.measured() > 0, "some tasks must be measured");
        assert!(report.mean_delay() >= 0.0);
        assert_eq!(report.hist.count(), report.measured());
        assert_eq!(report.shards.len(), 2);
    }

    #[test]
    fn saturated_run_counts_every_worker() {
        let broker = XbarBroker::new(3, 1, XbarPolicy::TokenRotation);
        let report = run_saturated(
            &broker,
            Duration::from_micros(300),
            Duration::from_millis(120),
        );
        assert_eq!(report.violations, 0);
        assert!(report.total_grants() > 10, "saturation must make progress");
    }

    #[test]
    fn chaos_run_recovers_crashed_workers_and_their_grants() {
        let lease = Duration::from_millis(2);
        let broker = XbarBroker::with_lease(4, 2, XbarPolicy::TokenRotation, lease);
        let mut cfg = LoadConfig::new(0.5, 2.0);
        cfg.scale_us = 500.0;
        cfg.warmup = 5.0;
        cfg.duration = 60.0;
        let plan = ChaosPlan::new().with(ClientEvent {
            at: 20.0,
            worker: 1,
            kind: ClientChaos::Crash,
        });
        let opts = ChaosOptions::new(plan, lease);
        let report = run_load_chaos(&broker, &cfg, &opts);
        assert_eq!(report.crashed, 1, "the scheduled crash must fire");
        assert_eq!(report.load.violations, 0);
        assert!(
            report.reclaimed + report.forced_reclaims >= 1,
            "the leak is reclaimed"
        );
        assert!(
            report.post_chaos_grants > 0,
            "granting continues after the crash"
        );
        assert_eq!(report.available_at_end, 2, "no leaked resources");
        assert_eq!(report.ledger_held_at_end, 0);
        assert_eq!(report.load.shards.len(), 4, "crashed shard recovered");
    }
}
