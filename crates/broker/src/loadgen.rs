//! Closed-loop load generation against a [`Broker`], with sharded
//! statistics and an independent grant audit.
//!
//! [`run_load`] replays the paper's task lifecycle in real time: each of
//! the broker's workers is an OS thread playing one processor. The thread
//! draws a Poisson arrival schedule from its own deterministic
//! [`SimRng`] stream and, for every arrival, blocks in
//! [`Broker::acquire`], holds the circuit for an exponential transmission,
//! then hands the grant to a **reaper** thread that releases it after the
//! exponential service interval. Offloading the release is what makes the
//! semantics match the DES in `rsin-core`: there a processor is occupied
//! only while queueing and transmitting — service overlaps with the
//! processor's next request — so the worker thread must be free to start
//! its next acquire while earlier grants are still in service.
//!
//! Grant delay is measured from the *scheduled* arrival instant (so a
//! backlogged processor correctly charges head-of-line waiting to the
//! tasks behind it, exactly as the DES does) and recorded in per-worker
//! [`Welford`]/[`Histogram`] shards that are merged losslessly after the
//! run — the merge operations that `tests/property.rs` proves equivalent
//! to single-stream accumulation.
//!
//! Model time maps to wall time through [`LoadConfig::scale_us`]
//! (microseconds per model unit). All timed waits finish with a short spin
//! ([`sleep_until`]) so scheduling overshoot stays in the microseconds;
//! the residual measurement floor — a blocked acquire re-polls at worst
//! every [`Waiter::MAX_SLEEP`](crate::Waiter::MAX_SLEEP) — is budgeted
//! explicitly by the cross-validation tolerances (DESIGN.md §8).
//!
//! [`run_saturated`] is the companion closed-loop driver for fairness and
//! safety work: every worker re-requests as fast as it can, and the report
//! exposes per-worker grant counts and worst-case waits.

use crate::{Broker, BrokerGrant, RunControl, WorkerId, VACANT};
use rsin_des::stats::{Histogram, Welford};
use rsin_des::SimRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Final stretch of every timed wait that is spun, not slept, so wall
/// targets are hit with microsecond accuracy even though `thread::sleep`
/// overshoots by scheduler quanta.
const SPIN_WINDOW: Duration = Duration::from_micros(250);

/// Sleeps until `target`, finishing with a bounded spin for accuracy.
fn sleep_until(target: Instant) {
    loop {
        let now = Instant::now();
        let Some(remaining) = target.checked_duration_since(now) else {
            return;
        };
        if remaining > SPIN_WINDOW {
            std::thread::sleep(remaining - SPIN_WINDOW);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Offered load and run-length parameters for [`run_load`], in the
/// paper's model units.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Poisson arrival rate per worker.
    pub lambda: f64,
    /// Transmission rate µ_n; `None` is the µ_n → ∞ degenerate limit
    /// (the circuit is released the instant it is granted).
    pub mu_n: Option<f64>,
    /// Service rate µ_s.
    pub mu_s: f64,
    /// Wall microseconds per model time unit.
    pub scale_us: f64,
    /// Model time discarded while the system warms up.
    pub warmup: f64,
    /// Model time measured after warm-up.
    pub duration: f64,
    /// Model time allowed after the measured window for queued tasks to
    /// drain before stragglers are aborted.
    pub drain: f64,
    /// Root seed; worker `w` draws from the derived stream `w`.
    pub seed: u64,
    /// Bins of the per-worker delay histograms.
    pub hist_bins: usize,
    /// Upper edge of the delay histograms, in model units.
    pub hist_upper: f64,
}

impl LoadConfig {
    /// A config with the workspace's defaults for everything but the
    /// rates: 4 ms per model unit, 50 warm-up units, 200 measured units.
    #[must_use]
    pub fn new(lambda: f64, mu_s: f64) -> Self {
        LoadConfig {
            lambda,
            mu_n: None,
            mu_s,
            scale_us: 4_000.0,
            warmup: 50.0,
            duration: 200.0,
            drain: 30.0,
            seed: 1,
            hist_bins: 64,
            hist_upper: 8.0,
        }
    }

    fn scale_secs(&self) -> f64 {
        self.scale_us * 1e-6
    }

    fn wall_after(&self, model_t: f64) -> Duration {
        Duration::from_secs_f64(model_t * self.scale_secs())
    }
}

/// One worker thread's statistics, recorded without any cross-thread
/// sharing and merged after the run.
#[derive(Clone, Debug)]
pub struct WorkerShard {
    /// Grant delays (model units) of tasks arriving in the measured window.
    pub delay: Welford,
    /// The same delays, binned.
    pub hist: Histogram,
    /// Grants won over the whole run, warm-up included.
    pub grants: u64,
    /// Tasks scheduled inside the measured window.
    pub offered: u64,
    /// Acquires aborted by the drain deadline.
    pub abandoned: u64,
}

impl WorkerShard {
    fn new(cfg: &LoadConfig) -> Self {
        WorkerShard {
            delay: Welford::new(),
            hist: Histogram::new(cfg.hist_bins, cfg.hist_upper),
            grants: 0,
            offered: 0,
            abandoned: 0,
        }
    }
}

/// Merged output of one [`run_load`] run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// All measured grant delays, in model units.
    pub delay: Welford,
    /// The same delays, binned.
    pub hist: Histogram,
    /// Grants won over the whole run, warm-up included.
    pub grants: u64,
    /// Tasks scheduled inside the measured window.
    pub offered: u64,
    /// Acquires aborted by the drain deadline.
    pub abandoned: u64,
    /// Exclusivity violations detected by the [`Ledger`]; zero for a
    /// correct broker.
    pub violations: u64,
    /// The per-worker shards the totals were merged from.
    pub shards: Vec<WorkerShard>,
}

impl LoadReport {
    /// Mean grant delay in model units — the paper's `d`.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        self.delay.mean()
    }

    /// Measured tasks whose delay was recorded.
    #[must_use]
    pub fn measured(&self) -> u64 {
        self.delay.count()
    }
}

/// Output of one [`run_saturated`] run.
#[derive(Clone, Debug)]
pub struct SaturatedReport {
    /// Grants won by each worker.
    pub grants: Vec<u64>,
    /// Longest single acquire wait each worker observed.
    pub max_wait: Vec<Duration>,
    /// Exclusivity violations detected by the [`Ledger`].
    pub violations: u64,
}

impl SaturatedReport {
    /// Total grants across all workers.
    #[must_use]
    pub fn total_grants(&self) -> u64 {
        self.grants.iter().sum()
    }
}

/// Independent audit of grant exclusivity.
///
/// The ledger mirrors every claim and vacate in its own atomic array,
/// *outside* the broker under test: if a broken broker ever grants one
/// resource to two holders, the second [`Ledger::claim`] finds the slot
/// occupied and counts a violation instead of trusting the broker's own
/// bookkeeping.
#[derive(Debug)]
pub struct Ledger {
    slots: Vec<AtomicU64>,
    violations: AtomicU64,
}

impl Ledger {
    /// A ledger for `resources` slots, all vacant.
    #[must_use]
    pub fn new(resources: usize) -> Self {
        Ledger {
            slots: (0..resources).map(|_| AtomicU64::new(VACANT)).collect(),
            violations: AtomicU64::new(0),
        }
    }

    /// Records that `who` was granted `resource`.
    pub fn claim(&self, resource: usize, who: WorkerId) {
        if self.slots[resource]
            .compare_exchange(VACANT, who as u64, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records that `who` released `resource`.
    pub fn vacate(&self, resource: usize, who: WorkerId) {
        if self.slots[resource]
            .compare_exchange(who as u64, VACANT, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Violations observed so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Slots currently marked held.
    #[must_use]
    pub fn held(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != VACANT)
            .count()
    }
}

/// A grant awaiting its service-completion release.
#[derive(Debug)]
struct PendingRelease {
    due: Instant,
    who: WorkerId,
    grant: BrokerGrant,
}

impl PartialEq for PendingRelease {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.who == other.who
    }
}
impl Eq for PendingRelease {}
impl PartialOrd for PendingRelease {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingRelease {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.who).cmp(&(other.due, other.who))
    }
}

/// The reaper's shared queue of pending releases.
#[derive(Debug, Default)]
struct ReaperQueue {
    heap: BinaryHeap<Reverse<PendingRelease>>,
    closed: bool,
}

/// Release scheduler shared between the workers (producers) and the
/// reaper thread (consumer).
#[derive(Debug, Default)]
struct Reaper {
    queue: Mutex<ReaperQueue>,
    wake: Condvar,
}

impl Reaper {
    fn push(&self, due: Instant, who: WorkerId, grant: BrokerGrant) {
        let mut q = self.queue.lock().expect("reaper lock");
        q.heap.push(Reverse(PendingRelease { due, who, grant }));
        self.wake.notify_one();
    }

    fn close(&self) {
        self.queue.lock().expect("reaper lock").closed = true;
        self.wake.notify_one();
    }

    /// Runs until closed *and* drained, releasing each grant at its due
    /// instant (immediately once closed — the run is over).
    fn run<B: Broker + ?Sized>(&self, broker: &B, ledger: &Ledger) {
        let mut q = self.queue.lock().expect("reaper lock");
        loop {
            let now = Instant::now();
            match q.heap.peek() {
                Some(Reverse(top)) if top.due <= now || q.closed => {
                    let Reverse(p) = q.heap.pop().expect("peeked");
                    drop(q);
                    ledger.vacate(p.grant.resource, p.who);
                    broker.release(p.who, p.grant);
                    q = self.queue.lock().expect("reaper lock");
                }
                Some(Reverse(top)) => {
                    let wait = top.due - now;
                    if wait > SPIN_WINDOW {
                        let (guard, _) = self
                            .wake
                            .wait_timeout(q, wait - SPIN_WINDOW)
                            .expect("reaper lock");
                        q = guard;
                    } else {
                        let due = top.due;
                        drop(q);
                        sleep_until(due);
                        q = self.queue.lock().expect("reaper lock");
                    }
                }
                None if q.closed => return,
                None => q = self.wake.wait(q).expect("reaper lock"),
            }
        }
    }
}

/// One worker thread: replays its arrival schedule against the broker.
fn drive_worker<B: Broker + ?Sized>(
    broker: &B,
    ledger: &Ledger,
    reaper: &Reaper,
    ctl: &RunControl,
    cfg: &LoadConfig,
    epoch: Instant,
    who: WorkerId,
) -> WorkerShard {
    let mut rng = SimRng::new(cfg.seed).derive(who as u64);
    let mut shard = WorkerShard::new(cfg);
    let horizon = cfg.warmup + cfg.duration;
    let mut t = 0.0_f64;
    loop {
        t += rng.exponential(cfg.lambda);
        if t >= horizon {
            break;
        }
        let measured = t >= cfg.warmup;
        if measured {
            shard.offered += 1;
        }
        let scheduled = epoch + cfg.wall_after(t);
        sleep_until(scheduled);
        let Some(grant) = broker.acquire(who, ctl) else {
            shard.abandoned += 1;
            break;
        };
        let waited = Instant::now().saturating_duration_since(scheduled);
        ledger.claim(grant.resource, who);
        shard.grants += 1;
        if measured {
            let d = waited.as_secs_f64() / cfg.scale_secs();
            shard.delay.push(d);
            shard.hist.record(d);
        }
        if let Some(mu_n) = cfg.mu_n {
            let tx = rng.exponential(mu_n);
            sleep_until(Instant::now() + cfg.wall_after(tx));
        }
        broker.end_transmission(who, grant);
        let svc = rng.exponential(cfg.mu_s);
        reaper.push(Instant::now() + cfg.wall_after(svc), who, grant);
    }
    shard
}

/// Drives `broker` with open-loop Poisson traffic from one thread per
/// worker, returning merged delay statistics.
///
/// The run is self-limiting: once the schedule horizon plus
/// [`LoadConfig::drain`] has elapsed on the wall clock, the shared
/// [`RunControl`] is stopped and any still-blocked acquire unwinds as an
/// abandonment — a hung broker fails the run's assertions instead of
/// hanging the process.
///
/// # Panics
///
/// Panics if a worker thread panics (e.g. a broker protocol assertion
/// fires) or if the config's rates are not positive.
pub fn run_load<B: Broker + ?Sized>(broker: &B, cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.lambda > 0.0, "arrival rate must be positive");
    assert!(cfg.mu_s > 0.0, "service rate must be positive");
    assert!(cfg.scale_us > 0.0, "time scale must be positive");
    let workers = broker.workers();
    let ledger = Ledger::new(broker.resources());
    let reaper = Reaper::default();
    let ctl = RunControl::new();
    let epoch = Instant::now() + Duration::from_millis(10);
    let deadline = epoch + cfg.wall_after(cfg.warmup + cfg.duration + cfg.drain);

    let mut shards: Vec<Option<WorkerShard>> = (0..workers).map(|_| None).collect();
    std::thread::scope(|s| {
        let reaper_handle = s.spawn(|| reaper.run(broker, &ledger));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ledger, reaper, ctl, cfg) = (&ledger, &reaper, &ctl, &cfg);
                s.spawn(move || drive_worker(broker, ledger, reaper, ctl, cfg, epoch, w))
            })
            .collect();
        sleep_until(deadline);
        ctl.stop();
        for (w, h) in handles.into_iter().enumerate() {
            shards[w] = Some(h.join().expect("worker panicked"));
        }
        reaper.close();
        reaper_handle.join().expect("reaper panicked");
    });

    let shards: Vec<WorkerShard> = shards.into_iter().map(|s| s.expect("joined")).collect();
    let mut delay = Welford::new();
    let mut hist = Histogram::new(cfg.hist_bins, cfg.hist_upper);
    let (mut grants, mut offered, mut abandoned) = (0, 0, 0);
    for s in &shards {
        delay.merge(&s.delay);
        hist.merge(&s.hist);
        grants += s.grants;
        offered += s.offered;
        abandoned += s.abandoned;
    }
    LoadReport {
        delay,
        hist,
        grants,
        offered,
        abandoned,
        violations: ledger.violations(),
        shards,
    }
}

/// Drives `broker` at saturation: every worker loops acquire → hold →
/// release with zero think time for `run_for`, then the run is stopped.
///
/// The per-worker grant counts and worst-case waits are what the fairness
/// regression asserts on: fixed-priority arbitration starves the
/// highest-index worker here, token rotation does not.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_saturated<B: Broker + ?Sized>(
    broker: &B,
    hold: Duration,
    run_for: Duration,
) -> SaturatedReport {
    let workers = broker.workers();
    let ledger = Ledger::new(broker.resources());
    let ctl = RunControl::new();
    let mut grants = vec![0u64; workers];
    let mut max_wait = vec![Duration::ZERO; workers];

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ledger, ctl) = (&ledger, &ctl);
                s.spawn(move || {
                    let mut won = 0u64;
                    let mut worst = Duration::ZERO;
                    loop {
                        let started = Instant::now();
                        let Some(grant) = broker.acquire(w, ctl) else {
                            break;
                        };
                        worst = worst.max(started.elapsed());
                        ledger.claim(grant.resource, w);
                        won += 1;
                        std::thread::sleep(hold);
                        broker.end_transmission(w, grant);
                        ledger.vacate(grant.resource, w);
                        broker.release(w, grant);
                    }
                    (won, worst)
                })
            })
            .collect();
        std::thread::sleep(run_for);
        ctl.stop();
        for (w, h) in handles.into_iter().enumerate() {
            let (won, worst) = h.join().expect("worker panicked");
            grants[w] = won;
            max_wait[w] = worst;
        }
    });

    SaturatedReport {
        grants,
        max_wait,
        violations: ledger.violations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{XbarBroker, XbarPolicy};

    #[test]
    fn ledger_counts_double_claims_and_foreign_vacates() {
        let l = Ledger::new(2);
        l.claim(0, 3);
        assert_eq!(l.held(), 1);
        l.claim(0, 4); // double grant
        assert_eq!(l.violations(), 1);
        l.vacate(0, 5); // not the holder
        assert_eq!(l.violations(), 2);
        l.vacate(0, 3);
        assert_eq!(l.held(), 0);
        assert_eq!(l.violations(), 2);
    }

    #[test]
    fn sleep_until_is_accurate_to_the_spin_window() {
        let target = Instant::now() + Duration::from_millis(5);
        sleep_until(target);
        let over = Instant::now().saturating_duration_since(target);
        assert!(over < Duration::from_millis(2), "overshot by {over:?}");
    }

    #[test]
    fn load_run_is_audited_and_self_limiting() {
        let broker = XbarBroker::new(2, 2, XbarPolicy::TokenRotation);
        let mut cfg = LoadConfig::new(0.4, 2.0);
        cfg.scale_us = 500.0;
        cfg.warmup = 10.0;
        cfg.duration = 60.0;
        let report = run_load(&broker, &cfg);
        assert_eq!(report.violations, 0);
        assert_eq!(report.abandoned, 0, "light load must drain fully");
        assert_eq!(report.measured(), report.offered);
        assert!(report.measured() > 0, "some tasks must be measured");
        assert!(report.mean_delay() >= 0.0);
        assert_eq!(report.hist.count(), report.measured());
        assert_eq!(report.shards.len(), 2);
    }

    #[test]
    fn saturated_run_counts_every_worker() {
        let broker = XbarBroker::new(3, 1, XbarPolicy::TokenRotation);
        let report = run_saturated(
            &broker,
            Duration::from_micros(300),
            Duration::from_millis(120),
        );
        assert_eq!(report.violations, 0);
        assert!(report.total_grants() > 10, "saturation must make progress");
    }
}
