//! Generation-tagged lease words: the crash-tolerance primitive behind
//! every grant in this crate.
//!
//! A plain claim word (`VACANT` or the holder's id) cannot survive a
//! crashed holder: whoever reclaims the slot races the holder's own
//! late release, and a bare CAS on the owner id is ABA-prone — the slot
//! could have been reclaimed *and re-granted* between the holder's claim
//! and its release. A [`LeaseWord`] closes both holes by packing three
//! fields into one atomic word:
//!
//! ```text
//!   63            32 31      24 23            0
//!   +---------------+----------+---------------+
//!   |  generation   |  flags   |     owner     |
//!   +---------------+----------+---------------+
//! ```
//!
//! - **generation** increments on *every* ownership transition, so any
//!   CAS keyed on the full word is immune to ABA: a grant is a
//!   `(resource, generation)` pair, and a release or reclaim with a stale
//!   generation fails instead of corrupting a newer grant.
//! - **owner** is either a real [`WorkerId`] or one of three sentinels:
//!   [`NO_OWNER`] (claimable), [`FAULTED`] (taken out of service by a
//!   fault schedule), or [`RECLAIMING`] (mid-reclaim — unclaimable, so
//!   the reclaimer can update external bookkeeping such as the audit
//!   [`Ledger`](crate::loadgen::Ledger) before the slot becomes
//!   grantable again; without this intermediate state a new claimant
//!   could re-grant the slot *before* the reclaimer records the old
//!   grant's end, and the audit would count a phantom double grant).
//! - **flags** currently hold one bit, `PENDING_FAULT`: a fault event
//!   that strikes a *held* slot cannot take it away from the holder
//!   mid-service, so the fault is parked in the word itself and applied
//!   by whichever release/reclaim vacates the slot. Keeping the bit in
//!   the same word as the owner makes "vacate to FAULTED instead of
//!   NO_OWNER" a single atomic decision — there is no window in which a
//!   repair and a release can disagree about the slot's fate.
//!
//! Each word is paired with a **deadline** (microseconds on the owning
//! broker's [`LeaseClock`]): the claimant stores `now + lease` around its
//! claim CAS, and a supervisor reclaims any slot whose deadline has
//! passed. Two claimants may race their deadline stores, but both compute
//! `now + lease` from the same clock within scheduler jitter of each
//! other, and only the CAS winner's grant exists — the deadline is
//! approximate by design and the generation CAS is what carries the
//! safety argument. A broker built without leases stores [`NEVER`] and is
//! never reclaimed, preserving the pre-lease semantics (and cost) of the
//! protocols on the fault-free path.
//!
//! ## Memory ordering
//!
//! Ownership transitions are `AcqRel` CASes on the word, exactly like the
//! plain claim words they replace: a claimant's `Acquire` pairs with the
//! vacating `Release`, so whatever the previous holder wrote while
//! holding the resource is visible to the next. Deadline stores are
//! `Release`/`Acquire` around the word CAS; they influence only *when*
//! a reclaim is attempted, never whether it is safe — safety is the
//! generation CAS alone.

use crate::WorkerId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Owner sentinel: the slot is vacant and claimable.
pub const NO_OWNER: u32 = 0x00FF_FFFF;
/// Owner sentinel: the slot is out of service (a fault schedule holds it).
pub const FAULTED: u32 = 0x00FF_FFFE;
/// Owner sentinel: a reclaim or audited release is in progress; the slot
/// is not claimable until it completes.
pub const RECLAIMING: u32 = 0x00FF_FFFD;
/// Real worker ids must stay below every sentinel.
pub const MAX_OWNER: u32 = 0x00FF_F000;

/// Deadline sentinel: the lease never expires (leases disabled).
pub const NEVER: u64 = u64::MAX;

const OWNER_MASK: u64 = 0x00FF_FFFF;
const PENDING_FAULT: u64 = 1 << 24;

#[inline]
fn pack(generation: u32, flags: u64, owner: u32) -> u64 {
    (u64::from(generation) << 32) | flags | u64::from(owner)
}

/// Generation field of a packed lease word.
#[inline]
#[must_use]
pub fn generation_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Owner field of a packed lease word.
#[inline]
#[must_use]
pub fn owner_of(word: u64) -> u32 {
    (word & OWNER_MASK) as u32
}

/// Whether the packed word carries a parked fault.
#[inline]
#[must_use]
pub fn fault_pending(word: u64) -> bool {
    word & PENDING_FAULT != 0
}

/// Whether the owner field is a real worker (not a sentinel).
#[inline]
#[must_use]
pub fn is_held(word: u64) -> bool {
    owner_of(word) < MAX_OWNER
}

/// Monotonic clock of one broker: lease deadlines are microseconds on
/// this clock, so they fit an atomic word without `Instant` gymnastics.
#[derive(Debug)]
pub struct LeaseClock {
    epoch: Instant,
    lease_us: u64,
}

impl LeaseClock {
    /// A clock whose leases last `lease`; `None` disables expiry.
    #[must_use]
    pub fn new(lease: Option<Duration>) -> Self {
        LeaseClock {
            epoch: Instant::now(),
            lease_us: lease.map_or(NEVER, |d| {
                u64::try_from(d.as_micros()).unwrap_or(NEVER).max(1)
            }),
        }
    }

    /// Microseconds elapsed since the broker was built.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(NEVER)
    }

    /// The deadline a claim made right now should carry.
    #[must_use]
    pub fn deadline_from_now(&self) -> u64 {
        if self.lease_us == NEVER {
            NEVER
        } else {
            self.now_us().saturating_add(self.lease_us)
        }
    }

    /// Whether leases can expire at all.
    #[must_use]
    pub fn leases_expire(&self) -> bool {
        self.lease_us != NEVER
    }

    /// The lease duration in microseconds ([`NEVER`] when disabled).
    #[must_use]
    pub fn lease_us(&self) -> u64 {
        self.lease_us
    }
}

/// Outcome of [`LeaseWord::begin_unclaim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnclaimStart {
    /// The caller owns the `RECLAIMING` phase and must call
    /// [`LeaseWord::finish_unclaim`].
    Begun,
    /// The grant's generation is stale — the slot was already reclaimed
    /// (and possibly re-granted). Nothing to do.
    Stale,
    /// Same generation, different owner: a forged or cross-worker release.
    /// Callers treat this as a protocol violation.
    Foreign,
}

/// Outcome of a completed release/reclaim, surfaced through
/// [`crate::ReleaseOutcome`] by the brokers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Vacated {
    /// The slot went to `FAULTED` (a parked fault applied) instead of
    /// `NO_OWNER`; SBUS must *not* return the slot's credit to the
    /// broadcast free count in that case.
    pub to_faulted: bool,
}

/// What [`LeaseWord::set_faulted`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The slot was vacant and is now `FAULTED`.
    WasVacant,
    /// The slot is held (or mid-reclaim); the fault was parked in the
    /// `PENDING_FAULT` bit and will apply when the slot vacates.
    Parked,
    /// The slot was already `FAULTED`.
    AlreadyFaulted,
}

/// What [`LeaseWord::clear_faulted`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The slot was `FAULTED` and is vacant again (SBUS must return its
    /// credit to the free count).
    Repaired,
    /// A parked fault was cancelled before it applied.
    Unparked,
    /// The slot was healthy; nothing changed.
    Nothing,
}

/// One generation-tagged claim word plus its lease deadline.
#[derive(Debug)]
pub struct LeaseWord {
    word: AtomicU64,
    deadline_us: AtomicU64,
}

impl Default for LeaseWord {
    fn default() -> Self {
        LeaseWord {
            word: AtomicU64::new(pack(0, 0, NO_OWNER)),
            deadline_us: AtomicU64::new(NEVER),
        }
    }
}

impl LeaseWord {
    /// A vacant, never-expiring word.
    #[must_use]
    pub fn new() -> Self {
        LeaseWord::default()
    }

    /// Raw packed word (decode with [`generation_of`] / [`owner_of`]).
    #[must_use]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// Current lease deadline in clock microseconds.
    #[must_use]
    pub fn deadline(&self) -> u64 {
        self.deadline_us.load(Ordering::Acquire)
    }

    /// Tries to claim a vacant slot for `who`, stamping `deadline_us`.
    /// Returns the generation the resulting grant must carry.
    pub fn try_claim(&self, who: WorkerId, deadline_us: u64) -> Option<u32> {
        debug_assert!(
            (who as u32) < MAX_OWNER,
            "worker id collides with sentinels"
        );
        let cur = self.word.load(Ordering::Acquire);
        if owner_of(cur) != NO_OWNER {
            return None;
        }
        // Stamp the deadline before publishing ownership so the reclaimer
        // can never observe the new owner with the previous grant's
        // (long-expired) deadline. A losing claimant's store merely
        // rewrites an equivalent `now + lease`.
        self.deadline_us.store(deadline_us, Ordering::Release);
        let gen = generation_of(cur).wrapping_add(1);
        let next = pack(gen, 0, who as u32);
        if self
            .word
            .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.deadline_us.store(deadline_us, Ordering::Release);
            Some(gen)
        } else {
            None
        }
    }

    /// Extends the holder's lease (a heartbeat). Harmless when stale.
    pub fn renew(&self, deadline_us: u64) {
        self.deadline_us.store(deadline_us, Ordering::Release);
    }

    /// First phase of a release: move `(generation, who)` to
    /// `RECLAIMING` so external bookkeeping can run before the slot is
    /// claimable again.
    pub fn begin_unclaim(&self, who: WorkerId, generation: u32) -> UnclaimStart {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            if generation_of(cur) != generation {
                return UnclaimStart::Stale;
            }
            if owner_of(cur) != who as u32 {
                return UnclaimStart::Foreign;
            }
            let next = pack(generation.wrapping_add(1), cur & PENDING_FAULT, RECLAIMING);
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return UnclaimStart::Begun,
                Err(now) => cur = now,
            }
        }
    }

    /// First phase of a *reclaim*: if the slot is held and its lease has
    /// expired at `now_us`, move it to `RECLAIMING` and return the evicted
    /// holder. The caller must then call [`LeaseWord::finish_unclaim`].
    pub fn begin_reclaim(&self, now_us: u64) -> Option<WorkerId> {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            if !is_held(cur) {
                return None;
            }
            if self.deadline_us.load(Ordering::Acquire) > now_us {
                return None;
            }
            let owner = owner_of(cur);
            let next = pack(
                generation_of(cur).wrapping_add(1),
                cur & PENDING_FAULT,
                RECLAIMING,
            );
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(owner as WorkerId),
                Err(now) => cur = now,
            }
        }
    }

    /// Second phase: vacate the `RECLAIMING` slot, applying a parked
    /// fault if one arrived at any point before this instant.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the `RECLAIMING` state — only the
    /// thread that won `begin_unclaim`/`begin_reclaim` may call this.
    pub fn finish_unclaim(&self) -> Vacated {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            assert_eq!(
                owner_of(cur),
                RECLAIMING,
                "finish_unclaim without owning the reclaim phase"
            );
            let to_faulted = fault_pending(cur);
            let owner = if to_faulted { FAULTED } else { NO_OWNER };
            let next = pack(generation_of(cur).wrapping_add(1), 0, owner);
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Vacated { to_faulted },
                Err(now) => cur = now,
            }
        }
    }

    /// Applies a fault event: vacant slots go straight to `FAULTED`;
    /// held (or mid-reclaim) slots get the fault parked in the word.
    pub fn set_faulted(&self) -> FaultOutcome {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let next = match owner_of(cur) {
                FAULTED => return FaultOutcome::AlreadyFaulted,
                NO_OWNER => pack(generation_of(cur).wrapping_add(1), 0, FAULTED),
                _ => {
                    if fault_pending(cur) {
                        return FaultOutcome::Parked;
                    }
                    cur | PENDING_FAULT
                }
            };
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    return if owner_of(cur) == NO_OWNER {
                        FaultOutcome::WasVacant
                    } else {
                        FaultOutcome::Parked
                    }
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Applies a repair event: un-faults the slot or cancels a parked
    /// fault, whichever is in effect.
    pub fn clear_faulted(&self) -> RepairOutcome {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (next, outcome) = match owner_of(cur) {
                FAULTED => (
                    pack(generation_of(cur).wrapping_add(1), 0, NO_OWNER),
                    RepairOutcome::Repaired,
                ),
                _ if fault_pending(cur) => (cur & !PENDING_FAULT, RepairOutcome::Unparked),
                _ => return RepairOutcome::Nothing,
            };
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return outcome,
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_release_round_trip_bumps_generations() {
        let w = LeaseWord::new();
        let g = w.try_claim(3, NEVER).expect("vacant");
        assert_eq!(owner_of(w.load()), 3);
        assert_eq!(w.try_claim(4, NEVER), None, "held slots refuse claims");
        assert_eq!(w.begin_unclaim(3, g), UnclaimStart::Begun);
        assert_eq!(owner_of(w.load()), RECLAIMING);
        assert_eq!(w.try_claim(4, NEVER), None, "RECLAIMING refuses claims");
        assert!(!w.finish_unclaim().to_faulted);
        assert_eq!(owner_of(w.load()), NO_OWNER);
        let g2 = w.try_claim(4, NEVER).expect("vacant again");
        assert!(g2 > g, "generation advances across the cycle");
        assert_eq!(w.begin_unclaim(4, g2), UnclaimStart::Begun);
        w.finish_unclaim();
    }

    #[test]
    fn stale_and_foreign_unclaims_are_distinguished() {
        let w = LeaseWord::new();
        let g = w.try_claim(1, NEVER).expect("vacant");
        assert_eq!(w.begin_unclaim(2, g), UnclaimStart::Foreign);
        // Reclaim (expired lease), then the holder's own release is stale.
        w.renew(0);
        assert_eq!(w.begin_reclaim(1), Some(1));
        w.finish_unclaim();
        assert_eq!(w.begin_unclaim(1, g), UnclaimStart::Stale);
    }

    #[test]
    fn reclaim_refuses_unexpired_and_vacant_slots() {
        let w = LeaseWord::new();
        assert_eq!(w.begin_reclaim(u64::MAX - 1), None, "vacant");
        let _g = w.try_claim(0, 1_000).expect("vacant");
        assert_eq!(w.begin_reclaim(999), None, "not yet expired");
        assert_eq!(w.begin_reclaim(1_000), Some(0), "expired at the deadline");
        w.finish_unclaim();
    }

    #[test]
    fn generation_cas_refuses_reclaim_after_legit_release() {
        // The poll-window race of the issue: the supervisor observed an
        // expired (gen, owner) pair, but the holder releases first. The
        // begin_reclaim retry re-reads the word and must find it vacant.
        let w = LeaseWord::new();
        let g = w.try_claim(5, 10).expect("vacant");
        assert_eq!(w.begin_unclaim(5, g), UnclaimStart::Begun);
        w.finish_unclaim();
        assert_eq!(w.begin_reclaim(u64::MAX - 1), None, "stale reclaim refused");
    }

    #[test]
    fn parked_fault_applies_on_whichever_vacate_runs() {
        let w = LeaseWord::new();
        let g = w.try_claim(2, NEVER).expect("vacant");
        assert_eq!(w.set_faulted(), FaultOutcome::Parked);
        assert_eq!(w.set_faulted(), FaultOutcome::Parked, "idempotent");
        assert_eq!(w.begin_unclaim(2, g), UnclaimStart::Begun);
        assert!(w.finish_unclaim().to_faulted, "fault applies at vacate");
        assert_eq!(owner_of(w.load()), FAULTED);
        assert_eq!(w.try_claim(0, NEVER), None, "FAULTED refuses claims");
        assert_eq!(w.clear_faulted(), RepairOutcome::Repaired);
        assert!(w.try_claim(0, NEVER).is_some());
    }

    #[test]
    fn fault_and_repair_on_vacant_and_healthy_slots() {
        let w = LeaseWord::new();
        assert_eq!(w.clear_faulted(), RepairOutcome::Nothing);
        assert_eq!(w.set_faulted(), FaultOutcome::WasVacant);
        assert_eq!(w.set_faulted(), FaultOutcome::AlreadyFaulted);
        assert_eq!(w.clear_faulted(), RepairOutcome::Repaired);
        let g = w.try_claim(1, NEVER).expect("vacant");
        assert_eq!(w.set_faulted(), FaultOutcome::Parked);
        assert_eq!(w.clear_faulted(), RepairOutcome::Unparked, "cancelled");
        assert_eq!(w.begin_unclaim(1, g), UnclaimStart::Begun);
        assert!(!w.finish_unclaim().to_faulted, "no fault left to apply");
    }

    #[test]
    fn clock_deadlines_respect_the_disabled_mode() {
        let never = LeaseClock::new(None);
        assert!(!never.leases_expire());
        assert_eq!(never.deadline_from_now(), NEVER);
        let short = LeaseClock::new(Some(Duration::from_millis(5)));
        assert!(short.leases_expire());
        let d = short.deadline_from_now();
        assert!((5_000..NEVER).contains(&d), "deadline {d} out of range");
    }
}
