//! Sharded many-core broker: per-shard arbiters over slot ranges, with
//! credit-gated overflow stealing and a hierarchical rotating steal token.
//!
//! A single arbiter — one status word, one request mask, one token — is a
//! serialization point: every acquire and release on every core contends
//! on the same cache lines. [`ShardedBroker`] partitions the resource pool
//! into `shards` contiguous slot ranges, each owned by an independent
//! sub-arbiter of the *same* discipline (its own status word, ticket
//! queue, request mask, token). Workers are pinned to a **home shard**
//! (`who % shards`), so on the common path a requester touches only its
//! home shard's arbitration state — disjoint cache lines per shard.
//!
//! ## Overflow stealing
//!
//! A requester whose home shard is exhausted probes the sibling shards for
//! a free slot. The steal is a two-step, bounded, lock-free protocol:
//!
//! 1. **Take a credit.** Each shard keeps a free-slot credit counter; a
//!    probe CAS-decrements it and walks away immediately if it reads zero.
//!    The credit is a *hint*, never a claim: it keeps probes of exhausted
//!    shards O(1) and off the victim's arbitration words, but correctness
//!    never depends on it (see *Credit discipline* below).
//! 2. **Claim through the victim's own arbiter.** The actual grant is the
//!    sub-arbiter's [`Broker::try_acquire`] — one bounded arbitration
//!    attempt through the same generation-tagged lease CAS every local
//!    grant uses. A thief therefore can never forge a grant or race a
//!    reclaim into an ABA: if the slot it was hinted at has been granted,
//!    reclaimed, or faulted meanwhile, the generation-tagged claim simply
//!    fails and the credit is refunded.
//!
//! Probes visit the siblings in rotating order starting from a shard-level
//! **steal token** (packed `generation << 32 | position`, advanced by each
//! successful thief to its victim's successor), so sustained overflow
//! spreads over all shards instead of always raiding shard 0.
//!
//! ## Credit discipline (hint semantics)
//!
//! The credit counter tracks "grantable slots in this shard" well enough
//! to gate probes, under one invariant: **transient understatement is
//! bounded and self-correcting, so probes always resume**. Flows:
//!
//! - acquire takes a credit before probing, refunds it if the arbiter
//!   attempt fails; a grant keeps the credit out until release.
//! - a live release ([`ReleaseOutcome::Released`]) refunds one credit; a
//!   stale release refunds nothing (the reclaimer's pass already did).
//! - `reclaim_expired` / `reclaim_all` refund one credit per reclaimed
//!   slot.
//! - faulting a resource consumes a credit best-effort (the hint stops
//!   advertising a slot the discipline will refuse to grant); repairing
//!   refunds it. Faulting a *held* slot transiently understates by one —
//!   repaired at the holder's release, exactly when the slot's fate
//!   (faulted, not grantable) is decided by the sub-arbiter.
//!
//! Parked faults can leave the counter *overstating* (a probe finds no
//! slot, fails, refunds — the hint stays optimistic). Overstatement only
//! costs wasted probes; understatement is the dangerous direction (it
//! would suppress probes of a shard that has capacity) and every flow
//! above refunds at least as many credits as the slots it frees.
//!
//! ## Cross-shard fairness (hierarchical token rotation)
//!
//! Fairness is two-level. *Within* a shard, every contender — local or
//! thief — arbitrates under the shard's own discipline: the SBUS ticket
//! queue serves in FIFO order and the crossbar token bounds each
//! requester's wait by one rotation, exactly as in the single-arbiter
//! broker. *Across* shards, the steal token rotates the probe origin so
//! no single shard absorbs all overflow, and a thief only enters a
//! sibling's arbitration after taking a credit — so thieves can never
//! oversubscribe a victim beyond its free capacity and starve its locals:
//! every credit a thief takes corresponds to a slot the locals were not
//! holding.
//!
//! Crucially, a blocking [`Broker::acquire`] does **not** bare-poll. It
//! makes one full probe round (home, then siblings), and if every shard
//! looks exhausted it takes a FIFO **camp ticket** on its home shard.
//! While campers queue on a shard, the shard's fast path is *gated off*:
//! every probe — local or thief — fails immediately, so the next slot the
//! shard frees can only go to the camper whose ticket is being served.
//! Without the gate the credits would bypass fairness entirely: on a busy
//! core a releasing neighbor re-probes in nanoseconds, so a worker backing
//! off on a 200 µs cap loses every race and starves outright (the
//! sub-disciplines cannot help — their own blocking paths snoop for free
//! capacity *before* taking a ticket, so a camper in an exhausted shard
//! holds no FIFO position there either). The serving camper keeps one
//! steal round per wake open — gated by the siblings' own camp queues —
//! so overflow capacity still reaches it. A requester's wait is therefore
//! bounded by the camp queue ahead of it, and each predecessor departs in
//! bounded time (granted as soon as the shard churns — which leases and
//! reclamation enforce even under client crashes — or drained on stop).
//!
//! ## Memory ordering
//!
//! Credits use `AcqRel` CAS / `Release` refunds so a probe that sees a
//! credit also sees the release that produced it (the refund
//! happens-after the sub-arbiter's own `Release` vacate, which the
//! generation-tagged claim acquires). The steal token is advisory probe
//! ordering only — `AcqRel` on the pass keeps positions monotonic, and a
//! stale read merely starts a probe round one shard early. All grant-
//! carrying synchronization stays inside the sub-arbiters' lease words;
//! the shard layer adds no new happens-before obligations to the grant
//! path itself.

use crate::{
    Broker, BrokerGrant, OmegaBroker, ReleaseOutcome, RunControl, SbusBroker, Waiter, WorkerId,
    XbarBroker, XbarPolicy,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One shard: a full-discipline sub-arbiter over a contiguous slot range,
/// plus its free-slot credit hint and the camp queue that makes waiting
/// fair (see the module docs' fairness section).
#[derive(Debug)]
struct Shard<B> {
    arbiter: B,
    credits: AtomicU64,
    /// Next camp ticket to hand out; `camp_next > camp_serving` means
    /// campers are waiting and the shard's fast path is gated off.
    camp_next: AtomicU64,
    /// The camp ticket currently being served.
    camp_serving: AtomicU64,
}

/// A broker sharded into per-core arbiters with overflow stealing. See the
/// [module docs](self) for the protocol.
///
/// The sub-arbiters are built by a factory over the **full worker set**
/// (worker ids are global, so any worker may arbitrate on any shard when
/// stealing) and a per-shard slot count; shard slot ranges are contiguous
/// and their sizes differ by at most one. Grants carry *global* resource
/// indices — the shard layer translates at every boundary, so the
/// exclusivity-audit [`Ledger`](crate::loadgen::Ledger) observes one flat
/// index space and stolen grants are audited exactly like local ones.
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, RunControl, ShardedBroker};
///
/// let broker = ShardedBroker::sbus(4, 4, 2);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(1, &ctl).expect("uncontended");
/// broker.end_transmission(1, grant);
/// broker.release(1, grant);
/// assert_eq!(broker.stolen_grants(), 0, "home shard had room");
/// ```
#[derive(Debug)]
pub struct ShardedBroker<B> {
    workers: usize,
    resources: usize,
    shards: Vec<Shard<B>>,
    /// `bases[s]` = first global slot index of shard `s`; `bases[shards]`
    /// = total, so a shard's range is `bases[s]..bases[s + 1]`.
    bases: Vec<usize>,
    /// Rotating origin of the steal probe order, packed
    /// `generation << 32 | position` like the crossbar token.
    steal_token: AtomicU64,
    local_grants: AtomicU64,
    stolen_grants: AtomicU64,
    steal_probes: AtomicU64,
}

impl<B: Broker> ShardedBroker<B> {
    /// Partitions `resources` slots into `shards` contiguous ranges (sizes
    /// differing by at most one) and builds one sub-arbiter per range via
    /// `make(workers, shard_slots)`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `shards` is zero, if `resources < shards`
    /// (every shard needs at least one slot), or if the factory returns an
    /// arbiter with the wrong worker or slot count.
    pub fn new(
        workers: usize,
        resources: usize,
        shards: usize,
        mut make: impl FnMut(usize, usize) -> B,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(shards > 0, "need at least one shard");
        assert!(
            resources >= shards,
            "every shard needs at least one resource ({resources} < {shards})"
        );
        let mut bases = Vec::with_capacity(shards + 1);
        let mut built = Vec::with_capacity(shards);
        let mut base = 0usize;
        for s in 0..shards {
            bases.push(base);
            let size = resources / shards + usize::from(s < resources % shards);
            let arbiter = make(workers, size);
            assert_eq!(
                arbiter.workers(),
                workers,
                "factory must build over the full worker set"
            );
            assert_eq!(
                arbiter.resources(),
                size,
                "factory must honor the shard's slot count"
            );
            built.push(Shard {
                arbiter,
                credits: AtomicU64::new(size as u64),
                camp_next: AtomicU64::new(0),
                camp_serving: AtomicU64::new(0),
            });
            base += size;
        }
        bases.push(base);
        debug_assert_eq!(base, resources);
        ShardedBroker {
            workers,
            resources,
            shards: built,
            bases,
            steal_token: AtomicU64::new(0),
            local_grants: AtomicU64::new(0),
            stolen_grants: AtomicU64::new(0),
            steal_probes: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard worker `who` is pinned to on the fast path.
    #[must_use]
    pub fn home_shard(&self, who: WorkerId) -> usize {
        who % self.shards.len()
    }

    /// The shard owning global slot `resource`.
    #[must_use]
    pub fn shard_of_resource(&self, resource: usize) -> usize {
        debug_assert!(resource < self.resources, "resource out of range");
        self.bases.partition_point(|&b| b <= resource) - 1
    }

    /// Grants served from the requester's home shard.
    #[must_use]
    pub fn local_grants(&self) -> u64 {
        self.local_grants.load(Ordering::Relaxed)
    }

    /// Grants served by stealing from a sibling shard.
    #[must_use]
    pub fn stolen_grants(&self) -> u64 {
        self.stolen_grants.load(Ordering::Relaxed)
    }

    /// Sibling-shard probe attempts (successful or not).
    #[must_use]
    pub fn steal_probes(&self) -> u64 {
        self.steal_probes.load(Ordering::Relaxed)
    }

    /// Current steal-token position (the probe-order origin).
    #[must_use]
    pub fn steal_token_position(&self) -> usize {
        (self.steal_token.load(Ordering::Acquire) as u32) as usize % self.shards.len()
    }

    /// Number of times the steal token has been passed.
    #[must_use]
    pub fn steal_token_generation(&self) -> u32 {
        (self.steal_token.load(Ordering::Acquire) >> 32) as u32
    }

    /// Current credit reading of `shard` (a hint; see the module docs).
    #[must_use]
    pub fn shard_credits(&self, shard: usize) -> u64 {
        self.shards[shard].credits.load(Ordering::Acquire)
    }

    /// CAS-decrements `shard`'s credit counter; `false` means the shard
    /// advertises no free slot and the probe should walk away.
    fn take_credit(&self, shard: usize) -> bool {
        let credits = &self.shards[shard].credits;
        let mut c = credits.load(Ordering::Acquire);
        while c > 0 {
            match credits.compare_exchange_weak(c, c - 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(now) => c = now,
            }
        }
        false
    }

    fn refund_credit(&self, shard: usize) {
        self.shards[shard].credits.fetch_add(1, Ordering::Release);
    }

    /// Advances the steal token to the victim's successor.
    fn pass_steal_token(&self, victim: usize) {
        let n = self.shards.len() as u64;
        let next = (victim as u64 + 1) % n;
        let _ = self
            .steal_token
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                let generation = (t >> 32).wrapping_add(1);
                Some((generation << 32) | next)
            });
    }

    /// Whether `shard` has campers queued for its next free slot. While it
    /// does, the shard's fast path is gated off so freed capacity reaches
    /// the oldest camper instead of whichever prober is hottest.
    fn campers_waiting(&self, shard: usize) -> bool {
        let s = &self.shards[shard];
        s.camp_next.load(Ordering::Acquire) > s.camp_serving.load(Ordering::Acquire)
    }

    /// Credit-gated probe of one shard; a grant comes back globalized.
    /// Fails immediately while campers queue on the shard — only the
    /// serving camper may probe past the gate (via
    /// [`Self::try_shard_ungated`]).
    fn try_shard(&self, shard: usize, who: WorkerId) -> Option<BrokerGrant> {
        if self.campers_waiting(shard) {
            return None;
        }
        self.try_shard_ungated(shard, who)
    }

    /// The probe itself, without the camper gate.
    fn try_shard_ungated(&self, shard: usize, who: WorkerId) -> Option<BrokerGrant> {
        if !self.take_credit(shard) {
            return None;
        }
        match self.shards[shard].arbiter.try_acquire(who) {
            Some(g) => Some(BrokerGrant {
                resource: self.bases[shard] + g.resource,
                generation: g.generation,
            }),
            None => {
                self.refund_credit(shard);
                None
            }
        }
    }

    /// One full grant round: home shard first, then the siblings in
    /// rotating order from the steal token.
    fn try_grant(&self, who: WorkerId) -> Option<BrokerGrant> {
        let home = self.home_shard(who);
        if let Some(g) = self.try_shard(home, who) {
            self.local_grants.fetch_add(1, Ordering::Relaxed);
            return Some(g);
        }
        self.try_steal_round(who, home)
    }

    /// Probes every sibling of `home` once, in rotating order from the
    /// steal token, passing the token on a successful steal.
    fn try_steal_round(&self, who: WorkerId, home: usize) -> Option<BrokerGrant> {
        let n = self.shards.len();
        let origin = self.steal_token_position();
        for k in 0..n {
            let victim = (origin + k) % n;
            if victim == home {
                continue;
            }
            self.steal_probes.fetch_add(1, Ordering::Relaxed);
            if let Some(g) = self.try_shard(victim, who) {
                self.stolen_grants.fetch_add(1, Ordering::Relaxed);
                self.pass_steal_token(victim);
                return Some(g);
            }
        }
        None
    }

    /// Splits a global grant into its owning shard and the shard-local
    /// grant the sub-arbiter understands.
    fn localize(&self, grant: BrokerGrant) -> (usize, BrokerGrant) {
        let shard = self.shard_of_resource(grant.resource);
        (
            shard,
            BrokerGrant {
                resource: grant.resource - self.bases[shard],
                generation: grant.generation,
            },
        )
    }
}

impl ShardedBroker<SbusBroker> {
    /// Sharded shared-bus broker: each shard is its own bus cluster (status
    /// word, ticket queue, bus lease) over its slot range, with
    /// non-expiring leases.
    #[must_use]
    pub fn sbus(workers: usize, resources: usize, shards: usize) -> Self {
        Self::new(workers, resources, shards, SbusBroker::new)
    }

    /// Sharded shared-bus broker with expiring leases.
    #[must_use]
    pub fn sbus_with_lease(
        workers: usize,
        resources: usize,
        shards: usize,
        lease: Duration,
    ) -> Self {
        Self::new(workers, resources, shards, |w, r| {
            SbusBroker::with_lease(w, r, lease)
        })
    }
}

impl ShardedBroker<XbarBroker> {
    /// Sharded crossbar broker: each shard arbitrates its own column range
    /// with its own request mask and token, with non-expiring leases.
    #[must_use]
    pub fn xbar(workers: usize, resources: usize, shards: usize, policy: XbarPolicy) -> Self {
        Self::new(workers, resources, shards, |w, r| {
            XbarBroker::new(w, r, policy)
        })
    }

    /// Sharded crossbar broker with expiring leases.
    #[must_use]
    pub fn xbar_with_lease(
        workers: usize,
        resources: usize,
        shards: usize,
        policy: XbarPolicy,
        lease: Duration,
    ) -> Self {
        Self::new(workers, resources, shards, |w, r| {
            XbarBroker::with_lease(w, r, policy, lease)
        })
    }
}

impl ShardedBroker<OmegaBroker> {
    /// Sharded Omega broker: each shard routes through its own fabric to
    /// its destination-port range, with non-expiring leases.
    #[must_use]
    pub fn omega(workers: usize, resources: usize, shards: usize) -> Self {
        Self::new(workers, resources, shards, OmegaBroker::new)
    }

    /// Sharded Omega broker with expiring leases.
    #[must_use]
    pub fn omega_with_lease(
        workers: usize,
        resources: usize,
        shards: usize,
        lease: Duration,
    ) -> Self {
        Self::new(workers, resources, shards, |w, r| {
            OmegaBroker::with_lease(w, r, lease)
        })
    }
}

impl<B: Broker> Broker for ShardedBroker<B> {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.resources
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        if ctl.is_stopped() {
            return None;
        }
        // Fast path: one full probe round — home shard, then the siblings
        // in steal-token order.
        if let Some(grant) = self.try_grant(who) {
            return Some(grant);
        }
        // Every shard looked exhausted: camp on the home shard. Taking the
        // ticket closes the shard's fast-path gate, so the next slot it
        // frees belongs to the oldest camper — a bare polling loop would
        // lose every race to a releasing neighbor that re-probes in
        // nanoseconds while we back off in microseconds.
        let home = self.home_shard(who);
        let shard = &self.shards[home];
        let ticket = shard.camp_next.fetch_add(1, Ordering::AcqRel);
        let mut far = Waiter::new();
        loop {
            let serving = shard.camp_serving.load(Ordering::Acquire);
            if serving == ticket {
                break;
            }
            // Predecessors always advance (granted, or drained on stop),
            // so this wait is bounded by the queue ahead. Campers near the
            // head stay off the sleep tier: the handoff chain must not
            // stall for a 200 µs timer while a freed slot idles. Distant
            // campers sleep freely — their bounded wake finds them near
            // the head by the time the queue reaches them.
            if ticket - serving <= 2 {
                std::thread::yield_now();
            } else {
                far.wait();
            }
        }
        let mut rounds = 0u32;
        loop {
            if ctl.is_stopped() {
                shard.camp_serving.fetch_add(1, Ordering::AcqRel);
                return None;
            }
            if let Some(g) = self.try_shard_ungated(home, who) {
                shard.camp_serving.fetch_add(1, Ordering::AcqRel);
                self.local_grants.fetch_add(1, Ordering::Relaxed);
                return Some(g);
            }
            // A sibling may free capacity before home does; the steal
            // round stays gated by the siblings' own camp queues.
            if let Some(g) = self.try_steal_round(who, home) {
                shard.camp_serving.fetch_add(1, Ordering::AcqRel);
                return Some(g);
            }
            // The serving camper never sleeps: it is the handoff target
            // for the next freed slot, so it polls at scheduler latency —
            // one yield-looping thread per camped shard, and only while
            // the shard is camped, is the bounded cost.
            rounds = rounds.saturating_add(1);
            if rounds <= 16 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn try_acquire(&self, who: WorkerId) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        self.try_grant(who)
    }

    fn end_transmission(&self, who: WorkerId, grant: BrokerGrant) {
        let (shard, local) = self.localize(grant);
        self.shards[shard].arbiter.end_transmission(who, local);
    }

    fn release_audited(
        &self,
        who: WorkerId,
        grant: BrokerGrant,
        audit: &mut dyn FnMut(usize, WorkerId),
    ) -> ReleaseOutcome {
        let (shard, local) = self.localize(grant);
        let base = self.bases[shard];
        let outcome = self.shards[shard]
            .arbiter
            .release_audited(who, local, &mut |r, w| audit(base + r, w));
        if outcome == ReleaseOutcome::Released {
            self.refund_credit(shard);
        }
        outcome
    }

    fn reclaim_expired(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        let mut total = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            let base = self.bases[s];
            let n = shard
                .arbiter
                .reclaim_expired(&mut |r, w| audit(base + r, w));
            if n > 0 {
                shard.credits.fetch_add(n as u64, Ordering::Release);
            }
            total += n;
        }
        total
    }

    fn reclaim_all(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        let mut total = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            let base = self.bases[s];
            let n = shard.arbiter.reclaim_all(&mut |r, w| audit(base + r, w));
            if n > 0 {
                shard.credits.fetch_add(n as u64, Ordering::Release);
            }
            total += n;
        }
        total
    }

    fn set_resource_faulted(&self, resource: usize, down: bool) {
        let shard = self.shard_of_resource(resource);
        let local = resource - self.bases[shard];
        if down {
            // Consume the slot's credit best-effort so the hint stops
            // advertising it; on a held slot the credit is already out and
            // this transiently understates by one until the release (see
            // the module docs' credit discipline).
            let _ = self.take_credit(shard);
            self.shards[shard].arbiter.set_resource_faulted(local, true);
        } else {
            self.shards[shard]
                .arbiter
                .set_resource_faulted(local, false);
            self.refund_credit(shard);
        }
    }

    fn available_resources(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.arbiter.available_resources())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_slots_contiguously_with_near_equal_sizes() {
        let b = ShardedBroker::xbar(4, 7, 3, XbarPolicy::TokenRotation);
        assert_eq!(b.shard_count(), 3);
        assert_eq!(b.resources(), 7);
        assert_eq!(b.bases, vec![0, 3, 5, 7], "3 + 2 + 2 covering 7");
        for r in 0..7 {
            let s = b.shard_of_resource(r);
            assert!(b.bases[s] <= r && r < b.bases[s + 1]);
        }
        assert_eq!(b.shard_credits(0), 3);
        assert_eq!(b.shard_credits(2), 2);
        assert_eq!(b.available_resources(), 7);
    }

    #[test]
    fn home_grants_stay_on_the_home_shard() {
        let b = ShardedBroker::xbar(4, 4, 2, XbarPolicy::TokenRotation);
        let ctl = RunControl::new();
        let grants: Vec<_> = (0..4)
            .map(|w| b.acquire(w, &ctl).expect("capacity for all"))
            .collect();
        let mut slots: Vec<_> = grants.iter().map(|g| g.resource).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 4, "distinct global slots");
        for (w, g) in grants.iter().enumerate() {
            assert_eq!(
                b.shard_of_resource(g.resource),
                b.home_shard(w),
                "no steal needed with balanced load"
            );
        }
        assert_eq!(b.local_grants(), 4);
        assert_eq!(b.stolen_grants(), 0);
        for (w, g) in grants.into_iter().enumerate() {
            b.release(w, g);
        }
        assert_eq!(b.shard_credits(0), 2);
        assert_eq!(b.shard_credits(1), 2);
        assert_eq!(b.available_resources(), 4);
    }

    #[test]
    fn exhausted_home_shard_steals_from_a_sibling() {
        // Workers 0 and 2 both map to home shard 0, which holds one slot.
        let b = ShardedBroker::sbus(4, 2, 2);
        let ctl = RunControl::new();
        let g0 = b.acquire(0, &ctl).expect("home slot free");
        b.end_transmission(0, g0);
        assert_eq!(b.shard_of_resource(g0.resource), 0);
        let g2 = b.acquire(2, &ctl).expect("steals the sibling's slot");
        b.end_transmission(2, g2);
        assert_eq!(b.shard_of_resource(g2.resource), 1, "served by shard 1");
        assert_eq!(b.stolen_grants(), 1);
        assert!(b.steal_probes() >= 1);
        assert_eq!(
            b.steal_token_position(),
            0,
            "token passed to the victim's successor (wrapping)"
        );
        assert_eq!(b.steal_token_generation(), 1);
        b.release(0, g0);
        b.release(2, g2);
        assert_eq!(b.available_resources(), 2);
        assert_eq!(b.shard_credits(0) + b.shard_credits(1), 2);
    }

    #[test]
    fn saturation_blocks_and_stop_unblocks_without_leaking_credits() {
        let b = ShardedBroker::xbar(4, 2, 2, XbarPolicy::TokenRotation);
        let ctl = RunControl::new();
        let g0 = b.acquire(0, &ctl).expect("free");
        let g1 = b.acquire(1, &ctl).expect("free");
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(2, &ctl));
            std::thread::sleep(Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block at saturation");
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        assert_eq!(b.shard_credits(0) + b.shard_credits(1), 0, "both out");
        b.release(0, g0);
        b.release(1, g1);
        assert_eq!(b.shard_credits(0) + b.shard_credits(1), 2, "both back");
    }

    #[test]
    fn release_and_audit_report_global_indices() {
        let b = ShardedBroker::omega(4, 4, 2);
        let ctl = RunControl::new();
        // Worker 1's home is shard 1 (slots 2..4).
        let g = b.acquire(1, &ctl).expect("free");
        assert!(g.resource >= 2, "grant carries the global index");
        b.end_transmission(1, g);
        let mut audited = Vec::new();
        let outcome = b.release_audited(1, g, &mut |r, w| audited.push((r, w)));
        assert_eq!(outcome, ReleaseOutcome::Released);
        assert_eq!(audited, vec![(g.resource, 1)], "audit sees global index");
    }

    #[test]
    fn reclaim_translates_indices_and_refunds_credits() {
        let b = ShardedBroker::sbus_with_lease(4, 4, 2, Duration::from_micros(1));
        let ctl = RunControl::new();
        let g = b.acquire(3, &ctl).expect("free");
        b.end_transmission(3, g);
        assert_eq!(b.shard_of_resource(g.resource), 1);
        std::thread::sleep(Duration::from_millis(2));
        let mut evicted = Vec::new();
        let n = b.reclaim_expired(&mut |r, w| evicted.push((r, w)));
        assert_eq!(n, 1);
        assert_eq!(evicted, vec![(g.resource, 3)], "global index, dead holder");
        assert_eq!(b.shard_credits(1), 2, "credit refunded by the reclaim");
        assert_eq!(
            b.release_audited(3, g, &mut |_, _| {}),
            ReleaseOutcome::Stale,
            "late release refused, no double refund"
        );
        assert_eq!(b.shard_credits(1), 2);
        assert_eq!(b.available_resources(), 4);
    }

    #[test]
    fn faults_route_to_the_owning_shard_and_gate_the_hint() {
        let b = ShardedBroker::sbus(2, 4, 2);
        b.set_resource_faulted(3, true);
        assert_eq!(b.available_resources(), 3);
        assert_eq!(b.shard_credits(1), 1, "fault consumed shard 1's credit");
        assert_eq!(b.shard_credits(0), 2, "shard 0 untouched");
        b.set_resource_faulted(3, false);
        assert_eq!(b.available_resources(), 4);
        assert_eq!(b.shard_credits(1), 2);
    }

    #[test]
    fn single_shard_degenerates_to_the_plain_discipline() {
        let b = ShardedBroker::xbar(2, 2, 1, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        let g0 = b.acquire(0, &ctl).expect("free");
        let g1 = b.acquire(1, &ctl).expect("free");
        assert_ne!(g0.resource, g1.resource);
        assert_eq!(b.stolen_grants(), 0, "nobody to steal from");
        b.release(0, g0);
        b.release(1, g1);
        assert_eq!(b.available_resources(), 2);
    }

    #[test]
    #[should_panic(expected = "every shard needs at least one resource")]
    fn more_shards_than_resources_is_refused() {
        let _ = ShardedBroker::sbus(2, 1, 2);
    }
}
