//! The networked broker server: a nonblocking poll reactor fronting any
//! [`Broker`] with the wire protocol of [`proto`](super::proto).
//!
//! ## Reactor
//!
//! One thread owns every connection and scans them level-triggered —
//! accept, read, arbitrate, flush — with an escalating [`Waiter`] sleep
//! when a full pass makes no progress. There is no epoll: the workspace is
//! dependency-free and `std` exposes none, so readiness is discovered by
//! attempting the nonblocking syscall and absorbing `WouldBlock`. At the
//! target scale (a connection per broker worker slot, i.e. tens of
//! sockets) a scan pass is cheaper than a readiness syscall round-trip
//! would be; the design trades O(connections) polling for zero lost-wakeup
//! states, the same bargain the in-process [`Waiter`] makes.
//!
//! Each accepted connection is pinned to one free [`WorkerId`] slot of the
//! fronted broker, preserving the paper's assumption (f) — one outstanding
//! grant per worker — across the wire: a connection *is* a remote worker.
//! Accepts beyond the slot pool are refused by immediate close.
//!
//! ## Robustness layer
//!
//! - **Deadlines, end-to-end**: requests carry `deadline_us`; every pass
//!   sweeps the pending queues and rejects expired entries *before*
//!   arbitration ever sees them, so a dead-on-arrival request costs no
//!   broker work. Grants are only attempted for live-deadline heads.
//! - **Backpressure**: per-connection write buffers are bounded; a peer
//!   that stops draining its socket past [`NetServerConfig::max_write_buf`]
//!   is disconnected rather than ballooning server memory. A grant whose
//!   delivery write fails (or whose connection died in the same pass) is
//!   released back to the pool immediately — undeliverable grants are
//!   *released, not leaked*.
//! - **Admission control**: when total queue depth or the recent-grant p99
//!   estimate breaches the configured SLO, whole tenant classes are shed
//!   lowest-first (class 0 is never shed). Overload of `k×` the threshold
//!   sheds `k` classes, so pressure maps to a deterministic, explainable
//!   policy rather than a cliff.
//! - **Reclamation**: a connection that dies — EOF, reset, protocol
//!   garbage, slow-drain eviction — has its held grant released on the
//!   spot, with the exclusivity [`Ledger`] audited inside the release
//!   window. A connection that goes *half-open* (alive at TCP level,
//!   silent at protocol level, holding a grant) is the one case the
//!   reactor cannot see; the lease supervisor thread reclaims those by
//!   deadline through [`Broker::reclaim_expired`], exactly as it evicts
//!   crashed in-process holders. Either path runs the same audit hook, so
//!   reclaim-then-regrant can never read as a double grant.
//!
//! The reactor thread itself is restartable ([`NetServer::restart_reactor`]):
//! the old generation drains — releasing every held grant — and a fresh
//! reactor takes over the same listener, so the listen queue carries
//! clients across the gap and their retry layer reconnects them.

use super::proto::{encode, Decoder, Frame, ProtocolError, RejectReason};
use crate::loadgen::Ledger;
use crate::{Broker, BrokerGrant, Waiter, WorkerId};
use rsin_des::stats::{Histogram, Welford};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Packs a grant attribution tag for the [`Ledger`]: tenant class in the
/// top byte, connection id below. Connection ids are monotone per server,
/// so a reclaim-after-disconnect regrant to a successor connection is
/// distinguishable from a double grant to the dead one.
#[must_use]
pub fn attribution_tag(tenant: u8, conn_id: u64) -> u64 {
    (u64::from(tenant) << 56) | (conn_id & 0x00FF_FFFF_FFFF_FFFF)
}

/// Unpacks an [`attribution_tag`] into `(tenant, connection id)`.
#[must_use]
pub fn split_tag(tag: u64) -> (u8, u64) {
    ((tag >> 56) as u8, tag & 0x00FF_FFFF_FFFF_FFFF)
}

/// Tuning of the networked front-end.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Number of tenant classes (requests carry `0 .. tenants`; higher
    /// bytes are clamped to the lowest class). Class 0 is never shed.
    pub tenants: u8,
    /// Per-connection pipelined request cap; the head beyond it is
    /// rejected `Busy`.
    pub max_pipeline: usize,
    /// Per-connection write-buffer bound in bytes; a peer that lets its
    /// buffer exceed this is disconnected as a slow client.
    pub max_write_buf: usize,
    /// Total queued-request depth at which admission control starts
    /// shedding the lowest tenant class.
    pub max_pending: usize,
    /// p99 grant-queue-wait SLO in µs (0 disables the latency trigger):
    /// a recent-window p99 estimate above this sheds like depth overload.
    pub slo_p99_us: u64,
    /// Lease duration backing half-open reclamation; the supervisor polls
    /// a few times per lease.
    pub lease: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            tenants: 3,
            max_pipeline: 16,
            max_write_buf: 64 * 1024,
            max_pending: 1024,
            slo_p99_us: 0,
            lease: Duration::from_millis(25),
        }
    }
}

/// Monotonic counters of everything the server did; snapshot via
/// [`NetServer::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Connections accepted into a worker slot.
    pub accepted: u64,
    /// Connections refused because every worker slot was taken.
    pub refused_capacity: u64,
    /// Grants delivered.
    pub grants: u64,
    /// Requests shed because their deadline expired pre-arbitration.
    pub rejected_expired: u64,
    /// Requests shed by tenant-class admission control.
    pub rejected_shed: u64,
    /// Requests refused for exceeding the per-connection pipeline.
    pub rejected_busy: u64,
    /// Live releases acknowledged.
    pub releases: u64,
    /// Stale releases acknowledged (grant already reclaimed).
    pub stale_releases: u64,
    /// Connections dropped on read/write errors or EOF.
    pub disconnects: u64,
    /// Connections dropped for exceeding the write-buffer bound.
    pub slow_disconnects: u64,
    /// Connections dropped on a framing [`ProtocolError`].
    pub protocol_errors: u64,
    /// Grants released by the reactor when their connection died.
    pub reclaimed_disconnect: u64,
    /// Grants reclaimed by the lease supervisor (half-open holders).
    pub reclaimed_lease: u64,
    /// Grants released when a reactor generation shut down with live
    /// connections still holding them.
    pub reclaimed_shutdown: u64,
    /// Reactor generations started (1 for an unrestarted server).
    pub reactor_starts: u64,
}

macro_rules! counter_fields {
    ($($f:ident),* $(,)?) => {
        #[derive(Debug, Default)]
        struct AtomicCounters { $($f: AtomicU64,)* }
        impl AtomicCounters {
            fn snapshot(&self) -> NetCounters {
                NetCounters { $($f: self.$f.load(Ordering::Relaxed),)* }
            }
        }
    };
}

counter_fields!(
    accepted,
    refused_capacity,
    grants,
    rejected_expired,
    rejected_shed,
    rejected_busy,
    releases,
    stale_releases,
    disconnects,
    slow_disconnects,
    protocol_errors,
    reclaimed_disconnect,
    reclaimed_lease,
    reclaimed_shutdown,
    reactor_starts,
);

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Server-side grant queue-wait statistics (request receipt → grant), in
/// µs, merged across reactor generations.
#[derive(Debug)]
pub struct QueueWaitStats {
    /// Lossless moments.
    pub welford: Welford,
    /// Distribution; [`Histogram::quantile`] gives p50/p99/p999.
    pub hist: Histogram,
}

/// Geometry of every latency histogram in the net layer: 16 µs bins up to
/// ~65.5 ms, overflow counted beyond. Fixed so shards always merge.
#[must_use]
pub fn latency_histogram() -> Histogram {
    Histogram::new(4096, 65536.0)
}

struct Shared<B> {
    broker: B,
    ledger: Ledger,
    cfg: NetServerConfig,
    listener: TcpListener,
    stop: AtomicBool,
    /// Bumped to retire the current reactor generation (restart).
    reactor_gen: AtomicU64,
    next_conn_id: AtomicU64,
    counters: AtomicCounters,
    stats: Mutex<QueueWaitStats>,
}

/// What one request is waiting on.
struct Pending {
    req_id: u32,
    tenant: u8,
    arrived: Instant,
    deadline: Option<Instant>,
}

/// One accepted connection, pinned to worker `slot`.
struct Conn {
    id: u64,
    slot: WorkerId,
    stream: TcpStream,
    dec: Decoder,
    wbuf: Vec<u8>,
    wstart: usize,
    pending: VecDeque<Pending>,
    held: Option<(u32, u8, BrokerGrant)>, // (req_id, tenant, grant)
    dead: bool,
}

impl Conn {
    fn push_frame(&mut self, f: &Frame) {
        encode(f, &mut self.wbuf);
    }
}

/// A running networked broker front-end. Owns the reactor and lease
/// supervisor threads; [`NetServer::stop`] tears everything down and
/// renders the final [`NetServerReport`].
pub struct NetServer<B: Broker + Send + Sync + 'static> {
    shared: Arc<Shared<B>>,
    reactor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl<B: Broker + Send + Sync + 'static> fmt::Debug for NetServer<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Final accounting of a server's lifetime.
#[derive(Debug)]
pub struct NetServerReport {
    /// All counters at shutdown.
    pub counters: NetCounters,
    /// Exclusivity violations the audit ledger observed (must be 0).
    pub violations: u64,
    /// Slots still marked held after the reactor and supervisor drained —
    /// leaks (must be 0).
    pub leaked: usize,
    /// Grants force-reclaimed by the shutdown `reclaim_all` sweep.
    pub forced_reclaims: usize,
    /// Broker slots grantable after shutdown (must equal the pool size).
    pub available_at_end: usize,
    /// Server-side queue-wait statistics, µs.
    pub queue_wait: QueueWaitStats,
}

impl<B: Broker + Send + Sync + 'static> NetServer<B> {
    /// Binds `addr` and starts serving `broker` behind it. The broker's
    /// worker count is the connection capacity.
    pub fn bind(addr: SocketAddr, broker: B, cfg: NetServerConfig) -> io::Result<Self> {
        assert!(cfg.tenants >= 1, "at least one tenant class");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let ledger = Ledger::new(broker.resources());
        let shared = Arc::new(Shared {
            broker,
            ledger,
            cfg,
            listener,
            stop: AtomicBool::new(false),
            reactor_gen: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(0),
            counters: AtomicCounters::default(),
            stats: Mutex::new(QueueWaitStats {
                welford: Welford::new(),
                hist: latency_histogram(),
            }),
        });
        let reactor = spawn_reactor(&shared, 0);
        let supervisor = {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_main(&s))
        };
        Ok(NetServer {
            shared,
            reactor: Some(reactor),
            supervisor: Some(supervisor),
            addr: local,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The independent exclusivity audit.
    #[must_use]
    pub fn ledger(&self) -> &Ledger {
        &self.shared.ledger
    }

    /// Snapshot of the running counters.
    #[must_use]
    pub fn counters(&self) -> NetCounters {
        self.shared.counters.snapshot()
    }

    /// Retires the current reactor generation and starts a fresh one over
    /// the same listener. Every connection of the old generation is closed
    /// (held grants released first); the listener survives, so clients
    /// reconnecting through their retry layer land on the new reactor.
    pub fn restart_reactor(&mut self) {
        let gen = self.shared.reactor_gen.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        self.reactor = Some(spawn_reactor(&self.shared, gen));
    }

    /// Stops the server, joins its threads, and reports. The report's
    /// `leaked` counts slots still held after every drain path ran; the
    /// final force-reclaim restores the broker regardless, so `leaked == 0`
    /// is the invariant tests assert.
    pub fn stop(mut self) -> NetServerReport {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let s = &self.shared;
        // One last deadline pass picks up anything that expired between the
        // supervisor's final poll and its exit.
        let ledger = &s.ledger;
        s.broker.reclaim_expired(&mut |r, w| ledger.vacate(r, w));
        let leaked = ledger.held();
        let forced = s.broker.reclaim_all(&mut |r, w| ledger.vacate(r, w));
        let stats = std::mem::replace(
            &mut *s.stats.lock().expect("stats lock"),
            QueueWaitStats {
                welford: Welford::new(),
                hist: latency_histogram(),
            },
        );
        NetServerReport {
            counters: s.counters.snapshot(),
            violations: ledger.violations(),
            leaked,
            forced_reclaims: forced,
            available_at_end: s.broker.available_resources(),
            queue_wait: stats,
        }
    }
}

impl<B: Broker + Send + Sync + 'static> Drop for NetServer<B> {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

fn spawn_reactor<B: Broker + Send + Sync + 'static>(
    shared: &Arc<Shared<B>>,
    gen: u64,
) -> JoinHandle<()> {
    bump(&shared.counters.reactor_starts);
    let s = Arc::clone(shared);
    std::thread::spawn(move || reactor_main(&s, gen))
}

fn supervisor_main<B: Broker + Send + Sync + 'static>(s: &Shared<B>) {
    let poll = (s.cfg.lease / 4).clamp(Duration::from_micros(50), Duration::from_millis(2));
    while !s.stop.load(Ordering::Acquire) {
        let ledger = &s.ledger;
        let n = s.broker.reclaim_expired(&mut |r, w| ledger.vacate(r, w));
        s.counters
            .reclaimed_lease
            .fetch_add(n as u64, Ordering::Relaxed);
        std::thread::sleep(poll);
    }
}

/// The reactor: owns all connections of one generation. Runs until the
/// server stops or the generation is retired by a restart.
fn reactor_main<B: Broker + Send + Sync + 'static>(s: &Shared<B>, my_gen: u64) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut free_slots: Vec<WorkerId> = (0..s.broker.workers()).rev().collect();
    let mut waiter = Waiter::new();
    let mut rr_origin = 0usize; // rotating arbitration origin, for fairness
    let mut scratch = [0u8; 4096];
    // Recent grant queue-waits (µs) for the admission p99 estimate.
    let mut lat_ring: Vec<u64> = Vec::with_capacity(256);
    let mut lat_pos = 0usize;
    let mut grants_since_est = 0u64;
    let mut p99_est_us = 0u64;
    let mut wf = Welford::new();
    let mut hist = latency_histogram();

    while !s.stop.load(Ordering::Acquire) && s.reactor_gen.load(Ordering::Acquire) == my_gen {
        let mut progress = false;

        // Accept up to the worker-slot pool.
        loop {
            match s.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if let Some(slot) = free_slots.pop() {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        bump(&s.counters.accepted);
                        conns.push(Conn {
                            id: s.next_conn_id.fetch_add(1, Ordering::Relaxed),
                            slot,
                            stream,
                            dec: Decoder::new(),
                            wbuf: Vec::new(),
                            wstart: 0,
                            pending: VecDeque::new(),
                            held: None,
                            dead: false,
                        });
                    } else {
                        bump(&s.counters.refused_capacity);
                        drop(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }

        // Admission cutoff for this pass: tenant classes >= cutoff are shed.
        let depth: usize = conns.iter().map(|c| c.pending.len()).sum();
        let mut over = depth as f64 / s.cfg.max_pending.max(1) as f64;
        if s.cfg.slo_p99_us > 0 && p99_est_us > s.cfg.slo_p99_us {
            over = over.max(p99_est_us as f64 / s.cfg.slo_p99_us as f64);
        }
        let shed = if over >= 1.0 {
            (over as usize).min(usize::from(s.cfg.tenants) - 1)
        } else {
            0
        };
        let cutoff = u8::try_from(usize::from(s.cfg.tenants) - shed).unwrap_or(u8::MAX);

        // Read and process frames.
        for conn in &mut conns {
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.dead = true;
                        bump(&s.counters.disconnects);
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        conn.dec.feed(&scratch[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        bump(&s.counters.disconnects);
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            loop {
                match conn.dec.next_frame() {
                    Ok(Some(frame)) => {
                        progress = true;
                        handle_frame(s, conn, &frame, cutoff);
                    }
                    Ok(None) => break,
                    Err(_e) => {
                        // Framing is unrecoverable; a connection speaking
                        // garbage is dropped, its grant reclaimed below.
                        bump(&s.counters.protocol_errors);
                        conn.dead = true;
                        break;
                    }
                }
            }
        }

        // Deadline sweep: shed every expired pending request before
        // arbitration sees the queue.
        let now = Instant::now();
        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            let mut kept = VecDeque::with_capacity(conn.pending.len());
            while let Some(p) = conn.pending.pop_front() {
                if p.deadline.is_some_and(|d| d <= now) {
                    bump(&s.counters.rejected_expired);
                    conn.push_frame(&Frame::Reject {
                        req_id: p.req_id,
                        reason: RejectReason::Expired,
                    });
                    progress = true;
                } else {
                    kept.push_back(p);
                }
            }
            conn.pending = kept;
        }

        // Arbitration: one bounded try_acquire per idle connection with a
        // queued request, starting from a rotating origin so no connection
        // systematically wins ties.
        let n = conns.len();
        for i in 0..n {
            let conn = &mut conns[(rr_origin + i) % n.max(1)];
            if conn.dead || conn.held.is_some() || conn.pending.is_empty() {
                continue;
            }
            if let Some(grant) = s.broker.try_acquire(conn.slot) {
                let p = conn.pending.pop_front().expect("nonempty");
                s.ledger.claim_tagged(
                    grant.resource,
                    conn.slot,
                    attribution_tag(p.tenant, conn.id),
                );
                // The network holds no circuit: the transmission phase is
                // the client's own hold, so end it immediately.
                s.broker.end_transmission(conn.slot, grant);
                let waited = p.arrived.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                wf.push(waited as f64);
                hist.record(waited as f64);
                if lat_ring.len() < 256 {
                    lat_ring.push(waited);
                } else {
                    lat_ring[lat_pos] = waited;
                    lat_pos = (lat_pos + 1) % 256;
                }
                grants_since_est += 1;
                if grants_since_est >= 64 {
                    grants_since_est = 0;
                    let mut sorted = lat_ring.clone();
                    sorted.sort_unstable();
                    let idx =
                        ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len()) - 1;
                    p99_est_us = sorted[idx];
                }
                bump(&s.counters.grants);
                conn.held = Some((p.req_id, p.tenant, grant));
                conn.push_frame(&Frame::Grant {
                    req_id: p.req_id,
                    resource: grant.resource as u32,
                    generation: grant.generation,
                });
                progress = true;
            }
        }
        rr_origin = rr_origin.wrapping_add(1);

        // Flush write buffers; enforce the backpressure bound.
        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            while conn.wstart < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wstart..]) {
                    Ok(0) => {
                        conn.dead = true;
                        bump(&s.counters.disconnects);
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        conn.wstart += n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        bump(&s.counters.disconnects);
                        break;
                    }
                }
            }
            if conn.wstart == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wstart = 0;
            } else if conn.wbuf.len() - conn.wstart > s.cfg.max_write_buf {
                // Slow client: the socket is not draining and the backlog
                // passed the bound. Cut it loose; the cull below releases
                // any grant it holds.
                conn.dead = true;
                bump(&s.counters.slow_disconnects);
            }
        }

        // Cull dead connections: release held grants (audited), recycle
        // the worker slot.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].dead {
                let conn = conns.swap_remove(i);
                release_held(s, &conn, &s.counters.reclaimed_disconnect);
                free_slots.push(conn.slot);
                progress = true;
            } else {
                i += 1;
            }
        }

        if progress {
            waiter.reset();
        } else {
            waiter.wait();
        }
    }

    // Generation drain: every connection closes, every held grant is
    // released. The listener stays open for the next generation.
    for conn in &conns {
        release_held(s, conn, &s.counters.reclaimed_shutdown);
    }
    let mut stats = s.stats.lock().expect("stats lock");
    stats.welford.merge(&wf);
    stats.hist.merge(&hist);
}

/// Releases a connection's held grant, if any, auditing the ledger inside
/// the release window. A `Stale` outcome means the lease supervisor beat
/// us to it — the audit hook already ran there, so nothing more to do.
fn release_held<B: Broker + Send + Sync + 'static>(
    s: &Shared<B>,
    conn: &Conn,
    counter: &AtomicU64,
) {
    if let Some((_, _, grant)) = conn.held {
        let ledger = &s.ledger;
        if s.broker
            .release_audited(conn.slot, grant, &mut |r, w| ledger.vacate(r, w))
            == crate::ReleaseOutcome::Released
        {
            bump(counter);
        }
    }
}

fn handle_frame<B: Broker + Send + Sync + 'static>(
    s: &Shared<B>,
    conn: &mut Conn,
    frame: &Frame,
    admit_cutoff: u8,
) {
    match *frame {
        Frame::Request {
            req_id,
            tenant,
            deadline_us,
        } => {
            let tenant = tenant.min(s.cfg.tenants - 1);
            if tenant >= admit_cutoff {
                bump(&s.counters.rejected_shed);
                conn.push_frame(&Frame::Reject {
                    req_id,
                    reason: RejectReason::Shed,
                });
                return;
            }
            if conn.pending.len() >= s.cfg.max_pipeline {
                bump(&s.counters.rejected_busy);
                conn.push_frame(&Frame::Reject {
                    req_id,
                    reason: RejectReason::Busy,
                });
                return;
            }
            let arrived = Instant::now();
            conn.pending.push_back(Pending {
                req_id,
                tenant,
                arrived,
                deadline: (deadline_us > 0)
                    .then(|| arrived + Duration::from_micros(u64::from(deadline_us))),
            });
        }
        Frame::Release {
            req_id,
            resource,
            generation,
        } => {
            let live = match conn.held {
                Some((_, _, g))
                    if g.resource == resource as usize && g.generation == generation =>
                {
                    conn.held = None;
                    let ledger = &s.ledger;
                    let outcome = s
                        .broker
                        .release_audited(conn.slot, g, &mut |r, w| ledger.vacate(r, w));
                    outcome == crate::ReleaseOutcome::Released
                }
                // No matching held grant: either a duplicate release or a
                // grant the supervisor already reclaimed and regranted
                // elsewhere. Never forward to the broker (a live foreign
                // release would panic by contract); acknowledge stale.
                _ => false,
            };
            if live {
                bump(&s.counters.releases);
            } else {
                bump(&s.counters.stale_releases);
            }
            conn.push_frame(&Frame::Released { req_id, live });
        }
        // Server-to-client kinds arriving at the server are protocol
        // misuse; treat like any unframeable stream.
        Frame::Grant { .. } | Frame::Reject { .. } | Frame::Released { .. } => {
            bump(&s.counters.protocol_errors);
            conn.dead = true;
        }
    }
}

// `ProtocolError` is referenced in the docs above; keep the import honest
// even though the reactor only matches on it generically.
#[allow(unused)]
fn _doc_uses(_: ProtocolError) {}
