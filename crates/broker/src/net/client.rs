//! Blocking client for the networked broker: one outstanding request at a
//! time, typed errors, and retry built on the workspace's
//! [`RetryPolicy`] so reconnects and shed-retries share the supervised
//! runner's capped-jittered backoff discipline instead of inventing a new
//! one.
//!
//! The client also exposes the raw-byte hooks the network chaos harness
//! uses to misbehave on purpose ([`NetClient::inject_raw`],
//! [`NetClient::shutdown_abrupt`]); they are ordinary public API because a
//! protocol whose robustness matters should be trivially attackable from
//! its own test tooling.

use super::proto::{encode, Decoder, Frame, ProtocolError, RejectReason};
use rsin_des::RetryPolicy;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// A grant held over the wire; release it with [`NetClient::release`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetGrant {
    /// Correlation id of the request that won it.
    pub req_id: u32,
    /// Granted resource index (global across shards).
    pub resource: u32,
    /// Lease generation to echo in the release.
    pub generation: u32,
}

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (includes read timeouts).
    Io(io::Error),
    /// The server's byte stream was unframeable.
    Protocol(ProtocolError),
    /// The server refused the request, typed.
    Rejected(RejectReason),
    /// The server closed the connection.
    Disconnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Rejected(r) => write!(f, "request rejected: {r:?}"),
            NetError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl NetError {
    /// Whether the error is a typed shed rejection (worth retrying after
    /// backoff, per the admission-control contract).
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(self, NetError::Rejected(RejectReason::Shed))
    }
}

/// A blocking connection to a [`NetServer`](super::NetServer).
///
/// One outstanding request at a time: [`NetClient::acquire`] sends a
/// `Request` and reads until its reply arrives; [`NetClient::release`]
/// returns the grant. The server tolerates pipelining, but this client
/// deliberately matches the in-process worker model — one grant per
/// remote worker (paper assumption (f)).
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    dec: Decoder,
    tenant: u8,
    next_req: u32,
    out: Vec<u8>,
}

impl NetClient {
    /// Connects once, blocking, as tenant class `tenant`.
    pub fn connect(addr: SocketAddr, tenant: u8) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            dec: Decoder::new(),
            tenant,
            next_req: 1,
            out: Vec::with_capacity(64),
        })
    }

    /// Connects with capped-jittered exponential backoff between attempts
    /// (`policy.max_retries` re-attempts after the first). Returns the
    /// last error if every attempt fails.
    pub fn connect_retry(addr: SocketAddr, tenant: u8, policy: &RetryPolicy) -> io::Result<Self> {
        let mut attempt = 0u32;
        loop {
            match Self::connect(addr, tenant) {
                Ok(c) => return Ok(c),
                Err(e) if attempt >= policy.max_retries => return Err(e),
                Err(_) => {
                    attempt += 1;
                    std::thread::sleep(policy.delay_before(attempt));
                }
            }
        }
    }

    /// The tenant class this client requests as.
    #[must_use]
    pub fn tenant(&self) -> u8 {
        self.tenant
    }

    /// Caps how long a blocking read waits for the server; `None` blocks
    /// forever. [`NetClient::acquire`] manages this itself when given a
    /// deadline.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.out.clear();
        encode(frame, &mut self.out);
        self.stream.write_all(&self.out)?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        let mut scratch = [0u8; 512];
        loop {
            match self.dec.next_frame() {
                Ok(Some(f)) => return Ok(f),
                Ok(None) => {}
                Err(e) => return Err(NetError::Protocol(e)),
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.dec.feed(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Requests one resource, waiting up to `deadline` for the grant.
    ///
    /// The deadline travels in the request itself, so the *server* sheds
    /// the work when it expires (a typed `Expired` rejection comes back);
    /// the client additionally arms a read timeout slightly past the
    /// deadline so a dead server cannot hang it. `None` means no deadline
    /// on either side.
    pub fn acquire(&mut self, deadline: Option<Duration>) -> Result<NetGrant, NetError> {
        let req_id = self.next_req;
        self.next_req = self.next_req.wrapping_add(1).max(1);
        let deadline_us = deadline
            .map(|d| u32::try_from(d.as_micros()).unwrap_or(u32::MAX))
            .unwrap_or(0);
        self.stream
            .set_read_timeout(deadline.map(|d| d + Duration::from_secs(2)))?;
        self.send(&Frame::Request {
            req_id,
            tenant: self.tenant,
            deadline_us,
        })?;
        loop {
            match self.read_frame()? {
                Frame::Grant {
                    req_id: id,
                    resource,
                    generation,
                } if id == req_id => {
                    return Ok(NetGrant {
                        req_id,
                        resource,
                        generation,
                    })
                }
                Frame::Reject { req_id: id, reason } if id == req_id => {
                    return Err(NetError::Rejected(reason))
                }
                // Replies to earlier requests (e.g. a Released that raced
                // a previous timeout) are drained and ignored.
                _ => {}
            }
        }
    }

    /// [`NetClient::acquire`] with shed-retry: a `Shed` rejection backs
    /// off per `policy` and tries again, up to `policy.max_retries`
    /// re-attempts. Other errors return immediately.
    pub fn acquire_retry(
        &mut self,
        deadline: Option<Duration>,
        policy: &RetryPolicy,
    ) -> Result<NetGrant, NetError> {
        let mut attempt = 0u32;
        loop {
            match self.acquire(deadline) {
                Err(e) if e.is_shed() && attempt < policy.max_retries => {
                    attempt += 1;
                    std::thread::sleep(policy.delay_before(attempt));
                }
                other => return other,
            }
        }
    }

    /// Releases a grant; `Ok(true)` means it was still live, `Ok(false)`
    /// that the lease had already been reclaimed (harmlessly stale).
    pub fn release(&mut self, grant: NetGrant) -> Result<bool, NetError> {
        let req_id = self.next_req;
        self.next_req = self.next_req.wrapping_add(1).max(1);
        self.stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        self.send(&Frame::Release {
            req_id,
            resource: grant.resource,
            generation: grant.generation,
        })?;
        loop {
            match self.read_frame()? {
                Frame::Released { req_id: id, live } if id == req_id => return Ok(live),
                _ => {}
            }
        }
    }

    /// Chaos hook: writes arbitrary bytes into the stream (truncated
    /// frames, garbage). The connection is almost certainly unframeable
    /// afterwards — that is the point.
    pub fn inject_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Chaos hook: slams the connection shut without releasing anything,
    /// simulating a client death mid-protocol. Consumes the client.
    pub fn shutdown_abrupt(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
