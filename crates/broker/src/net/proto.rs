//! Wire protocol of the networked broker front-end.
//!
//! Frames are tiny and fixed-layout: a 4-byte header
//! `[MAGIC][kind][len lo][len hi]` followed by `len` payload bytes,
//! everything little-endian. The request/grant/release vocabulary mirrors
//! the in-process [`Broker`](crate::Broker) protocol one-to-one, with two
//! additions a wire needs and a shared-memory call does not: an explicit
//! per-request deadline (µs, propagated so the server can shed work that
//! is already dead) and typed rejection reasons for admission control.
//!
//! The decoder is incremental and total: feed it arbitrary bytes, pop
//! complete frames. Every malformed input maps to a typed
//! [`ProtocolError`] — never a panic, never an unbounded allocation
//! (lengths beyond [`MAX_PAYLOAD`] are rejected from the header alone,
//! before any buffering decision). A truncated frame is simply "not yet a
//! frame" (`Ok(None)`); the error/no-error distinction is what the fuzz
//! tests in `tests/net.rs` pin down.

use std::fmt;

/// First byte of every frame. Chosen to be neither ASCII nor 0x00/0xFF so
/// common garbage (text, zero fill) fails fast.
pub const MAGIC: u8 = 0xB7;

/// Header bytes before the payload: magic, kind, length (u16 LE).
pub const HEADER_LEN: usize = 4;

/// Upper bound on any payload length. The largest real frame is 12 bytes;
/// the slack leaves room for protocol growth while keeping the decoder's
/// buffering decision trivially bounded.
pub const MAX_PAYLOAD: usize = 32;

/// Frame kind bytes. Client→server kinds have the high bit clear,
/// server→client kinds have it set.
mod kind {
    pub const REQUEST: u8 = 0x01;
    pub const RELEASE: u8 = 0x02;
    pub const GRANT: u8 = 0x81;
    pub const REJECT: u8 = 0x82;
    pub const RELEASED: u8 = 0x83;
}

/// Why the server refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The request's deadline passed before arbitration (shed pre-grant).
    Expired,
    /// Admission control shed this tenant class under overload.
    Shed,
    /// Per-connection pipeline depth exceeded.
    Busy,
    /// The server is shutting down.
    Stopping,
}

impl RejectReason {
    fn to_u8(self) -> u8 {
        match self {
            RejectReason::Expired => 0,
            RejectReason::Shed => 1,
            RejectReason::Busy => 2,
            RejectReason::Stopping => 3,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => RejectReason::Expired,
            1 => RejectReason::Shed,
            2 => RejectReason::Busy,
            3 => RejectReason::Stopping,
            _ => return None,
        })
    }
}

/// One decoded protocol frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client asks for one resource. `deadline_us` is the client's grant
    /// deadline in microseconds from receipt (0 = none); the server sheds
    /// the request unanswered-by-grant once it passes.
    Request {
        /// Client-chosen correlation id, echoed in the reply.
        req_id: u32,
        /// Tenant class, 0 = highest priority.
        tenant: u8,
        /// Deadline in µs from server receipt; 0 means no deadline.
        deadline_us: u32,
    },
    /// Client returns a granted resource.
    Release {
        /// Correlation id of the release itself.
        req_id: u32,
        /// The granted resource index.
        resource: u32,
        /// The grant's lease generation (stale generations are refused
        /// harmlessly server-side).
        generation: u32,
    },
    /// Server grants a resource for an earlier `Request`.
    Grant {
        /// Correlation id of the request being answered.
        req_id: u32,
        /// Granted resource index.
        resource: u32,
        /// Lease generation the client must echo in its `Release`.
        generation: u32,
    },
    /// Server refuses a request.
    Reject {
        /// Correlation id of the request being refused.
        req_id: u32,
        /// Why.
        reason: RejectReason,
    },
    /// Server acknowledges a `Release`. `live` is false when the grant had
    /// already been reclaimed (the release landed stale — harmless).
    Released {
        /// Correlation id of the release being acknowledged.
        req_id: u32,
        /// Whether the released grant was still live.
        live: bool,
    },
}

/// A malformed byte stream, classified. Every variant is a hard framing
/// error: the connection cannot be resynchronized (frame boundaries are
/// lost), so servers drop the peer on any of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first byte of a frame was not [`MAGIC`].
    BadMagic(u8),
    /// The header announced a payload longer than [`MAX_PAYLOAD`].
    Oversized {
        /// Announced payload length.
        len: u16,
    },
    /// The kind byte is not part of the protocol.
    UnknownKind(u8),
    /// A known kind with the wrong payload length.
    BadLength {
        /// Frame kind byte.
        kind: u8,
        /// Announced payload length.
        len: u16,
        /// The length this kind requires.
        want: u16,
    },
    /// A structurally sized payload with an invalid field (unknown reject
    /// reason, non-boolean live byte).
    BadPayload {
        /// Frame kind byte.
        kind: u8,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02x}"),
            ProtocolError::Oversized { len } => {
                write!(f, "payload length {len} exceeds {MAX_PAYLOAD}")
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            ProtocolError::BadLength { kind, len, want } => {
                write!(f, "kind 0x{kind:02x} payload length {len}, want {want}")
            }
            ProtocolError::BadPayload { kind } => {
                write!(f, "kind 0x{kind:02x} payload has an invalid field")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Appends the encoding of `frame` to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    let (k, len) = match frame {
        Frame::Request { .. } => (kind::REQUEST, 9u16),
        Frame::Release { .. } => (kind::RELEASE, 12),
        Frame::Grant { .. } => (kind::GRANT, 12),
        Frame::Reject { .. } => (kind::REJECT, 5),
        Frame::Released { .. } => (kind::RELEASED, 5),
    };
    out.push(MAGIC);
    out.push(k);
    out.extend_from_slice(&len.to_le_bytes());
    match *frame {
        Frame::Request {
            req_id,
            tenant,
            deadline_us,
        } => {
            put_u32(out, req_id);
            out.push(tenant);
            put_u32(out, deadline_us);
        }
        Frame::Release {
            req_id,
            resource,
            generation,
        }
        | Frame::Grant {
            req_id,
            resource,
            generation,
        } => {
            put_u32(out, req_id);
            put_u32(out, resource);
            put_u32(out, generation);
        }
        Frame::Reject { req_id, reason } => {
            put_u32(out, req_id);
            out.push(reason.to_u8());
        }
        Frame::Released { req_id, live } => {
            put_u32(out, req_id);
            out.push(u8::from(live));
        }
    }
}

/// The payload length each kind requires, or `None` for unknown kinds.
fn want_len(k: u8) -> Option<u16> {
    Some(match k {
        kind::REQUEST => 9,
        kind::RELEASE | kind::GRANT => 12,
        kind::REJECT | kind::RELEASED => 5,
        _ => return None,
    })
}

fn parse_payload(k: u8, p: &[u8]) -> Result<Frame, ProtocolError> {
    Ok(match k {
        kind::REQUEST => Frame::Request {
            req_id: get_u32(p),
            tenant: p[4],
            deadline_us: get_u32(&p[5..]),
        },
        kind::RELEASE => Frame::Release {
            req_id: get_u32(p),
            resource: get_u32(&p[4..]),
            generation: get_u32(&p[8..]),
        },
        kind::GRANT => Frame::Grant {
            req_id: get_u32(p),
            resource: get_u32(&p[4..]),
            generation: get_u32(&p[8..]),
        },
        kind::REJECT => Frame::Reject {
            req_id: get_u32(p),
            reason: RejectReason::from_u8(p[4]).ok_or(ProtocolError::BadPayload { kind: k })?,
        },
        kind::RELEASED => Frame::Released {
            req_id: get_u32(p),
            live: match p[4] {
                0 => false,
                1 => true,
                _ => return Err(ProtocolError::BadPayload { kind: k }),
            },
        },
        _ => unreachable!("kind validated by want_len"),
    })
}

/// Incremental frame decoder: buffer bytes as they arrive, pop complete
/// frames. A poisoned decoder (one that returned an error) keeps returning
/// the same error — framing is unrecoverable, the caller must drop the
/// connection.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    start: usize,
    poisoned: Option<ProtocolError>,
}

impl Decoder {
    /// A fresh decoder with nothing buffered.
    #[must_use]
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Buffers `bytes` for decoding.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame: `Ok(None)` means "need more bytes"
    /// (a truncated frame is not an error until the stream ends), a
    /// [`ProtocolError`] means the stream is unframeable from here on.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        match self.next_inner() {
            Ok(f) => Ok(f),
            Err(e) => {
                self.poisoned = Some(e);
                Err(e)
            }
        }
    }

    fn next_inner(&mut self) -> Result<Option<Frame>, ProtocolError> {
        let avail = &self.buf[self.start..];
        if avail.is_empty() {
            self.compact();
            return Ok(None);
        }
        // Validate greedily from the bytes already here, so garbage is
        // reported as soon as it is distinguishable from a slow frame.
        if avail[0] != MAGIC {
            return Err(ProtocolError::BadMagic(avail[0]));
        }
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let k = avail[1];
        let len = u16::from_le_bytes([avail[2], avail[3]]);
        if len as usize > MAX_PAYLOAD {
            return Err(ProtocolError::Oversized { len });
        }
        let want = want_len(k).ok_or(ProtocolError::UnknownKind(k))?;
        if len != want {
            return Err(ProtocolError::BadLength { kind: k, len, want });
        }
        if avail.len() < HEADER_LEN + len as usize {
            return Ok(None);
        }
        let frame = parse_payload(k, &avail[HEADER_LEN..HEADER_LEN + len as usize])?;
        self.start += HEADER_LEN + len as usize;
        self.compact();
        Ok(Some(frame))
    }

    /// Reclaims consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Request {
                req_id: 7,
                tenant: 2,
                deadline_us: 1500,
            },
            Frame::Release {
                req_id: 8,
                resource: 3,
                generation: 41,
            },
            Frame::Grant {
                req_id: 7,
                resource: 3,
                generation: 41,
            },
            Frame::Reject {
                req_id: 9,
                reason: RejectReason::Shed,
            },
            Frame::Released {
                req_id: 8,
                live: true,
            },
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        for f in all_frames() {
            let mut bytes = Vec::new();
            encode(&f, &mut bytes);
            let mut d = Decoder::new();
            d.feed(&bytes);
            assert_eq!(d.next_frame().expect("valid"), Some(f));
            assert_eq!(d.next_frame().expect("drained"), None);
            assert_eq!(d.buffered(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_feed_yields_the_same_frames() {
        let mut stream = Vec::new();
        for f in all_frames() {
            encode(&f, &mut stream);
        }
        let mut d = Decoder::new();
        let mut out = Vec::new();
        for b in stream {
            d.feed(&[b]);
            while let Some(f) = d.next_frame().expect("valid stream") {
                out.push(f);
            }
        }
        assert_eq!(out, all_frames());
    }

    #[test]
    fn truncation_is_not_an_error_until_completed() {
        let mut bytes = Vec::new();
        encode(
            &Frame::Grant {
                req_id: 1,
                resource: 2,
                generation: 3,
            },
            &mut bytes,
        );
        for cut in 0..bytes.len() {
            let mut d = Decoder::new();
            d.feed(&bytes[..cut]);
            assert_eq!(d.next_frame().expect("prefix is never an error"), None);
            d.feed(&bytes[cut..]);
            assert!(d.next_frame().expect("completed").is_some());
        }
    }

    #[test]
    fn typed_errors_for_garbage_oversize_and_bad_fields() {
        let mut d = Decoder::new();
        d.feed(&[0x00]);
        assert_eq!(d.next_frame(), Err(ProtocolError::BadMagic(0x00)));
        // Poisoned decoders stay poisoned.
        d.feed(&{
            let mut v = Vec::new();
            encode(
                &Frame::Released {
                    req_id: 1,
                    live: false,
                },
                &mut v,
            );
            v
        });
        assert_eq!(d.next_frame(), Err(ProtocolError::BadMagic(0x00)));

        let mut d = Decoder::new();
        d.feed(&[MAGIC, 0x01, 0xFF, 0xFF]);
        assert_eq!(
            d.next_frame(),
            Err(ProtocolError::Oversized { len: 0xFFFF })
        );

        let mut d = Decoder::new();
        d.feed(&[MAGIC, 0x7E, 4, 0]);
        assert_eq!(d.next_frame(), Err(ProtocolError::UnknownKind(0x7E)));

        let mut d = Decoder::new();
        d.feed(&[MAGIC, 0x01, 8, 0]);
        assert_eq!(
            d.next_frame(),
            Err(ProtocolError::BadLength {
                kind: 0x01,
                len: 8,
                want: 9
            })
        );

        // Reject with an unknown reason byte.
        let mut d = Decoder::new();
        d.feed(&[MAGIC, 0x82, 5, 0, 1, 0, 0, 0, 99]);
        assert_eq!(
            d.next_frame(),
            Err(ProtocolError::BadPayload { kind: 0x82 })
        );

        // Released with a non-boolean live byte.
        let mut d = Decoder::new();
        d.feed(&[MAGIC, 0x83, 5, 0, 1, 0, 0, 0, 2]);
        assert_eq!(
            d.next_frame(),
            Err(ProtocolError::BadPayload { kind: 0x83 })
        );
    }
}
