//! `rsin-netbroker` — the networked front-end of the runtime broker.
//!
//! ROADMAP item 1's "millions of users" leg: a long-lived TCP server
//! exposing the allocation disciplines over a compact binary protocol, so
//! the paper's *distributed* resource sharing is exercised by genuinely
//! distributed clients rather than threads in one address space. The
//! stack is hand-rolled on `std` alone, like everything else here.
//!
//! Layers, bottom up:
//!
//! - [`proto`] — the wire format: 4-byte-header frames, an incremental
//!   panic-free decoder, typed [`proto::ProtocolError`].
//! - [`server`] — a nonblocking poll-reactor [`server::NetServer`]
//!   fronting any [`Broker`](crate::Broker) (one connection = one remote
//!   worker slot) with per-request deadlines, bounded write backpressure,
//!   tenant-class admission control, and lease-backed reclamation of
//!   whatever dead or half-open connections leave behind.
//! - [`client`] — a blocking [`client::NetClient`] with
//!   [`rsin_des::RetryPolicy`]-driven reconnect/shed backoff, plus the
//!   raw-byte chaos hooks.
//! - [`chaos`] — seeded [`chaos::NetChaosPlan`] connection misbehavior:
//!   resets, half-open stalls, truncated frames, byte garbage.
//! - [`load`] — the multi-connection open-loop harness measuring
//!   p50/p99/p999 grant latency and saturated grants/sec.

pub mod chaos;
pub mod client;
pub mod load;
pub mod proto;
pub mod server;

pub use chaos::{ConnChaos, NetChaosEvent, NetChaosFractions, NetChaosPlan};
pub use client::{NetClient, NetError, NetGrant};
pub use load::{run_net_load, ClientShard, NetLoadConfig, NetLoadReport};
pub use proto::{Decoder, Frame, ProtocolError, RejectReason};
pub use server::{
    attribution_tag, latency_histogram, split_tag, NetCounters, NetServer, NetServerConfig,
    NetServerReport,
};
