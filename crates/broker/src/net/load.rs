//! Multi-connection load harness for the networked broker.
//!
//! Each client thread is an open-loop session generator: connect (with
//! retry), then run sessions — optional exponential think, request with a
//! deadline, hold, release — until the measurement window closes,
//! executing any [`NetChaosPlan`] events scheduled for it along the way
//! and *reconnecting through the retry policy* after every injected or
//! genuine failure. With `mean_think = None` the harness degenerates to
//! closed-loop saturation, which is how the grants/sec ceiling is
//! measured.
//!
//! Every client records its own latency shard ([`ClientShard`]); the
//! report merges them in client order, losslessly, the same discipline as
//! the in-process load generator — and the chaos tests assert that merge
//! is byte-deterministic for the survivors.

use super::chaos::{ConnChaos, NetChaosEvent, NetChaosPlan};
use super::client::{NetClient, NetError};
use super::proto::MAGIC;
use super::server::latency_histogram;
use rsin_des::stats::{Histogram, Welford};
use rsin_des::{RetryPolicy, SimRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Shape of one load run.
#[derive(Clone, Debug)]
pub struct NetLoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Tenant classes; client `i` requests as class `i % tenants`.
    pub tenants: u8,
    /// Wall-clock measurement window.
    pub window: Duration,
    /// Per-request deadline carried on the wire (`None` = none).
    pub deadline: Option<Duration>,
    /// How long a granted resource is held before release.
    pub hold: Duration,
    /// Mean exponential think between sessions (`None` = closed-loop
    /// saturation: next request immediately).
    pub mean_think: Option<Duration>,
    /// Seed of the per-client think/jitter streams.
    pub seed: u64,
    /// Backoff discipline for reconnects and shed-retries.
    pub retry: RetryPolicy,
    /// Connection misbehavior to inject.
    pub chaos: NetChaosPlan,
}

impl Default for NetLoadConfig {
    fn default() -> Self {
        NetLoadConfig {
            clients: 4,
            tenants: 3,
            window: Duration::from_millis(250),
            deadline: Some(Duration::from_millis(100)),
            hold: Duration::ZERO,
            mean_think: None,
            seed: 1,
            retry: RetryPolicy {
                max_retries: 8,
                backoff_base: Duration::from_micros(200),
                backoff_cap: Duration::from_millis(20),
                jitter_seed: 0x4E45,
                hard_deadline: None,
            },
            chaos: NetChaosPlan::new(),
        }
    }
}

/// One client's share of the run: counters plus its latency shard.
#[derive(Clone, Debug)]
pub struct ClientShard {
    /// Client index, `0 .. clients`.
    pub client: usize,
    /// Tenant class it requested as.
    pub tenant: u8,
    /// Grants won.
    pub grants: u64,
    /// Typed `Shed` rejections received.
    pub rejected_shed: u64,
    /// Typed `Expired` rejections received.
    pub rejected_expired: u64,
    /// Typed `Busy` rejections received.
    pub rejected_busy: u64,
    /// Successful reconnects after a failure or injected fault.
    pub reconnects: u64,
    /// Transport/protocol failures observed (each is followed by a
    /// reconnect attempt).
    pub io_errors: u64,
    /// Chaos events this client executed.
    pub chaos_injected: u64,
    /// Releases that landed stale (lease already reclaimed server-side).
    pub stale_releases: u64,
    /// End-to-end request→grant latency, µs (lossless moments).
    pub latency: Welford,
    /// End-to-end request→grant latency distribution, µs.
    pub hist: Histogram,
}

impl ClientShard {
    fn new(client: usize, tenant: u8) -> Self {
        ClientShard {
            client,
            tenant,
            grants: 0,
            rejected_shed: 0,
            rejected_expired: 0,
            rejected_busy: 0,
            reconnects: 0,
            io_errors: 0,
            chaos_injected: 0,
            stale_releases: 0,
            latency: Welford::new(),
            hist: latency_histogram(),
        }
    }
}

/// The merged outcome of a load run.
#[derive(Debug)]
pub struct NetLoadReport {
    /// Per-client shards, in client order.
    pub shards: Vec<ClientShard>,
    /// Total grants across clients.
    pub grants: u64,
    /// Total shed rejections.
    pub rejected_shed: u64,
    /// Total expired rejections.
    pub rejected_expired: u64,
    /// Total busy rejections.
    pub rejected_busy: u64,
    /// Total reconnects.
    pub reconnects: u64,
    /// Total transport/protocol failures.
    pub io_errors: u64,
    /// Total chaos events executed.
    pub chaos_injected: u64,
    /// Total stale releases.
    pub stale_releases: u64,
    /// Merged end-to-end latency moments, µs.
    pub latency: Welford,
    /// Merged end-to-end latency distribution, µs.
    pub hist: Histogram,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Grants per wall second.
    pub grants_per_sec: f64,
}

impl NetLoadReport {
    /// Merges shards (in the given order — merge order is part of the
    /// determinism contract the chaos tests pin down).
    #[must_use]
    pub fn merge(shards: Vec<ClientShard>, elapsed: Duration) -> Self {
        let mut latency = Welford::new();
        let mut hist = latency_histogram();
        let mut r = NetLoadReport {
            grants: 0,
            rejected_shed: 0,
            rejected_expired: 0,
            rejected_busy: 0,
            reconnects: 0,
            io_errors: 0,
            chaos_injected: 0,
            stale_releases: 0,
            latency: Welford::new(),
            hist: latency_histogram(),
            elapsed,
            grants_per_sec: 0.0,
            shards: Vec::new(),
        };
        for s in &shards {
            r.grants += s.grants;
            r.rejected_shed += s.rejected_shed;
            r.rejected_expired += s.rejected_expired;
            r.rejected_busy += s.rejected_busy;
            r.reconnects += s.reconnects;
            r.io_errors += s.io_errors;
            r.chaos_injected += s.chaos_injected;
            r.stale_releases += s.stale_releases;
            latency.merge(&s.latency);
            hist.merge(&s.hist);
        }
        r.latency = latency;
        r.hist = hist;
        r.grants_per_sec = r.grants as f64 / elapsed.as_secs_f64().max(1e-9);
        r.shards = shards;
        r
    }

    /// Latency quantile in µs; saturates to the histogram's upper edge
    /// when the mass falls in overflow.
    #[must_use]
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.hist
            .quantile(q)
            .unwrap_or_else(|| self.hist.bin_edge(self.hist.num_bins()))
    }
}

/// Drives `cfg.clients` concurrent connections against the server at
/// `addr` and merges the shards. Panics in client threads propagate.
#[must_use]
pub fn run_net_load(addr: SocketAddr, cfg: &NetLoadConfig) -> NetLoadReport {
    assert!(cfg.clients >= 1, "at least one client");
    assert!(cfg.tenants >= 1, "at least one tenant class");
    let started = Instant::now();
    let shards: Vec<ClientShard> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| scope.spawn(move || client_main(addr, cfg, client)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    NetLoadReport::merge(shards, started.elapsed())
}

/// Executes one chaos event against the currently held grant/connection.
/// Returns the client back if the connection survived the event.
fn execute_chaos(
    client: NetClient,
    event: &NetChaosEvent,
    grant: super::client::NetGrant,
    shard: &mut ClientShard,
    junk: &[u8],
) -> Option<NetClient> {
    shard.chaos_injected += 1;
    match event.kind {
        ConnChaos::Reset => {
            client.shutdown_abrupt();
            None
        }
        ConnChaos::Stall(d) => {
            // Half-open: hold the grant silently past its lease, then try
            // the release anyway — it must land harmlessly stale.
            std::thread::sleep(d);
            let mut client = client;
            match client.release(grant) {
                Ok(live) => {
                    if !live {
                        shard.stale_releases += 1;
                    }
                    Some(client)
                }
                Err(_) => {
                    shard.io_errors += 1;
                    None
                }
            }
        }
        ConnChaos::Truncate => {
            // First bytes of a legitimate Release frame, then silence and
            // an abrupt close: death mid-write.
            let mut client = client;
            let _ = client.inject_raw(&[MAGIC, 0x02, 12]);
            client.shutdown_abrupt();
            None
        }
        ConnChaos::Junk => {
            let mut client = client;
            let _ = client.inject_raw(junk);
            // The server classifies the garbage and drops us; the next
            // operation on this client fails and triggers a reconnect.
            Some(client)
        }
    }
}

fn client_main(addr: SocketAddr, cfg: &NetLoadConfig, client_idx: usize) -> ClientShard {
    let tenant = u8::try_from(client_idx % usize::from(cfg.tenants)).unwrap_or(0);
    let mut shard = ClientShard::new(client_idx, tenant);
    let mut rng = SimRng::new(cfg.seed).derive(0x4C4F41 + client_idx as u64);
    // Seeded garbage for Junk events: starts with a non-MAGIC byte so the
    // server fails fast and deterministically on kind, not on chance.
    let junk: Vec<u8> = (0..24)
        .map(|i| {
            if i == 0 {
                0x00
            } else {
                (rng.uniform() * 256.0) as u8
            }
        })
        .collect();
    let events = cfg.chaos.for_client(client_idx);
    let mut next_event = 0usize;
    let t0 = Instant::now();

    let mut conn = match NetClient::connect_retry(addr, tenant, &cfg.retry) {
        Ok(c) => Some(c),
        Err(_) => {
            shard.io_errors += 1;
            None
        }
    };

    while t0.elapsed() < cfg.window {
        let Some(mut client) = conn.take() else {
            // Lost the connection: reconnect through the retry policy.
            match NetClient::connect_retry(addr, tenant, &cfg.retry) {
                Ok(c) => {
                    shard.reconnects += 1;
                    conn = Some(c);
                    continue;
                }
                Err(_) => {
                    shard.io_errors += 1;
                    break;
                }
            }
        };

        // Open-loop think (capped so the window bounds the run).
        if let Some(mean) = cfg.mean_think {
            let u = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
            let think = mean.mul_f64(-u.ln());
            std::thread::sleep(think.min(Duration::from_millis(5)));
        }

        let sent = Instant::now();
        match client.acquire_retry(cfg.deadline, &cfg.retry) {
            Ok(grant) => {
                let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as f64;
                shard.grants += 1;
                shard.latency.push(us);
                shard.hist.record(us);
                // A due chaos event fires mid-grant — that is the hard
                // case for the server's reclamation paths.
                let due = next_event < events.len() && t0.elapsed() >= events[next_event].at;
                if due {
                    let ev = events[next_event];
                    next_event += 1;
                    conn = execute_chaos(client, &ev, grant, &mut shard, &junk);
                    continue;
                }
                if !cfg.hold.is_zero() {
                    std::thread::sleep(cfg.hold);
                }
                match client.release(grant) {
                    Ok(live) => {
                        if !live {
                            shard.stale_releases += 1;
                        }
                        conn = Some(client);
                    }
                    Err(_) => {
                        shard.io_errors += 1;
                    }
                }
            }
            Err(NetError::Rejected(reason)) => {
                use super::proto::RejectReason;
                match reason {
                    RejectReason::Expired => shard.rejected_expired += 1,
                    RejectReason::Shed => shard.rejected_shed += 1,
                    RejectReason::Busy => shard.rejected_busy += 1,
                    RejectReason::Stopping => {}
                }
                conn = Some(client);
            }
            Err(_) => {
                shard.io_errors += 1;
                // Drop the broken connection; next pass reconnects.
            }
        }
    }
    shard
}
