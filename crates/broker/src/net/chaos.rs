//! Seeded connection-level chaos for the networked broker: the wire twin
//! of [`ChaosPlan`](crate::ChaosPlan).
//!
//! Where the in-process plan makes threads panic or stall, this one makes
//! *connections* misbehave, covering the four failure shapes a serving
//! stack actually meets: abrupt close mid-grant (fail-stop client death),
//! half-open stalls (client alive at TCP level, silent at protocol level,
//! squatting on a grant past its lease), truncated frames (death mid-
//! write), and byte garbage (corruption, confusion, or malice). The load
//! harness executes the plan from the client side; the server under test
//! must shed, reclaim, and keep serving the healthy tenants — the
//! assertions live in `tests/net.rs` and the CI net-smoke job.
//!
//! Plans are inert data, fully deterministic in their seed, with disjoint
//! victims — the same contract as the thread-chaos plan, so a spec like
//! `kill=0.25,trunc=0.125,seed=7` reproduces exactly.

use crate::chaos::ChaosSpec;
use rsin_des::SimRng;
use std::time::Duration;

/// What a chosen connection does to the server, once, at its scheduled
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnChaos {
    /// Close the socket abruptly while holding a grant: no release, no
    /// goodbye. The server's disconnect path must reclaim the grant.
    Reset,
    /// Go silent while holding a grant for the given wall interval — a
    /// half-open connection the reactor cannot distinguish from a slow
    /// client. Only the lease supervisor can reclaim it; the client's
    /// eventual release must land harmlessly stale.
    Stall(Duration),
    /// Write a truncated frame, then close. Exercises the decoder's
    /// partial-frame buffering and the disconnect reclaim together.
    Truncate,
    /// Write seeded byte garbage mid-stream. The server must classify it
    /// as a typed protocol error and drop the connection.
    Junk,
}

/// One scheduled connection misbehavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetChaosEvent {
    /// Wall-clock offset into the run at which the client misbehaves on
    /// its next grant.
    pub at: Duration,
    /// Victim client index, `0 .. clients`.
    pub client: usize,
    /// What it does.
    pub kind: ConnChaos,
}

/// A seeded, deterministic schedule of connection misbehavior.
#[derive(Clone, Debug, Default)]
pub struct NetChaosPlan {
    events: Vec<NetChaosEvent>,
}

impl NetChaosPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn new() -> Self {
        NetChaosPlan::default()
    }

    /// Adds one event (kept sorted by time).
    #[must_use]
    pub fn with(mut self, event: NetChaosEvent) -> Self {
        self.events.push(event);
        self.events.sort_by_key(|e| (e.at, e.client));
        self
    }

    /// A seeded plan over `clients` connections: `reset`/`stall`/`trunc`/
    /// `junk` fractions of them (each rounded up, victims disjoint)
    /// misbehave at uniform times inside `window`; stalls last
    /// `stall_for`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions sum past 1, the window is empty, or
    /// `stall_for` is zero.
    #[must_use]
    pub fn seeded(
        seed: u64,
        clients: usize,
        fracs: NetChaosFractions,
        window: (Duration, Duration),
        stall_for: Duration,
    ) -> Self {
        let NetChaosFractions {
            reset,
            stall,
            trunc,
            junk,
        } = fracs;
        for f in [reset, stall, trunc, junk] {
            assert!(
                (0.0..=1.0).contains(&f),
                "chaos fractions must be in [0, 1]"
            );
        }
        assert!(window.0 < window.1, "empty chaos window");
        assert!(!stall_for.is_zero(), "stall duration must be positive");
        let count = |f: f64, left: usize| ((clients as f64 * f).ceil() as usize).min(left);
        let n_reset = count(reset, clients);
        let n_stall = count(stall, clients - n_reset);
        let n_trunc = count(trunc, clients - n_reset - n_stall);
        let n_junk = count(junk, clients - n_reset - n_stall - n_trunc);
        let total = n_reset + n_stall + n_trunc + n_junk;
        assert!(
            total <= clients,
            "chaos fractions select more victims than clients"
        );
        let mut rng = SimRng::new(seed).derive(0xC4A1);
        let mut victims: Vec<usize> = (0..clients).collect();
        rng.shuffle(&mut victims);
        let span = (window.1 - window.0).as_secs_f64();
        let mut events = Vec::with_capacity(total);
        for (i, &client) in victims.iter().take(total).enumerate() {
            let at = window.0 + Duration::from_secs_f64(rng.uniform() * span);
            let kind = if i < n_reset {
                ConnChaos::Reset
            } else if i < n_reset + n_stall {
                ConnChaos::Stall(stall_for)
            } else if i < n_reset + n_stall + n_trunc {
                ConnChaos::Truncate
            } else {
                ConnChaos::Junk
            };
            events.push(NetChaosEvent { at, client, kind });
        }
        events.sort_by_key(|e| (e.at, e.client));
        NetChaosPlan { events }
    }

    /// A plan materialized from the flat [`ChaosSpec`] form: `kill` maps
    /// to [`ConnChaos::Reset`], `stall` to a half-open stall of
    /// `stall_for`, `trunc` and `junk` to their wire injections.
    #[must_use]
    pub fn from_spec(
        spec: &ChaosSpec,
        clients: usize,
        window: (Duration, Duration),
        stall_for: Duration,
    ) -> Self {
        NetChaosPlan::seeded(
            spec.seed,
            clients,
            NetChaosFractions {
                reset: spec.kill,
                stall: spec.stall,
                trunc: spec.trunc,
                junk: spec.junk,
            },
            window,
            stall_for,
        )
    }

    /// All events, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[NetChaosEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events aimed at one client, in time order.
    #[must_use]
    pub fn for_client(&self, client: usize) -> Vec<NetChaosEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.client == client)
            .collect()
    }

    /// Wall offset after which every misbehavior (including stall tails)
    /// has begun and ended.
    #[must_use]
    pub fn horizon(&self) -> Duration {
        self.events
            .iter()
            .map(|e| match e.kind {
                ConnChaos::Stall(d) => e.at + d,
                _ => e.at,
            })
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Number of events of the given shape.
    #[must_use]
    pub fn count(&self, kind: fn(&ConnChaos) -> bool) -> usize {
        self.events.iter().filter(|e| kind(&e.kind)).count()
    }
}

/// Victim fractions of a seeded plan, named so call sites read.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetChaosFractions {
    /// Fraction of clients that abruptly close mid-grant.
    pub reset: f64,
    /// Fraction that go half-open while holding a grant.
    pub stall: f64,
    /// Fraction that write a truncated frame then close.
    pub trunc: f64,
    /// Fraction that write byte garbage mid-stream.
    pub junk: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fr(reset: f64, stall: f64, trunc: f64, junk: f64) -> NetChaosFractions {
        NetChaosFractions {
            reset,
            stall,
            trunc,
            junk,
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_disjoint_and_sized() {
        let w = (Duration::from_millis(10), Duration::from_millis(50));
        let s = Duration::from_millis(5);
        let p = NetChaosPlan::seeded(7, 12, fr(0.25, 0.125, 0.125, 0.125), w, s);
        let q = NetChaosPlan::seeded(7, 12, fr(0.25, 0.125, 0.125, 0.125), w, s);
        assert_eq!(p.events(), q.events(), "same seed, same plan");
        let r = NetChaosPlan::seeded(8, 12, fr(0.25, 0.125, 0.125, 0.125), w, s);
        assert_ne!(p.events(), r.events(), "different seed, different plan");
        assert_eq!(p.count(|k| matches!(k, ConnChaos::Reset)), 3);
        assert_eq!(p.count(|k| matches!(k, ConnChaos::Stall(_))), 2);
        assert_eq!(p.count(|k| matches!(k, ConnChaos::Truncate)), 2);
        assert_eq!(p.count(|k| matches!(k, ConnChaos::Junk)), 2);
        let mut victims: Vec<_> = p.events().iter().map(|e| e.client).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), p.events().len(), "victims are disjoint");
        for e in p.events() {
            assert!(e.at >= w.0 && e.at < w.1);
        }
        assert!(p.horizon() >= w.0 && p.horizon() <= w.1 + s);
    }

    #[test]
    fn spec_mapping_covers_all_four_shapes() {
        let spec = ChaosSpec::parse("kill=0.25,stall=0.25,trunc=0.25,junk=0.25,seed=3")
            .expect("valid spec");
        let p = NetChaosPlan::from_spec(
            &spec,
            8,
            (Duration::from_millis(1), Duration::from_millis(9)),
            Duration::from_millis(4),
        );
        assert_eq!(p.events().len(), 8);
        for kind in [
            |k: &ConnChaos| matches!(k, ConnChaos::Reset),
            |k: &ConnChaos| matches!(k, ConnChaos::Stall(_)),
            |k: &ConnChaos| matches!(k, ConnChaos::Truncate),
            |k: &ConnChaos| matches!(k, ConnChaos::Junk),
        ] {
            assert_eq!(p.count(kind), 2);
        }
    }
}
