//! The shared-bus discipline at runtime: a broadcast free-count status
//! word plus a ticket arbiter.
//!
//! Section III's single bus serializes transmissions; which waiting
//! processor transmits next is the arbiter's choice. The hardware's daisy
//! chain favors low indices, and the paper points at POLYP's circulating
//! token as the fair fix — the runtime equivalent of a circulating grant is
//! a **ticket queue**: every acquire takes the next ticket, the bus serves
//! tickets in order, and the mean delay is unchanged (service is
//! exponential and the bus is work-conserving, so the mean is
//! discipline-insensitive — exactly why the [`SharedBusChain`] oracle does
//! not need to know which arbiter the runtime uses).
//!
//! [`SharedBusChain`]: ../rsin_queueing/struct.SharedBusChain.html
//!
//! ## Protocol
//!
//! - `free` is the broadcast status word every processor snoops: the number
//!   of currently free resources. A releaser vacates its resource slot
//!   *before* incrementing `free` (`Release` RMW); an acquirer decrements
//!   `free` (`Acquire` RMW) *before* scanning for a slot. The counter
//!   therefore never exceeds the number of vacant slots, so a successful
//!   decrement is a reservation: the slot scan below it cannot fail
//!   permanently.
//! - `serving`/`next_ticket` implement the bus queue, and the `bus`
//!   [`LeaseWord`] records who is actually transmitting: the ticket holder
//!   claims the bus lease when its turn comes, keeps it through the
//!   transmission phase, and [`SbusBroker::end_transmission`] vacates the
//!   lease and passes the turn on.
//!
//! Ordering matters. Section III's bus carries transmissions, nothing
//! else, and a processor is granted only when the bus AND a resource are
//! free at the same instant. The runtime reproduces that with a
//! snoop → ticket → confirm sequence: no bus request while the status word
//! reads zero; the reservation is confirmed only at bus-grant time; and a
//! lost race passes the bus straight on and retries with backoff. The two
//! tempting simplifications are both measurably wrong against the
//! chain/DES predictions — waiting for a resource *while holding* the bus
//! blocks every other transmission behind a busy pool, and reserving
//! *before* queueing for the bus parks resources idle for the whole bus
//! wait (which destabilizes the system well before the model says it
//! should saturate). The cross-validation suite is what polices this
//! equivalence.
//!
//! An acquire aborted by [`RunControl`] still advances `serving` once its
//! turn comes, so a stopping run unwinds the whole ticket queue instead of
//! wedging it.
//!
//! ## Crash tolerance (status-word repair)
//!
//! A crashed holder can wedge this discipline in three places, and the
//! supervisor ([`Broker::reclaim_expired`]) repairs all three:
//!
//! 1. **A leaked resource slot**: the slot's lease expires, the supervisor
//!    reclaims it, and — the status-word repair — returns its credit to
//!    `free` (unless a parked fault consumed the slot). The generation CAS
//!    makes the repair safe against the holder's own late release.
//! 2. **A dead transmitter**: the bus lease expires; the supervisor
//!    vacates it and advances `serving` past the dead holder's ticket.
//!    The advance is a CAS keyed on that specific ticket, and the vacate
//!    is keyed on the bus generation, so a slow-but-alive transmitter
//!    whose `end_transmission` races the repair passes the turn exactly
//!    once — whichever CAS wins; the loser observes `Stale` and stands
//!    down.
//! 3. **A dead *queued* ticket** (a worker that died after taking a ticket
//!    but before its turn): nobody will advance `serving` past it. The
//!    supervisor watches the `(serving, next_ticket)` pair; if tickets are
//!    queued, the bus is vacant, and nothing has moved for a full lease,
//!    it skips the presumed-dead ticket. A live-but-descheduled worker
//!    whose turn is skipped simply observes `serving` beyond its ticket
//!    and re-queues — the skip can cost it a retry, never a wedge or a
//!    double grant.

use crate::lease::{self, LeaseClock, LeaseWord, UnclaimStart, NO_OWNER};
use crate::{Broker, BrokerGrant, ReleaseOutcome, RunControl, Waiter, WorkerId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sentinel in the per-worker ticket table: no ticket outstanding.
const TICKET_NONE: u64 = u64::MAX;

/// Runtime shared-bus broker: one bus, `workers` processors, `resources`
/// identical resources.
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, RunControl, SbusBroker};
///
/// let broker = SbusBroker::new(2, 1);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(0, &ctl).expect("uncontended");
/// broker.end_transmission(0, grant);
/// broker.release(0, grant);
/// ```
#[derive(Debug)]
pub struct SbusBroker {
    workers: usize,
    /// Broadcast free-resource count (the status word of Section III).
    free: AtomicU64,
    /// Next ticket to hand out.
    next_ticket: AtomicU64,
    /// Ticket currently owning the bus turn.
    serving: AtomicU64,
    /// Who is actually transmitting (leased, reclaimable).
    bus: LeaseWord,
    /// `tickets[w]`: the ticket worker `w` currently holds, or
    /// [`TICKET_NONE`]. Lets the supervisor advance `serving` past a dead
    /// holder's ticket with a ticket-keyed CAS.
    tickets: Vec<AtomicU64>,
    /// `bus_generation[w]`: the bus-lease generation of worker `w`'s
    /// current transmission (written and read only by `w` itself).
    bus_generation: Vec<AtomicU64>,
    /// Per-resource lease words.
    slots: Vec<LeaseWord>,
    /// Stalled-queue watchdog state: last `(serving, next_ticket)` pair
    /// the supervisor observed, and when it first observed it.
    seen_serving: AtomicU64,
    seen_next: AtomicU64,
    seen_at_us: AtomicU64,
    clock: LeaseClock,
}

impl SbusBroker {
    /// Creates a broker with all resources free and non-expiring leases
    /// (the pre-lease protocol on the fault-free path).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `resources` is zero.
    #[must_use]
    pub fn new(workers: usize, resources: usize) -> Self {
        Self::build(workers, resources, None)
    }

    /// Creates a broker whose grants (and bus turns) expire `lease` after
    /// issue, making them reclaimable through [`Broker::reclaim_expired`].
    /// Choose the lease much longer than any honest hold or transmission
    /// time: a slower-than-lease holder is evicted as presumed dead.
    #[must_use]
    pub fn with_lease(workers: usize, resources: usize, lease: Duration) -> Self {
        Self::build(workers, resources, Some(lease))
    }

    fn build(workers: usize, resources: usize, lease: Option<Duration>) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(resources > 0, "need at least one resource");
        SbusBroker {
            workers,
            free: AtomicU64::new(resources as u64),
            next_ticket: AtomicU64::new(0),
            serving: AtomicU64::new(0),
            bus: LeaseWord::new(),
            tickets: (0..workers).map(|_| AtomicU64::new(TICKET_NONE)).collect(),
            bus_generation: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            slots: (0..resources).map(|_| LeaseWord::new()).collect(),
            seen_serving: AtomicU64::new(0),
            seen_next: AtomicU64::new(0),
            seen_at_us: AtomicU64::new(0),
            clock: LeaseClock::new(lease),
        }
    }

    /// Current value of the broadcast status word.
    #[must_use]
    pub fn free_count(&self) -> u64 {
        self.free.load(Ordering::Acquire)
    }

    /// Tries to reserve one resource by decrementing the status word.
    fn try_reserve(&self) -> bool {
        let mut f = self.free.load(Ordering::Acquire);
        while f > 0 {
            match self
                .free
                .compare_exchange_weak(f, f - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(now) => f = now,
            }
        }
        false
    }

    /// One claim sweep over the vacancy set starting from `origin`
    /// (wrapping). Pools up to 64 slots pack their vacancy bits into one
    /// word and pick claim targets with the parallel-prefix rotating grant
    /// ([`rsin_bitslice::rotating_grant`]); wider pools run the equivalent
    /// rotated index sweep. Returns `None` when every vacancy seen was
    /// claimed by a faster reserver — the caller backs off and rescans.
    fn claim_slot_from(&self, who: WorkerId, origin: usize) -> Option<BrokerGrant> {
        let n = self.slots.len();
        if n <= 64 {
            let mut vacant = 0u64;
            for (i, slot) in self.slots.iter().enumerate() {
                vacant |= u64::from(lease::owner_of(slot.load()) == NO_OWNER) << i;
            }
            while vacant != 0 {
                let i = rsin_bitslice::rotating_grant(&[vacant], origin)?;
                if let Some(generation) =
                    self.slots[i].try_claim(who, self.clock.deadline_from_now())
                {
                    return Some(BrokerGrant {
                        resource: i,
                        generation,
                    });
                }
                // Lost that CAS — the slot is taken; grant from the rest.
                vacant &= !(1u64 << i);
            }
            None
        } else {
            for k in 0..n {
                let i = (origin + k) % n;
                let slot = &self.slots[i];
                if lease::owner_of(slot.load()) != NO_OWNER {
                    continue;
                }
                if let Some(generation) = slot.try_claim(who, self.clock.deadline_from_now()) {
                    return Some(BrokerGrant {
                        resource: i,
                        generation,
                    });
                }
            }
            None
        }
    }

    /// Vacates the caller's bus lease and passes the turn on. Tolerates
    /// having already been evicted by the supervisor (`Stale`): the turn
    /// was passed by the reclaimer, so the caller only forgets its ticket.
    fn pass_bus(&self, who: WorkerId) {
        let ticket = self.tickets[who].load(Ordering::Acquire);
        let generation = self.bus_generation[who].load(Ordering::Acquire) as u32;
        match self.bus.begin_unclaim(who, generation) {
            UnclaimStart::Begun => {
                self.bus.finish_unclaim();
                if ticket != TICKET_NONE {
                    let _ = self.serving.compare_exchange(
                        ticket,
                        ticket + 1,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    );
                }
            }
            UnclaimStart::Stale => {}
            UnclaimStart::Foreign => unreachable!("bus generations are per-holder"),
        }
        if ticket != TICKET_NONE {
            let _ = self.tickets[who].compare_exchange(
                ticket,
                TICKET_NONE,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
    }

    /// One supervisor pass at `now_us`: reclaim expired slot leases
    /// (repairing the status word), repair a dead transmitter's bus, and
    /// skip dead queued tickets.
    fn reclaim_at(
        &self,
        now_us: u64,
        skip_queued: bool,
        audit: &mut dyn FnMut(usize, WorkerId),
    ) -> usize {
        let mut reclaimed = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(dead) = slot.begin_reclaim(now_us) {
                audit(i, dead);
                let vacated = slot.finish_unclaim();
                if !vacated.to_faulted {
                    // The status-word repair: the dead holder's credit
                    // comes back (unless a parked fault consumed it).
                    self.free.fetch_add(1, Ordering::Release);
                }
                reclaimed += 1;
            }
        }
        if let Some(dead) = self.bus.begin_reclaim(now_us) {
            self.bus.finish_unclaim();
            let ticket = self.tickets[dead].load(Ordering::Acquire);
            if ticket != TICKET_NONE {
                let _ = self.serving.compare_exchange(
                    ticket,
                    ticket + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                let _ = self.tickets[dead].compare_exchange(
                    ticket,
                    TICKET_NONE,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
        }
        if skip_queued {
            self.skip_dead_tickets(now_us);
        }
        reclaimed
    }

    /// Detects a wedged ticket queue — tickets waiting, bus vacant,
    /// nothing moving for a full lease — and skips the presumed-dead
    /// ticket at the head.
    fn skip_dead_tickets(&self, now_us: u64) {
        let serving = self.serving.load(Ordering::Acquire);
        let next = self.next_ticket.load(Ordering::Relaxed);
        if serving != self.seen_serving.load(Ordering::Relaxed)
            || next != self.seen_next.load(Ordering::Relaxed)
        {
            self.seen_serving.store(serving, Ordering::Relaxed);
            self.seen_next.store(next, Ordering::Relaxed);
            self.seen_at_us.store(now_us, Ordering::Relaxed);
            return;
        }
        let stalled_for = now_us.saturating_sub(self.seen_at_us.load(Ordering::Relaxed));
        if serving < next
            && lease::owner_of(self.bus.load()) == NO_OWNER
            && stalled_for >= self.clock.lease_us()
            && self
                .serving
                .compare_exchange(serving, serving + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.seen_serving.store(serving + 1, Ordering::Relaxed);
            self.seen_at_us.store(now_us, Ordering::Relaxed);
        }
    }
}

impl Broker for SbusBroker {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.slots.len()
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let mut waiter = Waiter::new();
        loop {
            // Phase 1: snoop the broadcast status word; don't even request
            // the bus while it reads zero (the paper's retry-on-status-
            // change). Only the snoop is free-running — everything past it
            // is one bounded bus turn.
            if ctl.is_stopped() {
                return None;
            }
            if self.free.load(Ordering::Acquire) == 0 {
                waiter.wait();
                continue;
            }
            // Phase 2: queue for the bus. Once the ticket is taken the
            // turn must be waited out even on stop — tickets ahead of us
            // are either transmissions (which end) or probes/aborters
            // (which pass), so the wait is bounded and skipping our own
            // pass would wedge everyone behind us. The only other exit is
            // the supervisor skipping us as presumed dead, in which case
            // we re-queue.
            let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
            self.tickets[who].store(ticket, Ordering::Release);
            let mut bus_wait = Waiter::new();
            let reached_turn = loop {
                let s = self.serving.load(Ordering::Acquire);
                if s == ticket {
                    break true;
                }
                if s > ticket {
                    break false;
                }
                bus_wait.wait();
            };
            if !reached_turn {
                self.tickets[who].store(TICKET_NONE, Ordering::Release);
                waiter.wait();
                continue;
            }
            if ctl.is_stopped() {
                let _ = self.serving.compare_exchange(
                    ticket,
                    ticket + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                self.tickets[who].store(TICKET_NONE, Ordering::Release);
                return None;
            }
            // Our turn: claim the bus lease. The previous transmitter may
            // still be mid-vacate (its lease word in the RECLAIMING
            // phase) — retry with capped backoff; stand down if the
            // supervisor skips us meanwhile.
            let mut claim_wait = Waiter::new();
            let bus_generation = loop {
                if let Some(g) = self.bus.try_claim(who, self.clock.deadline_from_now()) {
                    break Some(g);
                }
                if self.serving.load(Ordering::Acquire) != ticket {
                    break None;
                }
                claim_wait.wait();
            };
            let Some(bus_generation) = bus_generation else {
                self.tickets[who].store(TICKET_NONE, Ordering::Release);
                waiter.wait();
                continue;
            };
            self.bus_generation[who].store(u64::from(bus_generation), Ordering::Release);
            // Phase 3: with the bus held, confirm the resource the status
            // word advertised. Reserving at bus-grant time is what keeps
            // the runtime equivalent to the model, where a processor is
            // granted only when bus AND resource are free at the same
            // instant; losing the race just passes the bus on and retries,
            // so the bus itself never blocks on busy resources.
            if !self.try_reserve() {
                self.pass_bus(who);
                waiter.wait();
                continue;
            }
            // The reservation guarantees a vacant slot exists; contend for
            // one. Each worker sweeps from its own home origin, spread
            // evenly across the pool, so concurrent reservers fan out over
            // distinct slots instead of piling onto slot 0 and fighting
            // the same CAS. A failed sweep only ever means other reservers
            // claimed every vacancy it saw — rescan.
            let origin = who * self.slots.len() / self.workers;
            let mut scan = Waiter::new();
            loop {
                if let Some(grant) = self.claim_slot_from(who, origin) {
                    return Some(grant);
                }
                scan.wait();
            }
        }
    }

    fn try_acquire(&self, who: WorkerId) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        // Snoop: an exhausted pool is answered from the status word alone,
        // without queueing for the bus — the cheap-probe property the
        // sharded overflow path depends on.
        if self.free.load(Ordering::Acquire) == 0 {
            return None;
        }
        // One bus turn, same protocol as `acquire` phase 2: the turn wait
        // is bounded (tickets ahead either transmit and end, or pass), so
        // the probe never waits for *capacity*, only for its turn.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.tickets[who].store(ticket, Ordering::Release);
        let mut bus_wait = Waiter::new();
        let reached_turn = loop {
            let s = self.serving.load(Ordering::Acquire);
            if s == ticket {
                break true;
            }
            if s > ticket {
                break false;
            }
            bus_wait.wait();
        };
        if !reached_turn {
            self.tickets[who].store(TICKET_NONE, Ordering::Release);
            return None;
        }
        let mut claim_wait = Waiter::new();
        let bus_generation = loop {
            if let Some(g) = self.bus.try_claim(who, self.clock.deadline_from_now()) {
                break Some(g);
            }
            if self.serving.load(Ordering::Acquire) != ticket {
                break None;
            }
            claim_wait.wait();
        };
        let Some(bus_generation) = bus_generation else {
            self.tickets[who].store(TICKET_NONE, Ordering::Release);
            return None;
        };
        self.bus_generation[who].store(u64::from(bus_generation), Ordering::Release);
        // Confirm at bus-grant time; a lost reservation passes the bus on
        // and the probe fails instead of retrying.
        if !self.try_reserve() {
            self.pass_bus(who);
            return None;
        }
        // The reservation guarantees a vacant slot; contend for one. On a
        // grant the bus stays held through the transmission phase, exactly
        // as in `acquire` — the caller owes `end_transmission`.
        let origin = who * self.slots.len() / self.workers;
        let mut scan = Waiter::new();
        loop {
            if let Some(grant) = self.claim_slot_from(who, origin) {
                return Some(grant);
            }
            scan.wait();
        }
    }

    fn end_transmission(&self, who: WorkerId, _grant: BrokerGrant) {
        // Transmission done: vacate the bus lease and pass the turn on.
        self.pass_bus(who);
    }

    fn release_audited(
        &self,
        who: WorkerId,
        grant: BrokerGrant,
        audit: &mut dyn FnMut(usize, WorkerId),
    ) -> ReleaseOutcome {
        let slot = &self.slots[grant.resource];
        match slot.begin_unclaim(who, grant.generation) {
            UnclaimStart::Begun => {
                audit(grant.resource, who);
                let vacated = slot.finish_unclaim();
                if !vacated.to_faulted {
                    self.free.fetch_add(1, Ordering::Release);
                }
                ReleaseOutcome::Released
            }
            UnclaimStart::Stale => ReleaseOutcome::Stale,
            UnclaimStart::Foreign => panic!(
                "release of resource {} by worker {who} who does not hold it",
                grant.resource
            ),
        }
    }

    fn reclaim_expired(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        if !self.clock.leases_expire() {
            return 0;
        }
        self.reclaim_at(self.clock.now_us(), true, audit)
    }

    fn reclaim_all(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        // `u64::MAX` beats every deadline — shutdown only, workers joined.
        self.reclaim_at(u64::MAX, false, audit)
    }

    fn set_resource_faulted(&self, resource: usize, down: bool) {
        let slot = &self.slots[resource];
        if !down {
            if slot.clear_faulted() == lease::RepairOutcome::Repaired {
                // The repaired slot is grantable again: its credit returns
                // to the status word.
                self.free.fetch_add(1, Ordering::Release);
            }
            return;
        }
        // Faulting must keep the reservation invariant `free <= vacant
        // slots` at all times, so a vacant slot's credit is *reserved
        // first* and only then converted into the fault. If the slot gets
        // claimed between the two steps, the fault parks on the holder
        // (whose own reservation pays for the slot) and our excess
        // reservation is refunded.
        let mut waiter = Waiter::new();
        loop {
            match lease::owner_of(slot.load()) {
                lease::FAULTED => return,
                NO_OWNER => {
                    if self.try_reserve() {
                        match slot.set_faulted() {
                            lease::FaultOutcome::WasVacant => return,
                            lease::FaultOutcome::Parked | lease::FaultOutcome::AlreadyFaulted => {
                                self.free.fetch_add(1, Ordering::Release);
                                return;
                            }
                        }
                    }
                    // free == 0 with a vacant slot is a transient: an
                    // in-flight reserver is about to claim some slot.
                    // Retry with backoff.
                    waiter.wait();
                }
                _ => {
                    // Held or mid-reclaim: park the fault on the word; it
                    // applies (and consumes the holder's credit) when the
                    // slot vacates.
                    if slot.set_faulted() != lease::FaultOutcome::WasVacant {
                        return;
                    }
                    // The slot vacated between the load and the fault —
                    // it went vacant→FAULTED without a reserved credit;
                    // undo and retry through the vacant path.
                    slot.clear_faulted();
                    waiter.wait();
                }
            }
        }
    }

    fn available_resources(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| lease::owner_of(s.load()) == NO_OWNER)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_every_resource_then_blocks_until_stopped() {
        let b = SbusBroker::new(4, 2);
        let ctl = RunControl::new();
        let g0 = b.acquire(0, &ctl).expect("free");
        b.end_transmission(0, g0);
        let g1 = b.acquire(1, &ctl).expect("free");
        b.end_transmission(1, g1);
        assert_ne!(g0.resource, g1.resource, "distinct resources");
        assert_eq!(b.free_count(), 0);
        // A third acquire blocks on the empty status word; stopping the
        // control unblocks it as None.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(2, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block while free == 0");
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        b.release(0, g0);
        b.release(1, g1);
        assert_eq!(b.free_count(), 2);
        assert_eq!(b.available_resources(), 2);
    }

    #[test]
    fn bus_is_held_through_transmission() {
        let b = SbusBroker::new(2, 2);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        // Worker 1's ticket is behind worker 0's un-passed bus even though
        // a resource is free; end_transmission passes the bus on.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(1, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block while the bus is held");
            b.end_transmission(0, g);
            let g1 = handle.join().expect("no panic").expect("granted");
            b.end_transmission(1, g1);
            b.release(1, g1);
        });
        b.release(0, g);
    }

    #[test]
    fn stopped_control_rejects_before_taking_a_ticket() {
        let b = SbusBroker::new(2, 1);
        let ctl = RunControl::new();
        ctl.stop();
        assert_eq!(b.acquire(0, &ctl), None);
        assert_eq!(b.next_ticket.load(Ordering::Relaxed), 0, "no ticket hole");
        assert_eq!(b.free_count(), 1, "no reservation leaked");
    }

    #[test]
    fn reclaim_repairs_slot_bus_and_status_word() {
        let b = SbusBroker::with_lease(3, 2, Duration::from_micros(1));
        let ctl = RunControl::new();
        // Worker 0 "dies" mid-transmission: holds a slot AND the bus.
        let g = b.acquire(0, &ctl).expect("free");
        std::thread::sleep(Duration::from_millis(2));
        let mut evicted = Vec::new();
        let n = b.reclaim_expired(&mut |res, who| evicted.push((res, who)));
        assert_eq!(n, 1);
        assert_eq!(evicted, vec![(g.resource, 0)]);
        assert_eq!(b.free_count(), 2, "status word repaired");
        assert_eq!(b.available_resources(), 2);
        // The queue is not wedged: another worker acquires normally.
        let g1 = b.acquire(1, &ctl).expect("bus repaired");
        b.end_transmission(1, g1);
        // The dead worker's late protocol calls are harmlessly stale.
        b.end_transmission(0, g);
        assert_eq!(
            b.release_audited(0, g, &mut |_, _| {}),
            ReleaseOutcome::Stale
        );
        b.release(1, g1);
        assert_eq!(b.free_count(), 2);
    }

    #[test]
    fn dead_queued_ticket_is_skipped_after_a_full_lease() {
        let b = SbusBroker::with_lease(2, 1, Duration::from_micros(500));
        // Simulate a worker that died right after taking a ticket: the
        // queue head never claims the bus.
        let dead_ticket = b.next_ticket.fetch_add(1, Ordering::Relaxed);
        b.tickets[0].store(dead_ticket, Ordering::Release);
        // First supervisor pass arms the watchdog; a pass after a full
        // lease of no movement skips the dead ticket.
        b.reclaim_expired(&mut |_, _| {});
        assert_eq!(b.serving.load(Ordering::Relaxed), 0, "armed, not skipped");
        std::thread::sleep(Duration::from_millis(2));
        b.reclaim_expired(&mut |_, _| {});
        assert_eq!(b.serving.load(Ordering::Relaxed), 1, "dead ticket skipped");
        // The queue works again end to end.
        let ctl = RunControl::new();
        let g = b.acquire(1, &ctl).expect("queue unwedged");
        b.end_transmission(1, g);
        b.release(1, g);
    }

    #[test]
    fn faulting_a_vacant_slot_consumes_its_credit() {
        let b = SbusBroker::new(2, 2);
        b.set_resource_faulted(0, true);
        assert_eq!(b.free_count(), 1, "fault consumed one credit");
        assert_eq!(b.available_resources(), 1);
        b.set_resource_faulted(0, false);
        assert_eq!(b.free_count(), 2, "repair returned it");
    }

    #[test]
    fn fault_parked_on_a_held_slot_applies_at_release() {
        let b = SbusBroker::new(2, 1);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        b.end_transmission(0, g);
        b.set_resource_faulted(g.resource, true);
        assert_eq!(b.free_count(), 0, "holder's credit already out");
        b.release(0, g);
        assert_eq!(b.free_count(), 0, "credit consumed by the parked fault");
        assert_eq!(b.available_resources(), 0);
        b.set_resource_faulted(g.resource, false);
        assert_eq!(b.free_count(), 1);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_is_a_protocol_violation() {
        let b = SbusBroker::new(2, 1);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        b.end_transmission(0, g);
        b.release(1, g);
    }

    #[test]
    fn try_acquire_grants_then_fails_fast_on_exhaustion() {
        let b = SbusBroker::new(2, 1);
        let g = b.try_acquire(0).expect("pool has a slot");
        b.end_transmission(0, g);
        // Exhausted: the probe answers from the status word without
        // queueing for the bus.
        let tickets_before = b.next_ticket.load(Ordering::Relaxed);
        assert_eq!(b.try_acquire(1), None);
        assert_eq!(
            b.next_ticket.load(Ordering::Relaxed),
            tickets_before,
            "no ticket taken for an exhausted-pool probe"
        );
        b.release(0, g);
        let g1 = b.try_acquire(1).expect("freed slot grantable again");
        b.end_transmission(1, g1);
        b.release(1, g1);
        assert_eq!(b.free_count(), 1);
    }
}
