//! The shared-bus discipline at runtime: a broadcast free-count status
//! word plus a ticket arbiter.
//!
//! Section III's single bus serializes transmissions; which waiting
//! processor transmits next is the arbiter's choice. The hardware's daisy
//! chain favors low indices, and the paper points at POLYP's circulating
//! token as the fair fix — the runtime equivalent of a circulating grant is
//! a **ticket queue**: every acquire takes the next ticket, the bus serves
//! tickets in order, and the mean delay is unchanged (service is
//! exponential and the bus is work-conserving, so the mean is
//! discipline-insensitive — exactly why the [`SharedBusChain`] oracle does
//! not need to know which arbiter the runtime uses).
//!
//! [`SharedBusChain`]: ../rsin_queueing/struct.SharedBusChain.html
//!
//! ## Protocol
//!
//! - `free` is the broadcast status word every processor snoops: the number
//!   of currently free resources. A releaser vacates its resource slot
//!   (`Release` store) *before* incrementing `free` (`Release` RMW); an
//!   acquirer decrements `free` (`Acquire` RMW) *before* scanning for a
//!   slot. The counter therefore never exceeds the number of vacant slots,
//!   so a successful decrement is a reservation: the slot scan below it
//!   cannot fail permanently.
//! - `serving`/`next_ticket` implement the bus itself. The ticket holder
//!   keeps the bus through its transmission phase;
//!   [`SbusBroker::end_transmission`] passes the bus on (`Release`
//!   increment, matching the waiters' `Acquire` loads).
//!
//! Ordering matters. Section III's bus carries transmissions, nothing
//! else, and a processor is granted only when the bus AND a resource are
//! free at the same instant. The runtime reproduces that with a
//! snoop → ticket → confirm sequence: no bus request while the status word
//! reads zero; the reservation is confirmed only at bus-grant time; and a
//! lost race passes the bus straight on and retries with backoff. The two
//! tempting simplifications are both measurably wrong against the
//! chain/DES predictions — waiting for a resource *while holding* the bus
//! blocks every other transmission behind a busy pool, and reserving
//! *before* queueing for the bus parks resources idle for the whole bus
//! wait (which destabilizes the system well before the model says it
//! should saturate). The cross-validation suite is what polices this
//! equivalence.
//!
//! An acquire aborted by [`RunControl`] still advances `serving` once its
//! turn comes, so a stopping run unwinds the whole ticket queue instead of
//! wedging it.

use crate::{Broker, BrokerGrant, RunControl, Waiter, WorkerId, VACANT};
use std::sync::atomic::{AtomicU64, Ordering};

/// Runtime shared-bus broker: one bus, `workers` processors, `resources`
/// identical resources.
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, RunControl, SbusBroker};
///
/// let broker = SbusBroker::new(2, 1);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(0, &ctl).expect("uncontended");
/// broker.end_transmission(0, grant);
/// broker.release(0, grant);
/// ```
#[derive(Debug)]
pub struct SbusBroker {
    workers: usize,
    /// Broadcast free-resource count (the status word of Section III).
    free: AtomicU64,
    /// Next ticket to hand out.
    next_ticket: AtomicU64,
    /// Ticket currently owning the bus.
    serving: AtomicU64,
    /// Per-resource owner words (`VACANT` or the holder's `WorkerId`).
    slots: Vec<AtomicU64>,
}

impl SbusBroker {
    /// Creates a broker with all resources free.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `resources` is zero.
    #[must_use]
    pub fn new(workers: usize, resources: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(resources > 0, "need at least one resource");
        SbusBroker {
            workers,
            free: AtomicU64::new(resources as u64),
            next_ticket: AtomicU64::new(0),
            serving: AtomicU64::new(0),
            slots: (0..resources).map(|_| AtomicU64::new(VACANT)).collect(),
        }
    }

    /// Current value of the broadcast status word.
    #[must_use]
    pub fn free_count(&self) -> u64 {
        self.free.load(Ordering::Acquire)
    }

    /// Tries to reserve one resource by decrementing the status word.
    fn try_reserve(&self) -> bool {
        let mut f = self.free.load(Ordering::Acquire);
        while f > 0 {
            match self
                .free
                .compare_exchange_weak(f, f - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(now) => f = now,
            }
        }
        false
    }
}

impl Broker for SbusBroker {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.slots.len()
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let mut waiter = Waiter::new();
        loop {
            // Phase 1: snoop the broadcast status word; don't even request
            // the bus while it reads zero (the paper's retry-on-status-
            // change). Only the snoop is free-running — everything past it
            // is one bounded bus turn.
            if ctl.is_stopped() {
                return None;
            }
            if self.free.load(Ordering::Acquire) == 0 {
                waiter.wait();
                continue;
            }
            // Phase 2: queue for the bus. Once the ticket is taken the
            // turn must be waited out even on stop — tickets ahead of us
            // are either transmissions (which end) or probes/aborters
            // (which pass), so the wait is bounded and skipping our own
            // pass would wedge everyone behind us.
            let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
            let mut bus_wait = Waiter::new();
            while self.serving.load(Ordering::Acquire) != ticket {
                bus_wait.wait();
            }
            if ctl.is_stopped() {
                self.serving.fetch_add(1, Ordering::Release);
                return None;
            }
            // Phase 3: with the bus held, confirm the resource the status
            // word advertised. Reserving at bus-grant time is what keeps
            // the runtime equivalent to the model, where a processor is
            // granted only when bus AND resource are free at the same
            // instant; losing the race just passes the bus on and retries,
            // so the bus itself never blocks on busy resources.
            if !self.try_reserve() {
                self.serving.fetch_add(1, Ordering::Release);
                waiter.wait();
                continue;
            }
            // The reservation guarantees a vacant slot exists; contend for
            // one. A failed CAS only ever means another reserver claimed
            // that particular slot — rescan.
            let mut scan = Waiter::new();
            loop {
                for (i, slot) in self.slots.iter().enumerate() {
                    if slot.load(Ordering::Relaxed) == VACANT
                        && slot
                            .compare_exchange(
                                VACANT,
                                who as u64,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        return Some(BrokerGrant { resource: i });
                    }
                }
                scan.wait();
            }
        }
    }

    fn end_transmission(&self, _who: WorkerId, _grant: BrokerGrant) {
        // Transmission done: pass the bus to the next ticket.
        self.serving.fetch_add(1, Ordering::Release);
    }

    fn release(&self, who: WorkerId, grant: BrokerGrant) {
        let ok = self.slots[grant.resource]
            .compare_exchange(who as u64, VACANT, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        assert!(
            ok,
            "release of resource {} by worker {who} who does not hold it",
            grant.resource
        );
        self.free.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_every_resource_then_blocks_until_stopped() {
        let b = SbusBroker::new(4, 2);
        let ctl = RunControl::new();
        let g0 = b.acquire(0, &ctl).expect("free");
        b.end_transmission(0, g0);
        let g1 = b.acquire(1, &ctl).expect("free");
        b.end_transmission(1, g1);
        assert_ne!(g0.resource, g1.resource, "distinct resources");
        assert_eq!(b.free_count(), 0);
        // A third acquire blocks on the empty status word; stopping the
        // control unblocks it as None.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(2, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block while free == 0");
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        b.release(0, g0);
        b.release(1, g1);
        assert_eq!(b.free_count(), 2);
    }

    #[test]
    fn bus_is_held_through_transmission() {
        let b = SbusBroker::new(2, 2);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        // Worker 1's ticket is behind worker 0's un-passed bus even though
        // a resource is free; end_transmission passes the bus on.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(1, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block while the bus is held");
            b.end_transmission(0, g);
            let g1 = handle.join().expect("no panic").expect("granted");
            b.end_transmission(1, g1);
            b.release(1, g1);
        });
        b.release(0, g);
    }

    #[test]
    fn stopped_control_rejects_before_taking_a_ticket() {
        let b = SbusBroker::new(2, 1);
        let ctl = RunControl::new();
        ctl.stop();
        assert_eq!(b.acquire(0, &ctl), None);
        assert_eq!(b.next_ticket.load(Ordering::Relaxed), 0, "no ticket hole");
        assert_eq!(b.free_count(), 1, "no reservation leaked");
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_is_a_protocol_violation() {
        let b = SbusBroker::new(2, 1);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        b.end_transmission(0, g);
        b.release(1, g);
    }
}
