//! # rsin-broker — a concurrent runtime implementation of the paper's
//! distributed scheduler
//!
//! Everything else in this workspace *models* Wah's distributed resource
//! scheduling: the Markov chains and the discrete-event simulator predict
//! what the hardware would do. This crate *executes* it — the three RSIN
//! scheduling disciplines of the paper reimplemented as lock-free runtime
//! algorithms contended by real OS threads:
//!
//! - [`SbusBroker`] — the shared bus: a broadcast free-count status word
//!   plus a ticket arbiter that serializes transmissions in FIFO order
//!   (Section III's single bus, with the asymmetric daisy chain replaced by
//!   the fair ticket queue).
//! - [`XbarBroker`] — the distributed-scheduling crossbar: one atomic claim
//!   word per bus column and a request bitmask per row, arbitrated by the
//!   Table-I request-cycle wave in rank form. Both the paper's
//!   fixed-priority (low index wins) baseline and the POLYP-style
//!   token-rotation fairness variant are implemented.
//! - [`OmegaBroker`] — the circuit-switched Omega network: stage-by-stage
//!   link claiming along the destination-tag route from
//!   [`rsin_topology::OmegaTopology`], with claim-or-rollback conflict
//!   resolution (no worker ever waits while holding a partial path, so the
//!   protocol cannot deadlock).
//!
//! On top of the disciplines sits a closed-loop [`loadgen`]: worker threads
//! replay per-thread Poisson arrival schedules (independent
//! [`rsin_des::SimRng`] streams), acquire → hold → release against a broker
//! in real time, and record grant latency into per-thread
//! [`rsin_des::stats::Welford`]/[`rsin_des::stats::Histogram`] shards that
//! merge losslessly after the run. An independent [`loadgen::Ledger`]
//! audits every grant so a broken claim protocol is detected, not assumed
//! away.
//!
//! The headline deliverable is **cross-validation**: at matched offered
//! load the broker's measured mean grant delay agrees with the
//! `SharedBusChain` / `Mmr` analytic predictions and with the workspace's
//! DES — see `tests/cross_validation.rs` and DESIGN.md §8.
//!
//! ## Waiting discipline (no lost wakeups by construction)
//!
//! Blocked acquirers never rely on a wakeup being delivered: every wait is
//! a poll loop ([`Waiter`]) that re-reads the shared state itself —
//! briefly spinning, then yielding, then sleeping in short bounded
//! intervals. A state change can therefore never be missed (there is no
//! wakeup to lose); the cost is at most one poll interval of added
//! latency, which the cross-validation budgets for. This also keeps the
//! broker honest on a single-core host, where hard spinning would starve
//! the very holder being waited on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod loadgen;
mod omega;
mod sbus;
mod xbar;

pub use loadgen::{
    run_load, run_saturated, Ledger, LoadConfig, LoadReport, SaturatedReport, WorkerShard,
};
pub use omega::OmegaBroker;
pub use sbus::SbusBroker;
pub use xbar::{XbarBroker, XbarPolicy};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Sentinel for "no owner" in every claim word of the crate.
pub const VACANT: u64 = u64::MAX;

/// Identity of a worker thread, `0 .. workers`.
pub type WorkerId = usize;

/// A granted claim on one resource.
///
/// The grant is a plain value: disciplines that need per-grant bookkeeping
/// (the Omega path, the SBUS ticket) recompute it from `(worker, resource)`
/// — routes are deterministic and tickets live in the broker — so grants
/// cannot go stale or be forged across resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrokerGrant {
    /// Index of the granted resource.
    pub resource: usize,
}

/// Cooperative shutdown/abort flag shared by all workers of a run.
///
/// [`Broker::acquire`] polls it: a stopped control makes every blocked
/// acquire return `None` promptly, so a run can always be wound down — the
/// liveness watchdogs in the stress tests rely on this.
#[derive(Debug, Default)]
pub struct RunControl {
    stop: AtomicBool,
}

impl RunControl {
    /// A control that is not stopped.
    #[must_use]
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Signals every poller to bail out.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether [`RunControl::stop`] has been called.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Escalating poll-wait: spin briefly, yield a few times, then sleep in
/// short bounded intervals.
///
/// The sleep interval is capped at [`Waiter::MAX_SLEEP`], so a waiter
/// re-examines the world at least every 200 µs — that bound is what makes
/// "no lost wakeups" structural rather than hoped-for.
#[derive(Debug, Default)]
pub struct Waiter {
    rounds: u32,
}

impl Waiter {
    /// Longest a waiter ever sleeps between polls.
    pub const MAX_SLEEP: Duration = Duration::from_micros(200);

    /// A fresh waiter (starts in the spin phase).
    #[must_use]
    pub fn new() -> Self {
        Waiter::default()
    }

    /// One wait step; escalates from spinning through yielding to sleeping.
    pub fn wait(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
        if self.rounds <= 16 {
            std::hint::spin_loop();
        } else if self.rounds <= 32 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Self::MAX_SLEEP.min(Duration::from_micros(50) * self.rounds / 32));
        }
    }

    /// Back to the spin phase (call after making progress).
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// A runtime scheduling discipline: workers block in [`Broker::acquire`]
/// until a resource is granted, optionally hold the network circuit through
/// a transmission phase, then release.
///
/// Implementations must be safe to drive from `workers()` concurrent
/// threads, each using its own distinct [`WorkerId`]; a worker holds at
/// most one grant at a time (the paper's assumption (f)).
pub trait Broker: Sync {
    /// Number of workers (processors) the broker arbitrates.
    fn workers(&self) -> usize;

    /// Number of resources the broker hands out.
    fn resources(&self) -> usize;

    /// Blocks until a resource is granted to `who`, or until `ctl` stops
    /// (returning `None` — no statistics should be recorded for an aborted
    /// acquire).
    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant>;

    /// Ends the transmission phase: releases whatever network capacity the
    /// discipline holds during transmission (the SBUS bus, the Omega path)
    /// while keeping the resource itself.
    fn end_transmission(&self, who: WorkerId, grant: BrokerGrant);

    /// Releases the resource.
    ///
    /// Callers must have called [`Broker::end_transmission`] first.
    fn release(&self, who: WorkerId, grant: BrokerGrant);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_control_round_trips() {
        let ctl = RunControl::new();
        assert!(!ctl.is_stopped());
        ctl.stop();
        assert!(ctl.is_stopped());
    }

    #[test]
    fn waiter_escalates_and_resets() {
        let mut w = Waiter::new();
        for _ in 0..40 {
            w.wait();
        }
        assert!(w.rounds > 32);
        w.reset();
        assert_eq!(w.rounds, 0);
    }
}
