//! # rsin-broker — a concurrent runtime implementation of the paper's
//! distributed scheduler
//!
//! Everything else in this workspace *models* Wah's distributed resource
//! scheduling: the Markov chains and the discrete-event simulator predict
//! what the hardware would do. This crate *executes* it — the three RSIN
//! scheduling disciplines of the paper reimplemented as lock-free runtime
//! algorithms contended by real OS threads:
//!
//! - [`SbusBroker`] — the shared bus: a broadcast free-count status word
//!   plus a ticket arbiter that serializes transmissions in FIFO order
//!   (Section III's single bus, with the asymmetric daisy chain replaced by
//!   the fair ticket queue).
//! - [`XbarBroker`] — the distributed-scheduling crossbar: one atomic claim
//!   word per bus column and a request bitmask per row, arbitrated by the
//!   Table-I request-cycle wave in rank form. Both the paper's
//!   fixed-priority (low index wins) baseline and the POLYP-style
//!   token-rotation fairness variant are implemented.
//! - [`OmegaBroker`] — the circuit-switched Omega network: stage-by-stage
//!   link claiming along the destination-tag route from
//!   [`rsin_topology::OmegaTopology`], with claim-or-rollback conflict
//!   resolution (no worker ever waits while holding a partial path, so the
//!   protocol cannot deadlock).
//!
//! On top of the disciplines sits a closed-loop [`loadgen`]: worker threads
//! replay per-thread Poisson arrival schedules (independent
//! [`rsin_des::SimRng`] streams), acquire → hold → release against a broker
//! in real time, and record grant latency into per-thread
//! [`rsin_des::stats::Welford`]/[`rsin_des::stats::Histogram`] shards that
//! merge losslessly after the run. An independent [`loadgen::Ledger`]
//! audits every grant so a broken claim protocol is detected, not assumed
//! away.
//!
//! The headline deliverable is **cross-validation**: at matched offered
//! load the broker's measured mean grant delay agrees with the
//! `SharedBusChain` / `Mmr` analytic predictions and with the workspace's
//! DES — see `tests/cross_validation.rs` and DESIGN.md §8.
//!
//! ## Waiting discipline (no lost wakeups by construction)
//!
//! Blocked acquirers never rely on a wakeup being delivered: every wait is
//! a poll loop ([`Waiter`]) that re-reads the shared state itself —
//! briefly spinning, then yielding, then sleeping in short bounded
//! intervals. A state change can therefore never be missed (there is no
//! wakeup to lose); the cost is at most one poll interval of added
//! latency, which the cross-validation budgets for. This also keeps the
//! broker honest on a single-core host, where hard spinning would starve
//! the very holder being waited on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod central;
pub mod chaos;
pub mod lease;
pub mod loadgen;
pub mod net;
mod omega;
mod sbus;
mod shard;
mod xbar;

pub use central::CentralBroker;
pub use chaos::{ChaosOptions, ChaosPlan, ChaosSpec, ClientChaos, ClientEvent};
pub use loadgen::{
    run_load, run_load_chaos, run_saturated, run_saturated_chaos, ChaosReport, GrantGuard, Ledger,
    LoadConfig, LoadReport, SaturatedChaosReport, SaturatedReport, WorkerShard,
};
pub use omega::OmegaBroker;
pub use sbus::SbusBroker;
pub use shard::ShardedBroker;
pub use xbar::{XbarBroker, XbarPolicy};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Sentinel for "no owner" in the Omega link claim words (resource claim
/// words use the richer [`lease`] encoding).
pub const VACANT: u64 = u64::MAX;

/// Identity of a worker thread, `0 .. workers`.
pub type WorkerId = usize;

/// A granted claim on one resource.
///
/// The grant is a plain value: disciplines that need per-grant bookkeeping
/// (the Omega path, the SBUS ticket) recompute it from `(worker, resource)`
/// — routes are deterministic and tickets live in the broker — so grants
/// cannot go stale or be forged across resources. The `generation` ties the
/// grant to one *lease* of the resource: if a crashed holder's lease is
/// reclaimed and the resource re-granted, the old grant's generation no
/// longer matches and its late release is refused instead of corrupting
/// the new holder's claim (see the [`lease`] module).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrokerGrant {
    /// Index of the granted resource.
    pub resource: usize,
    /// Lease generation this grant belongs to.
    pub generation: u32,
}

/// Cooperative shutdown/abort flag shared by all workers of a run.
///
/// [`Broker::acquire`] polls it: a stopped control makes every blocked
/// acquire return `None` promptly, so a run can always be wound down — the
/// liveness watchdogs in the stress tests rely on this.
#[derive(Debug, Default)]
pub struct RunControl {
    stop: AtomicBool,
}

impl RunControl {
    /// A control that is not stopped.
    #[must_use]
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Signals every poller to bail out.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether [`RunControl::stop`] has been called.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Escalating poll-wait: spin briefly, yield a few times, then sleep in
/// short bounded intervals.
///
/// The sleep interval is capped at [`Waiter::MAX_SLEEP`], so a waiter
/// re-examines the world at least every 200 µs — that bound is what makes
/// "no lost wakeups" structural rather than hoped-for.
#[derive(Debug, Default)]
pub struct Waiter {
    rounds: u32,
}

impl Waiter {
    /// Longest a waiter ever sleeps between polls.
    pub const MAX_SLEEP: Duration = Duration::from_micros(200);

    /// A fresh waiter (starts in the spin phase).
    #[must_use]
    pub fn new() -> Self {
        Waiter::default()
    }

    /// One wait step; escalates from spinning through yielding to sleeping.
    pub fn wait(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
        if self.rounds <= 16 {
            std::hint::spin_loop();
        } else if self.rounds <= 32 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Self::MAX_SLEEP.min(Duration::from_micros(50) * self.rounds / 32));
        }
    }

    /// Back to the spin phase (call after making progress).
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// How a release (or audited release) ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The caller held the grant and the resource is free again.
    Released,
    /// The grant's generation was stale: the lease had already been
    /// reclaimed (the holder was presumed crashed). The release is a
    /// harmless no-op — the reclaimer already ran the audit hook.
    Stale,
}

/// A runtime scheduling discipline: workers block in [`Broker::acquire`]
/// until a resource is granted, optionally hold the network circuit through
/// a transmission phase, then release.
///
/// Implementations must be safe to drive from `workers()` concurrent
/// threads, each using its own distinct [`WorkerId`]; a worker holds at
/// most one grant at a time (the paper's assumption (f)).
///
/// ## Leases and reclamation
///
/// Every grant is a lease (see the [`lease`] module): brokers built with a
/// `with_lease` constructor stamp each grant with a deadline, and a
/// supervisor may call [`Broker::reclaim_expired`] to recover resources
/// from crashed or stalled holders. The `audit` hooks exist so external
/// bookkeeping (the [`loadgen::Ledger`]) is updated *atomically enough*:
/// the hook runs while the slot is still unclaimable (the `RECLAIMING`
/// phase), so a new grant of the same resource can never be recorded
/// before the old one's end. Brokers built with plain `new` never expire
/// leases and behave exactly like the pre-lease protocols.
pub trait Broker: Sync {
    /// Number of workers (processors) the broker arbitrates.
    fn workers(&self) -> usize;

    /// Number of resources the broker hands out.
    fn resources(&self) -> usize;

    /// Blocks until a resource is granted to `who`, or until `ctl` stops
    /// (returning `None` — no statistics should be recorded for an aborted
    /// acquire).
    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant>;

    /// One bounded arbitration attempt: grants a resource to `who` if the
    /// discipline can do so now, or reports `None` when the pool looks
    /// exhausted or the attempt loses its claim races. Unlike
    /// [`Broker::acquire`] this never waits for capacity to free up — it
    /// may still wait out bounded protocol turns (the SBUS bus queue), but
    /// a probe of an exhausted pool returns promptly. This is the probe
    /// primitive of [`ShardedBroker`]'s overflow-stealing path; callers
    /// that get a grant owe the usual `end_transmission` + `release`.
    fn try_acquire(&self, who: WorkerId) -> Option<BrokerGrant>;

    /// Ends the transmission phase: releases whatever network capacity the
    /// discipline holds during transmission (the SBUS bus, the Omega path)
    /// while keeping the resource itself. Tolerates a stale grant (the
    /// circuit was already reclaimed).
    fn end_transmission(&self, who: WorkerId, grant: BrokerGrant);

    /// Releases the resource, running `audit(resource, who)` while the
    /// slot is still unclaimable, and reports whether the grant was live.
    ///
    /// Callers must have called [`Broker::end_transmission`] first.
    ///
    /// # Panics
    ///
    /// Panics if the grant's generation is live but held by a different
    /// worker — a forged release is a protocol violation, not a race.
    fn release_audited(
        &self,
        who: WorkerId,
        grant: BrokerGrant,
        audit: &mut dyn FnMut(usize, WorkerId),
    ) -> ReleaseOutcome;

    /// Releases the resource with no audit hook.
    fn release(&self, who: WorkerId, grant: BrokerGrant) {
        self.release_audited(who, grant, &mut |_, _| {});
    }

    /// Reclaims every resource whose lease has expired, running
    /// `audit(resource, evicted_holder)` per reclaim while the slot is
    /// unclaimable; returns the number reclaimed. Also repairs any
    /// discipline-internal state the dead holder wedged (the SBUS bus
    /// turn, Omega circuit links, the rotating token). No-op for brokers
    /// without expiring leases.
    fn reclaim_expired(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        let _ = audit;
        0
    }

    /// Forcibly reclaims every held resource regardless of deadline —
    /// the shutdown path, for after all worker threads have been joined
    /// (a live holder would be evicted). Returns the number reclaimed.
    fn reclaim_all(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        let _ = audit;
        0
    }

    /// Applies (`down = true`) or repairs (`down = false`) a resource
    /// fault: a down resource stops being granted. Faulting a *held*
    /// resource parks the fault until the holder's release or reclaim.
    /// Brokers that do not model resource faults ignore the call.
    fn set_resource_faulted(&self, resource: usize, down: bool) {
        let _ = (resource, down);
    }

    /// Number of resources currently grantable (not held, not mid-reclaim,
    /// not faulted). After a quiescent shutdown — workers joined, faults
    /// repaired, [`Broker::reclaim_all`] run — this must equal
    /// [`Broker::resources`], or grants leaked.
    fn available_resources(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_control_round_trips() {
        let ctl = RunControl::new();
        assert!(!ctl.is_stopped());
        ctl.stop();
        assert!(ctl.is_stopped());
    }

    #[test]
    fn waiter_escalates_and_resets() {
        let mut w = Waiter::new();
        for _ in 0..40 {
            w.wait();
        }
        assert!(w.rounds > 32);
        w.reset();
        assert_eq!(w.rounds, 0);
    }
}
