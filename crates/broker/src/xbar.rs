//! The distributed-scheduling crossbar at runtime: per-column claim words
//! arbitrated by the Table-I request-cycle wave in rank form.
//!
//! Section IV's crossbar fuses the scheduler into the fabric: every cell
//! `(row, column)` holds a requests flip-flop, and a grant wave sweeps the
//! array each cycle so that the highest-priority requesting row of each
//! free column wins it. The runtime settles the same wave with atomics:
//!
//! - `requests` is a bitmask of rows currently requesting (the OR of the
//!   row request lines). A worker raises its bit before arbitrating and
//!   lowers it after it wins or aborts.
//! - `owners[c]` is the claim word of column `c` (`VACANT` or the holder).
//! - Arbitration is by **rank**: a worker reads the request mask, computes
//!   its rank among the requesters under the active [`XbarPolicy`], and
//!   claims the rank-th free column by CAS. When the mask and the free set
//!   are stable — which is exactly the saturated case where fairness
//!   matters — ranks are distinct, so each requester targets a different
//!   column and the wave settles without collisions; under churn a lost CAS
//!   just re-runs the wave.
//!
//! [`XbarPolicy::FixedPriority`] ranks by row index (the paper's baseline
//! wave, low index wins) and **starves** high rows under saturation.
//! [`XbarPolicy::TokenRotation`] ranks by circular distance from a rotating
//! token (the POLYP fix, Section IV-B): the winner hands the token to its
//! successor, so every requester's wait is bounded by one rotation. The
//! fairness regression test in `tests/fairness.rs` asserts both behaviors
//! against the gate-level simulator in `rsin-xbar`.
//!
//! Crossbar columns are dedicated buses, so [`Broker::end_transmission`] is
//! a no-op here: the column is the circuit *and* the resource claim, held
//! from grant to release.

use crate::{Broker, BrokerGrant, RunControl, Waiter, WorkerId, VACANT};
use std::sync::atomic::{AtomicU64, Ordering};

/// Arbitration policy of the request-cycle wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XbarPolicy {
    /// Low row index wins (the paper's baseline daisy-chain priority).
    /// Starves high rows at saturation.
    FixedPriority,
    /// A circulating token sets the priority origin; the winner advances
    /// it. Bounds every requester's wait (POLYP-style fairness).
    TokenRotation,
}

/// Runtime crossbar broker: `workers` rows by `resources` columns.
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, RunControl, XbarBroker, XbarPolicy};
///
/// let broker = XbarBroker::new(4, 2, XbarPolicy::TokenRotation);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(1, &ctl).expect("uncontended");
/// broker.end_transmission(1, grant);
/// broker.release(1, grant);
/// ```
#[derive(Debug)]
pub struct XbarBroker {
    workers: usize,
    policy: XbarPolicy,
    /// OR of the row request lines (bit per worker).
    requests: AtomicU64,
    /// Priority origin for [`XbarPolicy::TokenRotation`].
    token: AtomicU64,
    /// Per-column claim words (`VACANT` or the holder's `WorkerId`).
    owners: Vec<AtomicU64>,
}

impl XbarBroker {
    /// Creates a broker with every column free.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or exceeds 64 (the request mask is one
    /// machine word, like the hardware's request lines), or if `resources`
    /// is zero.
    #[must_use]
    pub fn new(workers: usize, resources: usize, policy: XbarPolicy) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(workers <= 64, "request mask is one machine word");
        assert!(resources > 0, "need at least one resource");
        XbarBroker {
            workers,
            policy,
            requests: AtomicU64::new(0),
            token: AtomicU64::new(0),
            owners: (0..resources).map(|_| AtomicU64::new(VACANT)).collect(),
        }
    }

    /// The active arbitration policy.
    #[must_use]
    pub fn policy(&self) -> XbarPolicy {
        self.policy
    }

    /// Rank of `who` among the requesters in `mask` under the active
    /// policy: the number of requesters with strictly higher priority.
    fn rank(&self, who: WorkerId, mask: u64) -> u32 {
        match self.policy {
            // Requesters below `who` outrank it.
            XbarPolicy::FixedPriority => (mask & ((1u64 << who) - 1)).count_ones(),
            // Requesters circularly between the token and `who` outrank it.
            XbarPolicy::TokenRotation => {
                let n = self.workers;
                let token = self.token.load(Ordering::Relaxed) as usize % n;
                let pos = (who + n - token) % n;
                (0..n)
                    .filter(|&j| mask & (1u64 << j) != 0 && (j + n - token) % n < pos)
                    .count() as u32
            }
        }
    }
}

impl Broker for XbarBroker {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.owners.len()
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let bit = 1u64 << who;
        // Raise our request line (Release publishes it to concurrent
        // rank computations; AcqRel so we also see the current mask).
        let prior = self.requests.fetch_or(bit, Ordering::AcqRel);
        debug_assert_eq!(prior & bit, 0, "worker already requesting");
        let mut waiter = Waiter::new();
        loop {
            if ctl.is_stopped() {
                self.requests.fetch_and(!bit, Ordering::AcqRel);
                return None;
            }
            // One settling pass of the grant wave, from this row's view.
            let mask = self.requests.load(Ordering::Acquire);
            let my_rank = self.rank(who, mask);
            let mut free_seen = 0;
            let mut claimed = None;
            for (c, owner) in self.owners.iter().enumerate() {
                if owner.load(Ordering::Relaxed) != VACANT {
                    continue;
                }
                if free_seen == my_rank {
                    if owner
                        .compare_exchange(VACANT, who as u64, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        claimed = Some(c);
                    }
                    // Won or lost, this wave is over; re-rank on a retry.
                    break;
                }
                free_seen += 1;
            }
            if let Some(c) = claimed {
                // Lower the request line, then pass the token on so the
                // next rotation starts after us.
                self.requests.fetch_and(!bit, Ordering::AcqRel);
                if self.policy == XbarPolicy::TokenRotation {
                    self.token
                        .store(((who + 1) % self.workers) as u64, Ordering::Relaxed);
                }
                return Some(BrokerGrant { resource: c });
            }
            waiter.wait();
        }
    }

    fn end_transmission(&self, _who: WorkerId, _grant: BrokerGrant) {
        // A crossbar column is a dedicated bus: nothing extra to free.
    }

    fn release(&self, who: WorkerId, grant: BrokerGrant) {
        let ok = self.owners[grant.resource]
            .compare_exchange(who as u64, VACANT, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        assert!(
            ok,
            "release of column {} by worker {who} who does not hold it",
            grant.resource
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_distinct_columns_up_to_capacity() {
        let b = XbarBroker::new(4, 3, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        let grants: Vec<_> = (0..3)
            .map(|w| b.acquire(w, &ctl).expect("column free"))
            .collect();
        let mut cols: Vec<_> = grants.iter().map(|g| g.resource).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3, "each grant a distinct column");
        // Fourth acquire must block until a column frees.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(3, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block while saturated");
            b.release(0, grants[0]);
            let g = handle.join().expect("no panic").expect("granted");
            assert_eq!(g.resource, grants[0].resource, "reuses the freed column");
            b.release(3, g);
        });
        b.release(1, grants[1]);
        b.release(2, grants[2]);
    }

    #[test]
    fn fixed_priority_ranks_by_row_index() {
        let b = XbarBroker::new(4, 1, XbarPolicy::FixedPriority);
        assert_eq!(b.rank(0, 0b1111), 0);
        assert_eq!(b.rank(3, 0b1111), 3);
        assert_eq!(b.rank(3, 0b1000), 0, "alone means top rank");
        assert_eq!(b.rank(2, 0b0101), 1);
    }

    #[test]
    fn token_rotation_ranks_from_the_token() {
        let b = XbarBroker::new(4, 1, XbarPolicy::TokenRotation);
        b.token.store(2, Ordering::Relaxed);
        // Priority order is 2, 3, 0, 1.
        assert_eq!(b.rank(2, 0b1111), 0);
        assert_eq!(b.rank(3, 0b1111), 1);
        assert_eq!(b.rank(0, 0b1111), 2);
        assert_eq!(b.rank(1, 0b1111), 3);
        // Non-requesters don't occupy ranks.
        assert_eq!(b.rank(1, 0b0010), 0);
    }

    #[test]
    fn winner_advances_the_token() {
        let b = XbarBroker::new(4, 1, XbarPolicy::TokenRotation);
        let ctl = RunControl::new();
        let g = b.acquire(2, &ctl).expect("free");
        assert_eq!(b.token.load(Ordering::Relaxed), 3);
        b.release(2, g);
    }

    #[test]
    fn stopped_control_clears_the_request_line() {
        let b = XbarBroker::new(2, 1, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        // Worker 1 blocks on the taken column; stop unwinds it.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(1, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block on a taken column");
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        assert_eq!(b.requests.load(Ordering::Relaxed), 0, "line lowered");
        b.release(0, g);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_is_a_protocol_violation() {
        let b = XbarBroker::new(2, 1, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        b.release(1, g);
    }
}
