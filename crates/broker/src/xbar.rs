//! The distributed-scheduling crossbar at runtime: per-column claim words
//! arbitrated by the Table-I request-cycle wave in rank form.
//!
//! Section IV's crossbar fuses the scheduler into the fabric: every cell
//! `(row, column)` holds a requests flip-flop, and a grant wave sweeps the
//! array each cycle so that the highest-priority requesting row of each
//! free column wins it. The runtime settles the same wave with atomics:
//!
//! - `requests` is a bitmask of rows currently requesting (the OR of the
//!   row request lines). A worker raises its bit before arbitrating and
//!   lowers it after it wins or aborts — a panic-safe guard lowers it on
//!   unwind, so a dying row cannot jam its request line high.
//! - `owners[c]` is the [`LeaseWord`] of column `c`: a generation-tagged
//!   claim with a lease deadline, reclaimable if the holder crashes.
//! - Arbitration is by **rank**: a worker reads the request mask, computes
//!   its rank among the requesters under the active [`XbarPolicy`], and
//!   claims the rank-th free column by CAS. When the mask and the free set
//!   are stable — which is exactly the saturated case where fairness
//!   matters — ranks are distinct, so each requester targets a different
//!   column and the wave settles without collisions; under churn a lost CAS
//!   just re-runs the wave.
//!
//! [`XbarPolicy::FixedPriority`] ranks by row index (the paper's baseline
//! wave, low index wins) and **starves** high rows under saturation.
//! [`XbarPolicy::TokenRotation`] ranks by circular distance from a rotating
//! token (the POLYP fix, Section IV-B): the *releaser* hands the token to
//! its successor, so every requester's wait is bounded by one rotation. The
//! fairness regression test in `tests/fairness.rs` asserts both behaviors
//! against the gate-level simulator in `rsin-xbar`.
//!
//! ## Token uniqueness under holder death
//!
//! The token is one atomic word packed `generation << 32 | position`, so
//! *by representation* there is always exactly one token. What needs proof
//! is that it is **live** — that a holder's death cannot stop it from ever
//! passing again — and that it passes exactly once per grant even when a
//! reclaim races the holder's own slow release. Both follow from the lease
//! word: the token is passed only by whoever wins the `begin_unclaim` /
//! `begin_reclaim` generation CAS on the column, and for any one grant
//! generation exactly one of {the holder's release, the supervisor's
//! reclaim} can win that CAS. A dead holder's pass is performed by the
//! reclaimer in its stead (regenerating the token at the dead row's
//! successor); a slow-but-alive holder whose lease was reclaimed gets
//! [`ReleaseOutcome::Stale`] and does *not* pass — the reclaimer already
//! did. `tests/chaos.rs` asserts the invariant by counting token
//! generations against grant + reclaim totals.
//!
//! Crossbar columns are dedicated buses, so [`Broker::end_transmission`] is
//! a no-op here: the column is the circuit *and* the resource claim, held
//! from grant to release.

use crate::lease::{self, LeaseClock, LeaseWord, UnclaimStart, NO_OWNER};
use crate::{Broker, BrokerGrant, ReleaseOutcome, RunControl, Waiter, WorkerId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Arbitration policy of the request-cycle wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XbarPolicy {
    /// Low row index wins (the paper's baseline daisy-chain priority).
    /// Starves high rows at saturation.
    FixedPriority,
    /// A circulating token sets the priority origin; the releaser advances
    /// it. Bounds every requester's wait (POLYP-style fairness).
    TokenRotation,
}

/// Runtime crossbar broker: `workers` rows by `resources` columns.
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, RunControl, XbarBroker, XbarPolicy};
///
/// let broker = XbarBroker::new(4, 2, XbarPolicy::TokenRotation);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(1, &ctl).expect("uncontended");
/// broker.end_transmission(1, grant);
/// broker.release(1, grant);
/// ```
#[derive(Debug)]
pub struct XbarBroker {
    workers: usize,
    policy: XbarPolicy,
    /// OR of the row request lines (bit per worker).
    requests: AtomicU64,
    /// Priority origin for [`XbarPolicy::TokenRotation`], packed
    /// `generation << 32 | position`.
    token: AtomicU64,
    /// Per-column lease words.
    owners: Vec<LeaseWord>,
    clock: LeaseClock,
}

/// Lowers the raised request line even if the owner unwinds.
struct RequestLine<'a> {
    requests: &'a AtomicU64,
    bit: u64,
}

impl Drop for RequestLine<'_> {
    fn drop(&mut self) {
        self.requests.fetch_and(!self.bit, Ordering::AcqRel);
    }
}

impl XbarBroker {
    /// Creates a broker with every column free and non-expiring leases
    /// (the pre-lease protocol, byte for byte on the fast path).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or exceeds 64 (the request mask is one
    /// machine word, like the hardware's request lines), or if `resources`
    /// is zero.
    #[must_use]
    pub fn new(workers: usize, resources: usize, policy: XbarPolicy) -> Self {
        Self::build(workers, resources, policy, None)
    }

    /// Creates a broker whose grants expire `lease` after issue, making
    /// them reclaimable through [`Broker::reclaim_expired`]. Choose the
    /// lease much longer than any honest hold time: a slower-than-lease
    /// holder is indistinguishable from a dead one and will be evicted.
    #[must_use]
    pub fn with_lease(
        workers: usize,
        resources: usize,
        policy: XbarPolicy,
        lease: Duration,
    ) -> Self {
        Self::build(workers, resources, policy, Some(lease))
    }

    fn build(
        workers: usize,
        resources: usize,
        policy: XbarPolicy,
        lease: Option<Duration>,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(workers <= 64, "request mask is one machine word");
        assert!(resources > 0, "need at least one resource");
        XbarBroker {
            workers,
            policy,
            requests: AtomicU64::new(0),
            token: AtomicU64::new(0),
            owners: (0..resources).map(|_| LeaseWord::new()).collect(),
            clock: LeaseClock::new(lease),
        }
    }

    /// The active arbitration policy.
    #[must_use]
    pub fn policy(&self) -> XbarPolicy {
        self.policy
    }

    /// Current token position (the priority origin row).
    #[must_use]
    pub fn token_position(&self) -> usize {
        (self.token.load(Ordering::Acquire) as u32) as usize % self.workers
    }

    /// Number of times the token has been passed or regenerated — the
    /// observable for the exactly-once-per-grant invariant.
    #[must_use]
    pub fn token_generation(&self) -> u32 {
        (self.token.load(Ordering::Acquire) >> 32) as u32
    }

    /// Passes the token to the successor of `from` (the row whose grant
    /// just ended — by its own release or by reclaim on its behalf).
    fn pass_token(&self, from: WorkerId) {
        if self.policy != XbarPolicy::TokenRotation {
            return;
        }
        let next = ((from + 1) % self.workers) as u64;
        let _ = self
            .token
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                let generation = (t >> 32).wrapping_add(1);
                Some((generation << 32) | next)
            });
    }

    /// Rank of `who` among the requesters in `mask` under the active
    /// policy: the number of requesters with strictly higher priority.
    ///
    /// Both arms are constant-depth word operations. The token arm is the
    /// parallel round-robin arbiter's priority resolution — a doubled-mask
    /// rotate aligning the token to lane 0 followed by a prefix popcount
    /// ([`rsin_bitslice::rotating_rank`]) — replacing the O(n) circular-
    /// distance scan the naive arbiter pays on every settling pass.
    fn rank(&self, who: WorkerId, mask: u64) -> u32 {
        match self.policy {
            // Requesters below `who` outrank it.
            XbarPolicy::FixedPriority => (mask & ((1u64 << who) - 1)).count_ones(),
            // Requesters circularly between the token and `who` outrank it.
            XbarPolicy::TokenRotation => {
                rsin_bitslice::rotating_rank(mask, self.workers, self.token_position(), who)
            }
        }
    }

    /// One settling pass of the grant wave for `who` at `rank`: pick the
    /// `rank`-th free column and CAS-claim it. `None` ends the wave — the
    /// caller re-reads the mask and re-ranks before the next pass.
    ///
    /// Up to 64 columns the free set is packed into one word and the
    /// column is picked by prefix select ([`rsin_bitslice::select_nth_set`]),
    /// the same parallel-prefix grant machinery the gate-level resolvers
    /// compile to; wider arrays fall back to the counting sweep.
    fn claim_nth_free(&self, who: WorkerId, rank: u32) -> Option<(usize, u32)> {
        if self.owners.len() <= 64 {
            let mut free = 0u64;
            for (c, owner) in self.owners.iter().enumerate() {
                free |= u64::from(lease::owner_of(owner.load()) == NO_OWNER) << c;
            }
            let c = rsin_bitslice::select_nth_set(&[free], rank as usize)?;
            let generation = self.owners[c].try_claim(who, self.clock.deadline_from_now())?;
            Some((c, generation))
        } else {
            let mut free_seen = 0;
            for (c, owner) in self.owners.iter().enumerate() {
                if lease::owner_of(owner.load()) != NO_OWNER {
                    continue;
                }
                if free_seen == rank {
                    let generation = owner.try_claim(who, self.clock.deadline_from_now())?;
                    return Some((c, generation));
                }
                free_seen += 1;
            }
            None
        }
    }

    /// Reclaims every column whose lease is expired at `now_us`, passing
    /// the token on each dead holder's behalf.
    fn reclaim_at(&self, now_us: u64, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        let mut reclaimed = 0;
        for (c, owner) in self.owners.iter().enumerate() {
            if let Some(dead) = owner.begin_reclaim(now_us) {
                audit(c, dead);
                owner.finish_unclaim();
                self.pass_token(dead);
                reclaimed += 1;
            }
        }
        reclaimed
    }
}

impl Broker for XbarBroker {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.owners.len()
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let bit = 1u64 << who;
        // Raise our request line (Release publishes it to concurrent
        // rank computations; AcqRel so we also see the current mask). The
        // guard lowers it on every exit path, unwinding included.
        let prior = self.requests.fetch_or(bit, Ordering::AcqRel);
        debug_assert_eq!(prior & bit, 0, "worker already requesting");
        let _line = RequestLine {
            requests: &self.requests,
            bit,
        };
        let mut waiter = Waiter::new();
        loop {
            if ctl.is_stopped() {
                return None;
            }
            // One settling pass of the grant wave, from this row's view.
            let mask = self.requests.load(Ordering::Acquire);
            let my_rank = self.rank(who, mask);
            if let Some((resource, generation)) = self.claim_nth_free(who, my_rank) {
                return Some(BrokerGrant {
                    resource,
                    generation,
                });
            }
            waiter.wait();
        }
    }

    fn try_acquire(&self, who: WorkerId) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let bit = 1u64 << who;
        let prior = self.requests.fetch_or(bit, Ordering::AcqRel);
        debug_assert_eq!(prior & bit, 0, "worker already requesting");
        let _line = RequestLine {
            requests: &self.requests,
            bit,
        };
        // Exactly one settling pass: rank among the current requesters,
        // claim the rank-th free column or report the probe failed. The
        // guard lowers the request line either way.
        let mask = self.requests.load(Ordering::Acquire);
        let my_rank = self.rank(who, mask);
        self.claim_nth_free(who, my_rank)
            .map(|(resource, generation)| BrokerGrant {
                resource,
                generation,
            })
    }

    fn end_transmission(&self, _who: WorkerId, _grant: BrokerGrant) {
        // A crossbar column is a dedicated bus: nothing extra to free.
    }

    fn release_audited(
        &self,
        who: WorkerId,
        grant: BrokerGrant,
        audit: &mut dyn FnMut(usize, WorkerId),
    ) -> ReleaseOutcome {
        let owner = &self.owners[grant.resource];
        match owner.begin_unclaim(who, grant.generation) {
            UnclaimStart::Begun => {
                audit(grant.resource, who);
                owner.finish_unclaim();
                self.pass_token(who);
                ReleaseOutcome::Released
            }
            UnclaimStart::Stale => ReleaseOutcome::Stale,
            UnclaimStart::Foreign => panic!(
                "release of column {} by worker {who} who does not hold it",
                grant.resource
            ),
        }
    }

    fn reclaim_expired(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        if !self.clock.leases_expire() {
            return 0;
        }
        self.reclaim_at(self.clock.now_us(), audit)
    }

    fn reclaim_all(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        // `u64::MAX` beats every real deadline (and even `NEVER`), so this
        // evicts unconditionally — shutdown only, after workers joined.
        self.reclaim_at(u64::MAX, audit)
    }

    fn set_resource_faulted(&self, resource: usize, down: bool) {
        if down {
            self.owners[resource].set_faulted();
        } else {
            self.owners[resource].clear_faulted();
        }
    }

    fn available_resources(&self) -> usize {
        self.owners
            .iter()
            .filter(|o| lease::owner_of(o.load()) == NO_OWNER)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_distinct_columns_up_to_capacity() {
        let b = XbarBroker::new(4, 3, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        let grants: Vec<_> = (0..3)
            .map(|w| b.acquire(w, &ctl).expect("column free"))
            .collect();
        let mut cols: Vec<_> = grants.iter().map(|g| g.resource).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3, "each grant a distinct column");
        assert_eq!(b.available_resources(), 0);
        // Fourth acquire must block until a column frees.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(3, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block while saturated");
            b.release(0, grants[0]);
            let g = handle.join().expect("no panic").expect("granted");
            assert_eq!(g.resource, grants[0].resource, "reuses the freed column");
            b.release(3, g);
        });
        b.release(1, grants[1]);
        b.release(2, grants[2]);
        assert_eq!(b.available_resources(), 3);
    }

    #[test]
    fn fixed_priority_ranks_by_row_index() {
        let b = XbarBroker::new(4, 1, XbarPolicy::FixedPriority);
        assert_eq!(b.rank(0, 0b1111), 0);
        assert_eq!(b.rank(3, 0b1111), 3);
        assert_eq!(b.rank(3, 0b1000), 0, "alone means top rank");
        assert_eq!(b.rank(2, 0b0101), 1);
    }

    #[test]
    fn token_rotation_ranks_from_the_token() {
        let b = XbarBroker::new(4, 1, XbarPolicy::TokenRotation);
        b.token.store(2, Ordering::Relaxed);
        // Priority order is 2, 3, 0, 1.
        assert_eq!(b.rank(2, 0b1111), 0);
        assert_eq!(b.rank(3, 0b1111), 1);
        assert_eq!(b.rank(0, 0b1111), 2);
        assert_eq!(b.rank(1, 0b1111), 3);
        // Non-requesters don't occupy ranks.
        assert_eq!(b.rank(1, 0b0010), 0);
    }

    #[test]
    fn releaser_passes_the_token_exactly_once() {
        let b = XbarBroker::new(4, 1, XbarPolicy::TokenRotation);
        let ctl = RunControl::new();
        let g = b.acquire(2, &ctl).expect("free");
        assert_eq!(b.token_position(), 0, "token rests until the release");
        assert_eq!(b.token_generation(), 0);
        b.release(2, g);
        assert_eq!(b.token_position(), 3, "passed to the releaser's successor");
        assert_eq!(b.token_generation(), 1, "one grant, one pass");
    }

    #[test]
    fn reclaim_evicts_expired_leases_and_regenerates_the_token() {
        let b = XbarBroker::with_lease(4, 2, XbarPolicy::TokenRotation, Duration::from_micros(1));
        let ctl = RunControl::new();
        let g = b.acquire(1, &ctl).expect("free");
        std::thread::sleep(Duration::from_millis(2));
        let mut evicted = Vec::new();
        let n = b.reclaim_expired(&mut |res, who| evicted.push((res, who)));
        assert_eq!(n, 1);
        assert_eq!(evicted, vec![(g.resource, 1)]);
        assert_eq!(
            b.token_position(),
            2,
            "regenerated at the dead row's successor"
        );
        assert_eq!(b.available_resources(), 2);
        // The dead holder's late release is stale, tolerated, and passes
        // no second token.
        assert_eq!(
            b.release_audited(1, g, &mut |_, _| {}),
            ReleaseOutcome::Stale
        );
        assert_eq!(b.token_generation(), 1, "exactly one pass for that grant");
    }

    #[test]
    fn faulted_columns_are_skipped_by_the_wave() {
        let b = XbarBroker::new(2, 2, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        b.set_resource_faulted(0, true);
        assert_eq!(b.available_resources(), 1);
        let g = b.acquire(0, &ctl).expect("column 1 still up");
        assert_eq!(g.resource, 1);
        b.release(0, g);
        b.set_resource_faulted(0, false);
        assert_eq!(b.available_resources(), 2);
    }

    #[test]
    fn stopped_control_clears_the_request_line() {
        let b = XbarBroker::new(2, 1, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        // Worker 1 blocks on the taken column; stop unwinds it.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(1, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block on a taken column");
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        assert_eq!(b.requests.load(Ordering::Relaxed), 0, "line lowered");
        b.release(0, g);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_is_a_protocol_violation() {
        let b = XbarBroker::new(2, 1, XbarPolicy::FixedPriority);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        b.release(1, g);
    }

    #[test]
    fn try_acquire_is_one_wave_and_lowers_the_request_line() {
        let b = XbarBroker::new(2, 1, XbarPolicy::TokenRotation);
        let g = b.try_acquire(0).expect("column free");
        assert_eq!(b.requests.load(Ordering::Relaxed), 0, "line lowered");
        assert_eq!(b.try_acquire(1), None, "no column left");
        assert_eq!(b.requests.load(Ordering::Relaxed), 0, "lowered on failure");
        b.release(0, g);
        let g1 = b.try_acquire(1).expect("freed column grantable");
        b.release(1, g1);
        assert_eq!(b.token_generation(), 2, "probes pass the token like grants");
    }
}
