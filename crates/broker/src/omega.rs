//! The circuit-switched Omega network at runtime: stage-by-stage link
//! claiming along the destination-tag route, with claim-or-rollback
//! conflict resolution.
//!
//! Section V's Omega network is blocking: a circuit occupies one output
//! link per stage, and two circuits conflict exactly when they share a
//! link. The runtime makes every link a claim word and builds a circuit
//! the way the hardware's wave does — stage by stage in route order:
//!
//! 1. Claim a free resource (the destination port) by CAS on its owner
//!    word; the destination-tag route from the worker's source port is then
//!    fully determined, so the grant needs no extra bookkeeping.
//! 2. Claim the route's links in stage order. A link that is already taken
//!    means a blocking conflict with a live circuit: **roll back** every
//!    link claimed so far *and* the resource, then wait and retry from
//!    scratch.
//!
//! A worker therefore never waits while holding a partial path — the claim
//! attempt either completes in a bounded number of CAS operations or
//! releases everything before sleeping. Circular wait is impossible and
//! the protocol cannot deadlock; the blocked worker's retry succeeds once
//! the conflicting circuit's transmission ends (paths are freed by
//! [`Broker::end_transmission`], matching the model where the circuit is
//! held only for the transmission stage).
//!
//! ## No fairness guarantee
//!
//! Unlike the SBUS ticket queue and the XBAR rotating token, claim-or-retry
//! carries **no queue-order state**: who wins a contended resource is
//! whichever retry happens to land first. Under sustained saturation a
//! worker that just released can re-win the race against sleeping waiters
//! indefinitely, so starvation is possible — the runtime analogue of a
//! blocking MIN resolving conflicts by drop-and-retry, which is
//! probabilistically fair only while contention is transient. Runs below
//! saturation drain cleanly (see `tests/stress.rs`); fairness under
//! saturation is exactly what the paper's token-style mechanisms exist to
//! provide, and this crate implements that fix on the crossbar
//! ([`crate::XbarPolicy::TokenRotation`]), not here.

use crate::{Broker, BrokerGrant, RunControl, Waiter, WorkerId, VACANT};
use rsin_topology::{Multistage, OmegaTopology};
use std::sync::atomic::{AtomicU64, Ordering};

/// Runtime Omega-network broker: `workers` source ports sharing
/// `resources` destination ports through a `size × size` Omega fabric
/// (`size` = the smallest power of two covering both).
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, OmegaBroker, RunControl};
///
/// let broker = OmegaBroker::new(4, 2);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(3, &ctl).expect("uncontended");
/// broker.end_transmission(3, grant); // frees the circuit
/// broker.release(3, grant); // frees the resource
/// ```
#[derive(Debug)]
pub struct OmegaBroker {
    workers: usize,
    topo: OmegaTopology,
    /// Per-resource owner words (`VACANT` or the holder's `WorkerId`).
    owners: Vec<AtomicU64>,
    /// Per-link claim words, `links[stage * size + wire]`.
    links: Vec<AtomicU64>,
}

impl OmegaBroker {
    /// Creates a broker over the smallest Omega fabric that fits.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `resources` is zero.
    #[must_use]
    pub fn new(workers: usize, resources: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(resources > 0, "need at least one resource");
        let size = workers.max(resources).next_power_of_two().max(2);
        let topo = OmegaTopology::new(size).expect("size is a power of two >= 2");
        let n_links = size * topo.stages() as usize;
        OmegaBroker {
            workers,
            topo,
            owners: (0..resources).map(|_| AtomicU64::new(VACANT)).collect(),
            links: (0..n_links).map(|_| AtomicU64::new(VACANT)).collect(),
        }
    }

    /// Port count of the underlying fabric (a power of two).
    #[must_use]
    pub fn ports(&self) -> usize {
        self.topo.size()
    }

    fn link(&self, stage: u32, wire: usize) -> &AtomicU64 {
        &self.links[stage as usize * self.topo.size() + wire]
    }

    /// Claims the whole route `who → resource` in stage order; on a
    /// conflict rolls back every link claimed so far and reports failure.
    fn try_claim_path(&self, who: WorkerId, resource: usize) -> bool {
        let route = self.topo.route(who, resource);
        for (i, l) in route.links.iter().enumerate() {
            let claimed = self
                .link(l.stage, l.wire)
                .compare_exchange(VACANT, who as u64, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok();
            if !claimed {
                for held in route.links[..i].iter().rev() {
                    self.link(held.stage, held.wire)
                        .store(VACANT, Ordering::Release);
                }
                return false;
            }
        }
        true
    }

    /// Frees the circuit `who → resource` (reverse stage order).
    fn free_path(&self, who: WorkerId, resource: usize) {
        let route = self.topo.route(who, resource);
        for l in route.links.iter().rev() {
            let ok = self
                .link(l.stage, l.wire)
                .compare_exchange(who as u64, VACANT, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok();
            debug_assert!(ok, "freed a link worker {who} did not hold");
        }
    }
}

impl Broker for OmegaBroker {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.owners.len()
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let r = self.owners.len();
        let mut waiter = Waiter::new();
        let mut attempt = 0usize;
        loop {
            if ctl.is_stopped() {
                return None;
            }
            // Rotate the scan origin per worker and per attempt so
            // concurrent claimers fan out over the destination ports.
            let start = (who + attempt) % r;
            attempt = attempt.wrapping_add(1);
            let mut progressed = false;
            for step in 0..r {
                let res = (start + step) % r;
                if self.owners[res].load(Ordering::Relaxed) != VACANT {
                    continue;
                }
                if self.owners[res]
                    .compare_exchange(VACANT, who as u64, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                if self.try_claim_path(who, res) {
                    return Some(BrokerGrant { resource: res });
                }
                // Blocked in the fabric: give the resource back before
                // waiting so we never hold anything while blocked.
                let released = self.owners[res]
                    .compare_exchange(who as u64, VACANT, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok();
                debug_assert!(released, "owner word changed under the claimant");
                progressed = true;
            }
            if progressed {
                waiter.reset();
            }
            waiter.wait();
        }
    }

    fn end_transmission(&self, who: WorkerId, grant: BrokerGrant) {
        self.free_path(who, grant.resource);
    }

    fn release(&self, who: WorkerId, grant: BrokerGrant) {
        let ok = self.owners[grant.resource]
            .compare_exchange(who as u64, VACANT, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        assert!(
            ok,
            "release of resource {} by worker {who} who does not hold it",
            grant.resource
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn held_links(b: &OmegaBroker) -> usize {
        b.links
            .iter()
            .filter(|l| l.load(Ordering::Relaxed) != VACANT)
            .count()
    }

    #[test]
    fn grant_holds_the_circuit_until_end_of_transmission() {
        let b = OmegaBroker::new(4, 4);
        let ctl = RunControl::new();
        let g = b.acquire(3, &ctl).expect("free fabric");
        assert_eq!(held_links(&b), b.topo.stages() as usize, "one link/stage");
        b.end_transmission(3, g);
        assert_eq!(held_links(&b), 0, "circuit freed, resource kept");
        assert_ne!(b.owners[g.resource].load(Ordering::Relaxed), VACANT);
        b.release(3, g);
        assert_eq!(b.owners[g.resource].load(Ordering::Relaxed), VACANT);
    }

    #[test]
    fn conflicting_claim_rolls_back_completely() {
        // Find a blocking pair in the 8-port fabric: distinct sources and
        // distinct destinations whose routes share a link.
        let b = OmegaBroker::new(8, 8);
        let mut pair = None;
        'outer: for s1 in 0..8 {
            for s2 in 0..8 {
                for d1 in 0..8 {
                    for d2 in 0..8 {
                        if s1 == s2 || d1 == d2 {
                            continue;
                        }
                        let r1 = b.topo.route(s1, d1);
                        let r2 = b.topo.route(s2, d2);
                        if r1.conflicts_with(&r2) {
                            pair = Some((s1, d1, s2, d2));
                            break 'outer;
                        }
                    }
                }
            }
        }
        let (s1, d1, s2, d2) = pair.expect("an 8-port Omega network is blocking");
        assert!(b.try_claim_path(s1, d1), "empty fabric");
        let before = held_links(&b);
        assert!(!b.try_claim_path(s2, d2), "routes conflict");
        assert_eq!(held_links(&b), before, "failed claim left no residue");
        b.free_path(s1, d1);
        assert!(b.try_claim_path(s2, d2), "claimable once the blocker frees");
        b.free_path(s2, d2);
        assert_eq!(held_links(&b), 0);
    }

    #[test]
    fn blocked_acquire_unwinds_on_stop() {
        let b = OmegaBroker::new(2, 1);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(1, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block: the resource is held");
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        b.end_transmission(0, g);
        b.release(0, g);
        assert_eq!(held_links(&b), 0);
    }

    #[test]
    fn fabric_covers_workers_and_resources() {
        assert_eq!(OmegaBroker::new(6, 3).ports(), 8);
        assert_eq!(OmegaBroker::new(1, 1).ports(), 2);
        assert_eq!(OmegaBroker::new(4, 4).ports(), 4);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_is_a_protocol_violation() {
        let b = OmegaBroker::new(2, 1);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        b.end_transmission(0, g);
        b.release(1, g);
    }
}
