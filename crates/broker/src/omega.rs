//! The circuit-switched Omega network at runtime: stage-by-stage link
//! claiming along the destination-tag route, with claim-or-rollback
//! conflict resolution.
//!
//! Section V's Omega network is blocking: a circuit occupies one output
//! link per stage, and two circuits conflict exactly when they share a
//! link. The runtime makes every link a claim word and builds a circuit
//! the way the hardware's wave does — stage by stage in route order:
//!
//! 1. Claim a free resource (the destination port) by CAS on its leased
//!    owner word; the destination-tag route from the worker's source port
//!    is then fully determined, so the grant needs no extra bookkeeping.
//! 2. Claim the route's links in stage order. A link that is already taken
//!    means a blocking conflict with a live circuit: **roll back** every
//!    link claimed so far *and* the resource, then wait and retry from
//!    scratch.
//!
//! A worker therefore never waits while holding a partial path — the claim
//! attempt either completes in a bounded number of CAS operations or
//! releases everything before sleeping. Circular wait is impossible and
//! the protocol cannot deadlock; the blocked worker's retry succeeds once
//! the conflicting circuit's transmission ends (paths are freed by
//! [`Broker::end_transmission`], matching the model where the circuit is
//! held only for the transmission stage).
//!
//! ## Crash tolerance (route rollback by the supervisor)
//!
//! A holder that dies during its transmission leaves its whole circuit —
//! one link per stage — claimed, and any circuit that shares a link with
//! it blocks forever. Because routes are a pure function of
//! `(worker, resource)`, the supervisor needs no record of the dead
//! claimant's progress: when a resource lease expires it replays the
//! route and rolls back **whatever prefix of it the dead worker actually
//! held**, link by link in reverse stage order, with a `dead → VACANT`
//! CAS per link. A link the worker never claimed (it died mid-claim, or
//! had already finished its rollback or its transmission) fails the CAS
//! and is skipped — so abandonment at *any* stage index, including stage
//! zero and a completed circuit, reduces to the same tolerant sweep. The
//! sweep runs while the resource's lease word is in its unclaimable
//! `RECLAIMING` phase, so no new circuit to the same destination can be
//! mid-construction while its links are being swept; circuits to *other*
//! destinations never hold `dead`-valued links (a worker holds at most
//! one grant), so the CAS can never free a live circuit's link. Rollback
//! acquires nothing and retries nothing — it is a fixed reverse walk of
//! at most `stages` CASes — so it cannot deadlock with claimants, which
//! only ever *advance* in stage order and never wait while holding links.
//!
//! ## No fairness guarantee
//!
//! Unlike the SBUS ticket queue and the XBAR rotating token, claim-or-retry
//! carries **no queue-order state**: who wins a contended resource is
//! whichever retry happens to land first. Under sustained saturation a
//! worker that just released can re-win the race against sleeping waiters
//! indefinitely, so starvation is possible — the runtime analogue of a
//! blocking MIN resolving conflicts by drop-and-retry, which is
//! probabilistically fair only while contention is transient. Runs below
//! saturation drain cleanly (see `tests/stress.rs`); fairness under
//! saturation is exactly what the paper's token-style mechanisms exist to
//! provide, and this crate implements that fix on the crossbar
//! ([`crate::XbarPolicy::TokenRotation`]), not here.

use crate::lease::{self, LeaseClock, LeaseWord, UnclaimStart, NO_OWNER};
use crate::{Broker, BrokerGrant, ReleaseOutcome, RunControl, Waiter, WorkerId, VACANT};
use rsin_topology::{Multistage, OmegaTopology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Runtime Omega-network broker: `workers` source ports sharing
/// `resources` destination ports through a `size × size` Omega fabric
/// (`size` = the smallest power of two covering both).
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, OmegaBroker, RunControl};
///
/// let broker = OmegaBroker::new(4, 2);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(3, &ctl).expect("uncontended");
/// broker.end_transmission(3, grant); // frees the circuit
/// broker.release(3, grant); // frees the resource
/// ```
#[derive(Debug)]
pub struct OmegaBroker {
    workers: usize,
    topo: OmegaTopology,
    /// Per-resource lease words.
    owners: Vec<LeaseWord>,
    /// Per-link claim words, `links[stage * size + wire]`.
    links: Vec<AtomicU64>,
    clock: LeaseClock,
}

impl OmegaBroker {
    /// Creates a broker over the smallest Omega fabric that fits, with
    /// non-expiring leases (the pre-lease protocol on the fault-free
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `resources` is zero.
    #[must_use]
    pub fn new(workers: usize, resources: usize) -> Self {
        Self::build(workers, resources, None)
    }

    /// Creates a broker whose grants expire `lease` after issue, making
    /// them (and their circuits) reclaimable through
    /// [`Broker::reclaim_expired`]. Choose the lease much longer than any
    /// honest hold time: a slower-than-lease holder is evicted as
    /// presumed dead.
    #[must_use]
    pub fn with_lease(workers: usize, resources: usize, lease: Duration) -> Self {
        Self::build(workers, resources, Some(lease))
    }

    fn build(workers: usize, resources: usize, lease: Option<Duration>) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(resources > 0, "need at least one resource");
        let size = workers.max(resources).next_power_of_two().max(2);
        let topo = OmegaTopology::new(size).expect("size is a power of two >= 2");
        let n_links = size * topo.stages() as usize;
        OmegaBroker {
            workers,
            topo,
            owners: (0..resources).map(|_| LeaseWord::new()).collect(),
            links: (0..n_links).map(|_| AtomicU64::new(VACANT)).collect(),
            clock: LeaseClock::new(lease),
        }
    }

    /// Port count of the underlying fabric (a power of two).
    #[must_use]
    pub fn ports(&self) -> usize {
        self.topo.size()
    }

    fn link(&self, stage: u32, wire: usize) -> &AtomicU64 {
        &self.links[stage as usize * self.topo.size() + wire]
    }

    /// Claims the whole route `who → resource` in stage order; on a
    /// conflict rolls back every link claimed so far and reports failure.
    fn try_claim_path(&self, who: WorkerId, resource: usize) -> bool {
        let route = self.topo.route(who, resource);
        for (i, l) in route.links.iter().enumerate() {
            let claimed = self
                .link(l.stage, l.wire)
                .compare_exchange(VACANT, who as u64, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok();
            if !claimed {
                for held in route.links[..i].iter().rev() {
                    self.link(held.stage, held.wire)
                        .store(VACANT, Ordering::Release);
                }
                return false;
            }
        }
        true
    }

    /// Frees whatever prefix of the circuit `who → resource` is held by
    /// `who`, in reverse stage order. Tolerant by design: each link is a
    /// `who → VACANT` CAS that simply skips links `who` does not hold, so
    /// the same sweep serves a normal end-of-transmission, a reclaim of a
    /// route abandoned at any stage index, and a stale double-free.
    fn free_path(&self, who: WorkerId, resource: usize) {
        let route = self.topo.route(who, resource);
        for l in route.links.iter().rev() {
            let _ = self.link(l.stage, l.wire).compare_exchange(
                who as u64,
                VACANT,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
    }

    /// Reclaims every resource whose lease is expired at `now_us`,
    /// sweeping the dead holder's route while the slot is unclaimable.
    fn reclaim_at(&self, now_us: u64, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        let mut reclaimed = 0;
        for (res, owner) in self.owners.iter().enumerate() {
            if let Some(dead) = owner.begin_reclaim(now_us) {
                self.free_path(dead, res);
                audit(res, dead);
                owner.finish_unclaim();
                reclaimed += 1;
            }
        }
        reclaimed
    }
}

impl Broker for OmegaBroker {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.owners.len()
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let r = self.owners.len();
        let mut waiter = Waiter::new();
        let mut attempt = 0usize;
        loop {
            if ctl.is_stopped() {
                return None;
            }
            // Rotate the scan origin per worker and per attempt so
            // concurrent claimers fan out over the destination ports.
            let start = (who + attempt) % r;
            attempt = attempt.wrapping_add(1);
            let mut progressed = false;
            for step in 0..r {
                let res = (start + step) % r;
                if lease::owner_of(self.owners[res].load()) != NO_OWNER {
                    continue;
                }
                let Some(generation) =
                    self.owners[res].try_claim(who, self.clock.deadline_from_now())
                else {
                    continue;
                };
                if self.try_claim_path(who, res) {
                    return Some(BrokerGrant {
                        resource: res,
                        generation,
                    });
                }
                // Blocked in the fabric: give the resource back before
                // waiting so we never hold anything while blocked. The
                // two-phase unclaim mirrors release; there is no audit to
                // run because the grant never happened.
                match self.owners[res].begin_unclaim(who, generation) {
                    UnclaimStart::Begun => {
                        self.owners[res].finish_unclaim();
                    }
                    // The supervisor can only have reclaimed us if the
                    // lease is shorter than one claim attempt — tolerate
                    // it; the reclaimer swept our (empty) route.
                    UnclaimStart::Stale => {}
                    UnclaimStart::Foreign => {
                        unreachable!("owner word changed under the claimant")
                    }
                }
                progressed = true;
            }
            if progressed {
                waiter.reset();
            }
            waiter.wait();
        }
    }

    fn try_acquire(&self, who: WorkerId) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        // One claim-or-rollback sweep over the destination ports, from
        // this worker's home origin. Claim-or-retry is already attempt-
        // shaped — the probe is simply a single attempt with no backoff.
        let r = self.owners.len();
        let start = who % r;
        for step in 0..r {
            let res = (start + step) % r;
            if lease::owner_of(self.owners[res].load()) != NO_OWNER {
                continue;
            }
            let Some(generation) = self.owners[res].try_claim(who, self.clock.deadline_from_now())
            else {
                continue;
            };
            if self.try_claim_path(who, res) {
                return Some(BrokerGrant {
                    resource: res,
                    generation,
                });
            }
            match self.owners[res].begin_unclaim(who, generation) {
                UnclaimStart::Begun => {
                    self.owners[res].finish_unclaim();
                }
                UnclaimStart::Stale => {}
                UnclaimStart::Foreign => {
                    unreachable!("owner word changed under the claimant")
                }
            }
        }
        None
    }

    fn end_transmission(&self, who: WorkerId, grant: BrokerGrant) {
        // Tolerant sweep: if the grant was reclaimed meanwhile, the
        // supervisor already freed these links and every CAS just fails.
        self.free_path(who, grant.resource);
    }

    fn release_audited(
        &self,
        who: WorkerId,
        grant: BrokerGrant,
        audit: &mut dyn FnMut(usize, WorkerId),
    ) -> ReleaseOutcome {
        let owner = &self.owners[grant.resource];
        match owner.begin_unclaim(who, grant.generation) {
            UnclaimStart::Begun => {
                audit(grant.resource, who);
                owner.finish_unclaim();
                ReleaseOutcome::Released
            }
            UnclaimStart::Stale => ReleaseOutcome::Stale,
            UnclaimStart::Foreign => panic!(
                "release of resource {} by worker {who} who does not hold it",
                grant.resource
            ),
        }
    }

    fn reclaim_expired(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        if !self.clock.leases_expire() {
            return 0;
        }
        self.reclaim_at(self.clock.now_us(), audit)
    }

    fn reclaim_all(&self, audit: &mut dyn FnMut(usize, WorkerId)) -> usize {
        self.reclaim_at(u64::MAX, audit)
    }

    fn set_resource_faulted(&self, resource: usize, down: bool) {
        if down {
            self.owners[resource].set_faulted();
        } else {
            self.owners[resource].clear_faulted();
        }
    }

    fn available_resources(&self) -> usize {
        self.owners
            .iter()
            .filter(|o| lease::owner_of(o.load()) == NO_OWNER)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn held_links(b: &OmegaBroker) -> usize {
        b.links
            .iter()
            .filter(|l| l.load(Ordering::Relaxed) != VACANT)
            .count()
    }

    #[test]
    fn grant_holds_the_circuit_until_end_of_transmission() {
        let b = OmegaBroker::new(4, 4);
        let ctl = RunControl::new();
        let g = b.acquire(3, &ctl).expect("free fabric");
        assert_eq!(held_links(&b), b.topo.stages() as usize, "one link/stage");
        b.end_transmission(3, g);
        assert_eq!(held_links(&b), 0, "circuit freed, resource kept");
        assert_ne!(
            lease::owner_of(b.owners[g.resource].load()),
            NO_OWNER,
            "resource still held"
        );
        b.release(3, g);
        assert_eq!(lease::owner_of(b.owners[g.resource].load()), NO_OWNER);
    }

    #[test]
    fn conflicting_claim_rolls_back_completely() {
        // Find a blocking pair in the 8-port fabric: distinct sources and
        // distinct destinations whose routes share a link.
        let b = OmegaBroker::new(8, 8);
        let mut pair = None;
        'outer: for s1 in 0..8 {
            for s2 in 0..8 {
                for d1 in 0..8 {
                    for d2 in 0..8 {
                        if s1 == s2 || d1 == d2 {
                            continue;
                        }
                        let r1 = b.topo.route(s1, d1);
                        let r2 = b.topo.route(s2, d2);
                        if r1.conflicts_with(&r2) {
                            pair = Some((s1, d1, s2, d2));
                            break 'outer;
                        }
                    }
                }
            }
        }
        let (s1, d1, s2, d2) = pair.expect("an 8-port Omega network is blocking");
        assert!(b.try_claim_path(s1, d1), "empty fabric");
        let before = held_links(&b);
        assert!(!b.try_claim_path(s2, d2), "routes conflict");
        assert_eq!(held_links(&b), before, "failed claim left no residue");
        b.free_path(s1, d1);
        assert!(b.try_claim_path(s2, d2), "claimable once the blocker frees");
        b.free_path(s2, d2);
        assert_eq!(held_links(&b), 0);
    }

    #[test]
    fn reclaim_rolls_back_routes_abandoned_at_every_stage_index() {
        let b = OmegaBroker::with_lease(8, 8, Duration::from_micros(1));
        let stages = b.topo.stages() as usize;
        let (who, res) = (5usize, 3usize);
        // Abandonment at stage k: the worker claimed the resource and the
        // first k links of its route, then died. k = 0 is death before any
        // link; k = stages is death mid-transmission with a full circuit.
        for k in 0..=stages {
            b.owners[res]
                .try_claim(who, b.clock.deadline_from_now())
                .expect("resource free");
            let route = b.topo.route(who, res);
            for l in &route.links[..k] {
                let claimed = b
                    .link(l.stage, l.wire)
                    .compare_exchange(VACANT, who as u64, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok();
                assert!(claimed, "stage {k}: fabric should be empty");
            }
            std::thread::sleep(Duration::from_millis(2));
            let mut evicted = Vec::new();
            let n = b.reclaim_expired(&mut |r, w| evicted.push((r, w)));
            assert_eq!(n, 1, "stage {k}: one expired lease");
            assert_eq!(evicted, vec![(res, who)], "stage {k}");
            assert_eq!(held_links(&b), 0, "stage {k}: residue left in fabric");
            // The destination and the swept links are claimable again.
            assert!(b.try_claim_path(0, res), "stage {k}: route still wedged");
            b.free_path(0, res);
            assert_eq!(lease::owner_of(b.owners[res].load()), NO_OWNER);
        }
    }

    #[test]
    fn blocked_acquire_unwinds_on_stop() {
        let b = OmegaBroker::new(2, 1);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(1, &ctl));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block: the resource is held");
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        b.end_transmission(0, g);
        b.release(0, g);
        assert_eq!(held_links(&b), 0);
    }

    #[test]
    fn fabric_covers_workers_and_resources() {
        assert_eq!(OmegaBroker::new(6, 3).ports(), 8);
        assert_eq!(OmegaBroker::new(1, 1).ports(), 2);
        assert_eq!(OmegaBroker::new(4, 4).ports(), 4);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_is_a_protocol_violation() {
        let b = OmegaBroker::new(2, 1);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("free");
        b.end_transmission(0, g);
        b.release(1, g);
    }

    #[test]
    fn try_acquire_claims_a_circuit_or_leaves_no_residue() {
        let b = OmegaBroker::new(2, 1);
        let g = b.try_acquire(0).expect("fabric empty");
        assert_eq!(held_links(&b), b.topo.stages() as usize);
        assert_eq!(b.try_acquire(1), None, "resource held");
        assert_eq!(
            held_links(&b),
            b.topo.stages() as usize,
            "failed probe left no residue"
        );
        b.end_transmission(0, g);
        b.release(0, g);
        let g1 = b.try_acquire(1).expect("free again");
        b.end_transmission(1, g1);
        b.release(1, g1);
        assert_eq!(held_links(&b), 0);
    }
}
