//! Deterministic chaos schedules for the runtime broker: seeded client
//! panics, stalls, and slow-release stragglers, plus resource fault
//! schedules reused straight from `rsin_des` fault machinery.
//!
//! A [`ChaosPlan`] is the runtime twin of the DES's
//! [`FaultPlan`](rsin_des::FaultPlan): inert, seed-deterministic
//! data describing *which client threads misbehave and when*, in model
//! time. The chaos-aware load generators
//! ([`run_load_chaos`](crate::loadgen::run_load_chaos)) execute it — a
//! `Crash` makes the victim thread leak its grant (the guard is
//! deliberately forgotten, simulating fail-stop death mid-protocol) and
//! genuinely unwind via `panic!`; a `Stall` makes the victim sit on its
//! grant far past the lease, turning it into a slow-release straggler that
//! the supervisor evicts and whose own late release must land as
//! harmlessly stale.
//!
//! Resource-side degradation does not get a parallel mechanism: chaos
//! options carry an actual [`rsin_des::FaultPlan`], materialized
//! with the same seed-derived streams the simulator uses, so the runtime
//! and the DES can be driven by the *identical* fault event sequence —
//! that identity is what the degraded-mode cross-validation suite rests
//! on. [`FaultTarget::Element`](rsin_des::FaultTarget::Element)
//! events are ignored here (the runtime brokers have no central element to
//! kill; the [`CentralBroker`](crate::CentralBroker) SPOF baseline models
//! that instead).
//!
//! `ChaosSpec` is the flat, parseable form used by `broker_bench`'s
//! `--chaos` flag and the `RSIN_BROKER_CHAOS` environment variable,
//! following the workspace's `RSIN_CHAOS` convention.

use crate::WorkerId;
use rsin_des::{FaultPlan, SimRng};
use std::time::Duration;

/// What a chaos event does to its victim thread.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClientChaos {
    /// Fail-stop death while holding a grant: the grant leaks (no release,
    /// no audit) and the thread unwinds by panic.
    Crash,
    /// Hold the current grant an extra interval (model units) — far past
    /// the lease, so the supervisor evicts a live straggler.
    StallFor(f64),
}

/// One scheduled misbehavior of one worker thread.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientEvent {
    /// Model time at which the victim's *next grant* misbehaves.
    pub at: f64,
    /// The victim worker.
    pub worker: WorkerId,
    /// What it does.
    pub kind: ClientChaos,
}

/// A seeded, deterministic schedule of client-thread misbehavior.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    events: Vec<ClientEvent>,
}

impl ChaosPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Adds one event (kept sorted by time).
    #[must_use]
    pub fn with(mut self, event: ClientEvent) -> Self {
        self.events.push(event);
        self.events.sort_by(|a, b| a.at.total_cmp(&b.at));
        self
    }

    /// A seeded plan crashing `crash_frac` and stalling `stall_frac` of
    /// the `workers` threads (each fraction rounded up, victims disjoint),
    /// at uniform times inside `window` (model units). Stalls last
    /// `stall_for` model units. Fully deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions sum past 1, the window is empty, or
    /// `stall_for` is not positive.
    #[must_use]
    pub fn seeded(
        seed: u64,
        workers: usize,
        crash_frac: f64,
        stall_frac: f64,
        window: (f64, f64),
        stall_for: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&crash_frac) && (0.0..=1.0).contains(&stall_frac),
            "chaos fractions must be in [0, 1]"
        );
        assert!(window.0 < window.1, "empty chaos window");
        assert!(stall_for > 0.0, "stall duration must be positive");
        let n_crash = ((workers as f64 * crash_frac).ceil() as usize).min(workers);
        let n_stall = ((workers as f64 * stall_frac).ceil() as usize).min(workers - n_crash);
        assert!(
            n_crash + n_stall <= workers,
            "chaos fractions select more victims than workers"
        );
        let mut rng = SimRng::new(seed).derive(0xC4A0);
        let mut victims: Vec<WorkerId> = (0..workers).collect();
        rng.shuffle(&mut victims);
        let mut events = Vec::with_capacity(n_crash + n_stall);
        for (i, &worker) in victims.iter().take(n_crash + n_stall).enumerate() {
            let at = rng.uniform_in(window.0, window.1);
            let kind = if i < n_crash {
                ClientChaos::Crash
            } else {
                ClientChaos::StallFor(stall_for)
            };
            events.push(ClientEvent { at, worker, kind });
        }
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        ChaosPlan { events }
    }

    /// All events, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[ClientEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events aimed at one worker, in time order.
    #[must_use]
    pub fn for_worker(&self, worker: WorkerId) -> Vec<ClientEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.worker == worker)
            .collect()
    }

    /// Model time after which every scheduled misbehavior (including
    /// stall tails) has begun and ended — the "post-chaos" horizon the
    /// liveness assertions count grants after.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                ClientChaos::Crash => e.at,
                ClientChaos::StallFor(s) => e.at + s,
            })
            .fold(0.0, f64::max)
    }

    /// Number of scheduled crashes.
    #[must_use]
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == ClientChaos::Crash)
            .count()
    }

    /// Number of scheduled stalls.
    #[must_use]
    pub fn stalls(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ClientChaos::StallFor(_)))
            .count()
    }
}

/// Everything a chaos-aware load run needs beyond the [`LoadConfig`]:
/// the client misbehavior schedule, the resource fault schedule, and the
/// supervisor cadence.
///
/// [`LoadConfig`]: crate::loadgen::LoadConfig
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Client-thread misbehavior (crashes, stalls).
    pub plan: ChaosPlan,
    /// Resource fail/repair schedule, straight from the DES fault
    /// machinery. [`rsin_des::FaultTarget::Resource`] indices map
    /// to broker resource indices; `Element` events are ignored.
    pub faults: FaultPlan,
    /// Seed materializing the fault plan's stochastic processes (the same
    /// seed fed to the DES reproduces the identical event sequence).
    pub fault_seed: u64,
    /// Lease duration the broker was built with; the supervisor polls a
    /// few times per lease so expiry is detected promptly.
    pub lease: Duration,
}

impl ChaosOptions {
    /// Options with no resource faults.
    #[must_use]
    pub fn new(plan: ChaosPlan, lease: Duration) -> Self {
        ChaosOptions {
            plan,
            faults: FaultPlan::new(),
            fault_seed: 1,
            lease,
        }
    }

    /// How often the supervisor wakes to reclaim and apply faults.
    #[must_use]
    pub fn supervisor_poll(&self) -> Duration {
        (self.lease / 4).clamp(Duration::from_micros(50), Duration::from_millis(2))
    }
}

/// Flat, parseable chaos description for `broker_bench --chaos` and the
/// `RSIN_BROKER_CHAOS` environment variable.
///
/// Format: comma-separated `key=value` pairs — `kill=<frac>`,
/// `stall=<frac>`, `seed=<u64>`, and optionally `mtbf=<f64>`/`mttr=<f64>`
/// (both or neither) for a stochastic single-resource fault process.
/// Example: `kill=0.25,stall=0.25,seed=7,mtbf=40,mttr=8`.
///
/// In net mode (`broker_bench --connect`) two more keys apply:
/// `trunc=<frac>` clients write a truncated frame then close, and
/// `junk=<frac>` clients write byte garbage mid-stream. In thread mode
/// those fractions must stay 0 (there is no wire to corrupt), which the
/// bench layer enforces; `kill` maps to a mid-grant connection drop and
/// `stall` to a half-open stall held past the lease.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Fraction of client threads crashed mid-protocol.
    pub kill: f64,
    /// Fraction of client threads stalled past their lease.
    pub stall: f64,
    /// Net mode only: fraction of clients that send a truncated frame then
    /// close mid-grant.
    pub trunc: f64,
    /// Net mode only: fraction of clients that inject byte garbage
    /// mid-stream.
    pub junk: f64,
    /// Seed for the client schedule and the fault timeline.
    pub seed: u64,
    /// Mean model time between failures of resource 0, if faulting.
    pub mtbf: Option<f64>,
    /// Mean model time to repair, if faulting.
    pub mttr: Option<f64>,
}

impl ChaosSpec {
    /// Parses the `key=value,...` form; returns a human-readable message
    /// on malformed input (callers wrap it in their typed parse error).
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut out = ChaosSpec {
            kill: 0.0,
            stall: 0.0,
            trunc: 0.0,
            junk: 0.0,
            seed: 1,
            mtbf: None,
            mttr: None,
        };
        if spec.trim().is_empty() {
            return Err("empty chaos spec".into());
        }
        for pair in spec.split(',') {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item `{pair}` is not key=value"))?;
            let bad = |what: &str| format!("chaos spec `{key}` has invalid {what}: `{value}`");
            let frac = |value: &str| -> Result<f64, String> {
                let v: f64 = value.trim().parse().map_err(|_| bad("fraction"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(bad("fraction (want 0..=1)"));
                }
                Ok(v)
            };
            match key.trim() {
                "kill" => out.kill = frac(value)?,
                "stall" => out.stall = frac(value)?,
                "trunc" => out.trunc = frac(value)?,
                "junk" => out.junk = frac(value)?,
                "seed" => out.seed = value.trim().parse().map_err(|_| bad("seed"))?,
                "mtbf" => {
                    let v: f64 = value.trim().parse().map_err(|_| bad("time"))?;
                    if !(v.is_finite() && v > 0.0) {
                        return Err(bad("time (want > 0)"));
                    }
                    out.mtbf = Some(v);
                }
                "mttr" => {
                    let v: f64 = value.trim().parse().map_err(|_| bad("time"))?;
                    if !(v.is_finite() && v > 0.0) {
                        return Err(bad("time (want > 0)"));
                    }
                    out.mttr = Some(v);
                }
                other => return Err(format!("unknown chaos spec key `{other}`")),
            }
        }
        let victims = out.kill + out.stall + out.trunc + out.junk;
        if victims > 1.0 {
            return Err(format!(
                "kill + stall + trunc + junk = {victims} selects more victims than workers"
            ));
        }
        if out.mtbf.is_some() != out.mttr.is_some() {
            return Err("mtbf and mttr must be given together".into());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_sized() {
        let p = ChaosPlan::seeded(7, 10, 0.2, 0.1, (10.0, 50.0), 5.0);
        let q = ChaosPlan::seeded(7, 10, 0.2, 0.1, (10.0, 50.0), 5.0);
        assert_eq!(p.events(), q.events(), "same seed, same plan");
        let r = ChaosPlan::seeded(8, 10, 0.2, 0.1, (10.0, 50.0), 5.0);
        assert_ne!(p.events(), r.events(), "different seed, different plan");
        assert_eq!(p.crashes(), 2);
        assert_eq!(p.stalls(), 1);
        let mut victims: Vec<_> = p.events().iter().map(|e| e.worker).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 3, "victims are disjoint");
        for e in p.events() {
            assert!((10.0..50.0).contains(&e.at));
        }
        assert!(p.horizon() >= 10.0 && p.horizon() < 55.0);
    }

    #[test]
    fn events_stay_time_sorted_and_filterable() {
        let p = ChaosPlan::new()
            .with(ClientEvent {
                at: 9.0,
                worker: 1,
                kind: ClientChaos::Crash,
            })
            .with(ClientEvent {
                at: 3.0,
                worker: 0,
                kind: ClientChaos::StallFor(2.0),
            });
        assert_eq!(p.events()[0].worker, 0, "sorted by time");
        assert_eq!(p.for_worker(1).len(), 1);
        assert_eq!(p.horizon(), 9.0);
    }

    #[test]
    fn spec_parses_the_full_form() {
        let s = ChaosSpec::parse("kill=0.25,stall=0.25,seed=7,mtbf=40,mttr=8").expect("valid");
        assert_eq!(
            s,
            ChaosSpec {
                kill: 0.25,
                stall: 0.25,
                trunc: 0.0,
                junk: 0.0,
                seed: 7,
                mtbf: Some(40.0),
                mttr: Some(8.0),
            }
        );
        let minimal = ChaosSpec::parse("kill=0.5").expect("valid");
        assert_eq!(minimal.kill, 0.5);
        assert_eq!(minimal.seed, 1);
        let net = ChaosSpec::parse("kill=0.2,trunc=0.2,junk=0.2,seed=3").expect("valid");
        assert_eq!(net.trunc, 0.2);
        assert_eq!(net.junk, 0.2);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "",
            "kill",
            "kill=x",
            "kill=1.5",
            "stall=-0.1",
            "seed=abc",
            "bogus=1",
            "kill=0.6,stall=0.6",
            "kill=0.4,stall=0.3,trunc=0.3,junk=0.3",
            "trunc=2",
            "junk=nope",
            "mtbf=40",
            "mttr=0",
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }
}
