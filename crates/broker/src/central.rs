//! The central-scheduler baseline: one arbiter thread that every grant
//! must pass through — the runtime twin of the DES's
//! `CentralOmegaNetwork`, existing to reproduce the paper's
//! distributed-vs-central resilience claim end to end.
//!
//! The paper's core argument for distributing the scheduler into the
//! fabric is that a central scheduler is a single point of failure. The
//! three distributed disciplines in this crate have no grant-critical
//! thread: every worker makes progress through its own CAS protocol, and
//! the chaos suite shows them granting straight through client deaths.
//! [`CentralBroker`] is the opposite by construction — workers post
//! requests to per-worker mailboxes and a single **arbiter thread** is
//! the only thing that ever assigns a resource. [`CentralBroker::kill_arbiter`]
//! fail-stops that thread: every outstanding and future acquire then
//! blocks forever (until its [`RunControl`] stops it), which is exactly
//! the demonstration `tests/chaos.rs` asserts against the distributed
//! disciplines' continued throughput.
//!
//! The mailbox protocol is deliberately minimal (this is a baseline, not
//! a product): a worker CASes its mailbox `IDLE → REQUEST`, the arbiter
//! answers with a resource index, and release posts `RELEASING` for the
//! arbiter to collect. Leases, faults, and reclamation are not modeled —
//! the SPOF is the point.

use crate::{Broker, BrokerGrant, ReleaseOutcome, RunControl, Waiter, WorkerId, VACANT};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Mailbox sentinel: no request outstanding.
const IDLE: u64 = u64::MAX;
/// Mailbox sentinel: grant wanted.
const REQUEST: u64 = u64::MAX - 1;
/// Mailbox sentinel: grant being handed back.
const RELEASING: u64 = u64::MAX - 2;

#[derive(Debug)]
struct Inner {
    resources: usize,
    /// One mailbox per worker: [`IDLE`], [`REQUEST`], [`RELEASING`], or a
    /// granted resource index.
    mailboxes: Vec<AtomicU64>,
    /// Owner words, written only by the arbiter (workers just read).
    slots: Vec<AtomicU64>,
    /// Orderly shutdown (Drop).
    shutdown: AtomicBool,
    /// The fail-stop switch.
    killed: AtomicBool,
}

impl Inner {
    /// The arbiter: the single thread through which every grant flows.
    fn arbitrate(&self) {
        let mut assigned: Vec<Option<usize>> = vec![None; self.mailboxes.len()];
        loop {
            if self.killed.load(Ordering::Acquire) || self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let mut progress = false;
            for (w, mailbox) in self.mailboxes.iter().enumerate() {
                match mailbox.load(Ordering::Acquire) {
                    RELEASING => {
                        let r = assigned[w].take().expect("release without a grant");
                        self.slots[r].store(VACANT, Ordering::Release);
                        mailbox.store(IDLE, Ordering::Release);
                        progress = true;
                    }
                    REQUEST => {
                        if let Some(r) = self
                            .slots
                            .iter()
                            .position(|s| s.load(Ordering::Relaxed) == VACANT)
                        {
                            self.slots[r].store(w as u64, Ordering::Release);
                            assigned[w] = Some(r);
                            mailbox.store(r as u64, Ordering::Release);
                            progress = true;
                        }
                    }
                    _ => {}
                }
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

/// Single-arbiter broker: the runtime single-point-of-failure baseline.
///
/// # Examples
///
/// ```
/// use rsin_broker::{Broker, CentralBroker, RunControl};
///
/// let broker = CentralBroker::new(2, 1);
/// let ctl = RunControl::new();
/// let grant = broker.acquire(0, &ctl).expect("arbiter alive");
/// broker.end_transmission(0, grant);
/// broker.release(0, grant);
/// broker.kill_arbiter(); // from here on, nobody is ever granted again
/// ```
#[derive(Debug)]
pub struct CentralBroker {
    workers: usize,
    inner: Arc<Inner>,
    arbiter: Mutex<Option<JoinHandle<()>>>,
}

impl CentralBroker {
    /// Creates the broker and spawns its arbiter thread.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `resources` is zero.
    #[must_use]
    pub fn new(workers: usize, resources: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(resources > 0, "need at least one resource");
        let inner = Arc::new(Inner {
            resources,
            mailboxes: (0..workers).map(|_| AtomicU64::new(IDLE)).collect(),
            slots: (0..resources).map(|_| AtomicU64::new(VACANT)).collect(),
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
        });
        let arbiter_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("central-arbiter".into())
            .spawn(move || arbiter_inner.arbitrate())
            .expect("spawn arbiter");
        CentralBroker {
            workers,
            inner,
            arbiter: Mutex::new(Some(handle)),
        }
    }

    /// Fail-stops the arbiter thread (and joins it, so "dead" is definite
    /// when this returns). Outstanding grants stay granted; every pending
    /// and future acquire blocks until its [`RunControl`] stops.
    pub fn kill_arbiter(&self) {
        self.inner.killed.store(true, Ordering::Release);
        if let Some(handle) = self.arbiter.lock().expect("arbiter handle").take() {
            handle.join().expect("arbiter panicked");
        }
    }

    /// Whether the arbiter has been killed.
    #[must_use]
    pub fn arbiter_dead(&self) -> bool {
        self.inner.killed.load(Ordering::Acquire)
    }
}

impl Drop for CentralBroker {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.arbiter.lock().expect("arbiter handle").take() {
            handle.join().expect("arbiter panicked");
        }
    }
}

impl Broker for CentralBroker {
    fn workers(&self) -> usize {
        self.workers
    }

    fn resources(&self) -> usize {
        self.inner.resources
    }

    fn acquire(&self, who: WorkerId, ctl: &RunControl) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let mailbox = &self.inner.mailboxes[who];
        // Wait out any previous release still being collected, then post.
        let mut waiter = Waiter::new();
        loop {
            if ctl.is_stopped() {
                return None;
            }
            if mailbox
                .compare_exchange(IDLE, REQUEST, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
            waiter.wait();
        }
        let mut grant_wait = Waiter::new();
        loop {
            let v = mailbox.load(Ordering::Acquire);
            if v < RELEASING {
                return Some(BrokerGrant {
                    resource: v as usize,
                    generation: 0,
                });
            }
            if ctl.is_stopped() {
                // Retract the request; if a grant landed in the race,
                // take it and hand it straight back.
                if mailbox
                    .compare_exchange(REQUEST, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    let v = mailbox.load(Ordering::Acquire);
                    if v < RELEASING {
                        mailbox.store(RELEASING, Ordering::Release);
                    }
                }
                return None;
            }
            grant_wait.wait();
        }
    }

    fn try_acquire(&self, who: WorkerId) -> Option<BrokerGrant> {
        debug_assert!(who < self.workers, "worker id out of range");
        let mailbox = &self.inner.mailboxes[who];
        // A busy mailbox (previous release still uncollected) fails the
        // probe outright rather than waiting for the arbiter.
        if mailbox
            .compare_exchange(IDLE, REQUEST, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        // The arbiter answers asynchronously: give it a bounded number of
        // poll rounds (it wakes at least every 50 µs), then retract.
        let mut grant_wait = Waiter::new();
        for _ in 0..64 {
            let v = mailbox.load(Ordering::Acquire);
            if v < RELEASING {
                return Some(BrokerGrant {
                    resource: v as usize,
                    generation: 0,
                });
            }
            grant_wait.wait();
        }
        if mailbox
            .compare_exchange(REQUEST, IDLE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // A grant landed while we were retracting — keep it.
            let v = mailbox.load(Ordering::Acquire);
            if v < RELEASING {
                return Some(BrokerGrant {
                    resource: v as usize,
                    generation: 0,
                });
            }
        }
        None
    }

    fn end_transmission(&self, _who: WorkerId, _grant: BrokerGrant) {
        // The baseline models no separate transmission circuit.
    }

    fn release_audited(
        &self,
        who: WorkerId,
        grant: BrokerGrant,
        audit: &mut dyn FnMut(usize, WorkerId),
    ) -> ReleaseOutcome {
        audit(grant.resource, who);
        self.inner.mailboxes[who].store(RELEASING, Ordering::Release);
        ReleaseOutcome::Released
    }

    fn available_resources(&self) -> usize {
        self.inner
            .slots
            .iter()
            .filter(|s| s.load(Ordering::Acquire) == VACANT)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_and_releases_through_the_arbiter() {
        let b = CentralBroker::new(3, 2);
        let ctl = RunControl::new();
        let g0 = b.acquire(0, &ctl).expect("arbiter alive");
        let g1 = b.acquire(1, &ctl).expect("second resource");
        assert_ne!(g0.resource, g1.resource);
        assert_eq!(b.available_resources(), 0);
        // A third acquire blocks until a release is collected.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(2, &ctl));
            std::thread::sleep(Duration::from_millis(20));
            assert!(!handle.is_finished(), "must block while saturated");
            b.release(0, g0);
            let g = handle.join().expect("no panic").expect("granted");
            b.release(2, g);
        });
        b.release(1, g1);
        // Releases are asynchronous; wait for the arbiter to collect.
        let mut w = Waiter::new();
        while b.available_resources() != 2 {
            w.wait();
        }
    }

    #[test]
    fn killed_arbiter_stops_granting_but_stop_still_unblocks() {
        let b = CentralBroker::new(2, 2);
        let ctl = RunControl::new();
        let g = b.acquire(0, &ctl).expect("arbiter alive");
        b.kill_arbiter();
        assert!(b.arbiter_dead());
        // Resources are free, yet nobody is ever granted again.
        std::thread::scope(|s| {
            let handle = s.spawn(|| b.acquire(1, &ctl));
            std::thread::sleep(Duration::from_millis(30));
            assert!(
                !handle.is_finished(),
                "no grants without the central scheduler"
            );
            ctl.stop();
            assert_eq!(handle.join().expect("no panic"), None);
        });
        // The holder's release is posted but never collected — frozen.
        b.release(0, g);
        assert_eq!(b.available_resources(), 1);
    }

    #[test]
    fn try_acquire_grants_while_alive_and_times_out_when_killed() {
        let b = CentralBroker::new(2, 1);
        let g = b.try_acquire(0).expect("arbiter alive");
        assert_eq!(b.try_acquire(1), None, "saturated: probe retracts");
        b.release(0, g);
        b.kill_arbiter();
        assert_eq!(b.try_acquire(1), None, "dead arbiter never answers");
    }
}
