//! Candidate topologies: the paper's classic `p / i×j×k N / r` systems plus
//! the composite organizations the provisioning search explores.
//!
//! Two composites extend the paper's single-class networks, both grounded
//! in the related work (Rastogi et al.'s fault-tolerant Omegas and
//! Stergiou's multi-lane MIN study motivate the axis):
//!
//! * **Clustered crossbar → Omega core**: `c` crossbar concentrators of
//!   `j_c` processors each funnel onto `u` uplink trunks per cluster; the
//!   `c·u` trunks enter one square Omega core whose output ports carry the
//!   resources. Crossbars are nonblocking, so a cluster admits up to `u`
//!   concurrent circuits; blocking happens only in the shared core.
//! * **Multi-lane Omega**: a classic Omega fabric whose interstage links
//!   carry `lanes` simultaneous circuits each (duplicated box datapaths),
//!   trading switch-point cost for reduced blocking.
//!
//! Every constructor validates its dimension products with checked
//! arithmetic: the search enumerates shapes mechanically into the
//! thousands of processors, and a wrapped product must surface as a typed
//! [`ConfigError`], never as an aliased dimension.

use rsin_core::{ConfigError, NetworkKind, SystemConfig};
use std::fmt;

/// A clustered-crossbar front end feeding a shared Omega core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClusteredXbar {
    clusters: u32,
    cluster_inputs: u32,
    uplinks: u32,
    resources_per_port: u32,
}

impl ClusteredXbar {
    /// Builds and validates a clustered organization: `clusters · uplinks`
    /// must be a power of two ≥ 2 (the core size), uplinks must not exceed
    /// the cluster's inputs (it is a concentrator), and every derived
    /// product must fit `u32`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when a structural constraint fails or a
    /// dimension product overflows.
    pub fn new(
        clusters: u32,
        cluster_inputs: u32,
        uplinks: u32,
        resources_per_port: u32,
    ) -> Result<Self, ConfigError> {
        let fail = |what: String| Err(ConfigError::Invalid { what });
        if clusters == 0 || cluster_inputs == 0 || uplinks == 0 || resources_per_port == 0 {
            return fail("all counts must be positive".into());
        }
        if uplinks > cluster_inputs {
            return fail(format!(
                "a concentrator needs uplinks <= inputs, got {uplinks} > {cluster_inputs}"
            ));
        }
        let Some(core) = clusters.checked_mul(uplinks) else {
            return fail(format!("core size {clusters}*{uplinks} overflows u32"));
        };
        if !core.is_power_of_two() || core < 2 {
            return fail(format!(
                "the Omega core needs a power-of-two size >= 2, got {clusters}*{uplinks} = {core}"
            ));
        }
        if clusters.checked_mul(cluster_inputs).is_none() {
            return fail(format!(
                "processor count {clusters}*{cluster_inputs} overflows u32"
            ));
        }
        if core.checked_mul(resources_per_port).is_none() {
            return fail(format!(
                "total resources {core}*{resources_per_port} overflows u32"
            ));
        }
        Ok(ClusteredXbar {
            clusters,
            cluster_inputs,
            uplinks,
            resources_per_port,
        })
    }

    /// Number of crossbar clusters.
    #[must_use]
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Processors per cluster.
    #[must_use]
    pub fn cluster_inputs(&self) -> u32 {
        self.cluster_inputs
    }

    /// Uplink trunks per cluster.
    #[must_use]
    pub fn uplinks(&self) -> u32 {
        self.uplinks
    }

    /// Ports of the shared Omega core (`clusters · uplinks`).
    #[must_use]
    pub fn core_size(&self) -> u32 {
        self.clusters * self.uplinks
    }

    /// Resources on each core output port.
    #[must_use]
    pub fn resources_per_port(&self) -> u32 {
        self.resources_per_port
    }
}

/// A multi-lane Omega organization: `networks` independent square fabrics
/// whose links each carry `lanes` circuits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MultiLaneOmega {
    networks: u32,
    size: u32,
    lanes: u32,
    resources_per_port: u32,
}

impl MultiLaneOmega {
    /// Builds and validates a multi-lane organization: `size` must be a
    /// power of two ≥ 2, `lanes` in `1..=8` (each lane duplicates the box
    /// datapaths; beyond a few lanes the fabric is effectively nonblocking
    /// and a crossbar is cheaper), and every product must fit `u32`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when a structural constraint fails or a
    /// dimension product overflows.
    pub fn new(
        networks: u32,
        size: u32,
        lanes: u32,
        resources_per_port: u32,
    ) -> Result<Self, ConfigError> {
        let fail = |what: String| Err(ConfigError::Invalid { what });
        if networks == 0 || size == 0 || lanes == 0 || resources_per_port == 0 {
            return fail("all counts must be positive".into());
        }
        if !size.is_power_of_two() || size < 2 {
            return fail(format!(
                "multistage networks need a power-of-two size >= 2, got {size}"
            ));
        }
        if lanes > 8 {
            return fail(format!("lanes must be in 1..=8, got {lanes}"));
        }
        if networks.checked_mul(size).is_none() {
            return fail(format!("processor count {networks}*{size} overflows u32"));
        }
        if networks
            .checked_mul(size)
            .and_then(|ports| ports.checked_mul(resources_per_port))
            .is_none()
        {
            return fail(format!(
                "total resources {networks}*{size}*{resources_per_port} overflows u32"
            ));
        }
        Ok(MultiLaneOmega {
            networks,
            size,
            lanes,
            resources_per_port,
        })
    }

    /// Independent fabric copies.
    #[must_use]
    pub fn networks(&self) -> u32 {
        self.networks
    }

    /// Ports per fabric (power of two).
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Circuits each link carries simultaneously.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Resources on each output port.
    #[must_use]
    pub fn resources_per_port(&self) -> u32 {
        self.resources_per_port
    }
}

/// One point of the configuration space the optimizer searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CandidateTopology {
    /// A classic `p / i×j×k N / r` system.
    Classic(SystemConfig),
    /// Clustered crossbars feeding a shared Omega core.
    Clustered(ClusteredXbar),
    /// A multi-lane Omega fabric.
    MultiLane(MultiLaneOmega),
}

impl CandidateTopology {
    /// Total processor count `p`.
    #[must_use]
    pub fn processors(&self) -> u32 {
        match self {
            CandidateTopology::Classic(c) => c.processors(),
            CandidateTopology::Clustered(c) => c.clusters() * c.cluster_inputs(),
            CandidateTopology::MultiLane(m) => m.networks() * m.size(),
        }
    }

    /// Total resources in the system.
    #[must_use]
    pub fn total_resources(&self) -> u32 {
        match self {
            CandidateTopology::Classic(c) => c.total_resources(),
            CandidateTopology::Clustered(c) => c.core_size() * c.resources_per_port(),
            CandidateTopology::MultiLane(m) => m.networks() * m.size() * m.resources_per_port(),
        }
    }

    /// Total output ports (each carrying `r` resources).
    #[must_use]
    pub fn total_ports(&self) -> u32 {
        match self {
            CandidateTopology::Classic(c) => c.total_ports(),
            CandidateTopology::Clustered(c) => c.core_size(),
            CandidateTopology::MultiLane(m) => m.networks() * m.size(),
        }
    }

    /// Resources per output port.
    #[must_use]
    pub fn resources_per_port(&self) -> u32 {
        match self {
            CandidateTopology::Classic(c) => c.resources_per_port(),
            CandidateTopology::Clustered(c) => c.resources_per_port(),
            CandidateTopology::MultiLane(m) => m.resources_per_port(),
        }
    }

    /// Short class token for tables and CSV rows.
    #[must_use]
    pub fn family_token(&self) -> &'static str {
        match self {
            CandidateTopology::Classic(c) => c.kind().token(),
            CandidateTopology::Clustered(_) => "CLX",
            CandidateTopology::MultiLane(_) => "MLOMEGA",
        }
    }
}

impl fmt::Display for CandidateTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CandidateTopology::Classic(c) => c.fmt(f),
            CandidateTopology::Clustered(c) => write!(
                f,
                "{}/{}x{}>{} CLX/{}",
                self.processors(),
                c.clusters(),
                c.cluster_inputs(),
                c.core_size(),
                c.resources_per_port()
            ),
            CandidateTopology::MultiLane(m) => write!(
                f,
                "{}/{}x{}x{} OMEGA*{}/{}",
                self.processors(),
                m.networks(),
                m.size(),
                m.size(),
                m.lanes(),
                m.resources_per_port()
            ),
        }
    }
}

/// Convenience: a classic config from its components, for tests and shape
/// ladders.
///
/// # Errors
///
/// Propagates [`SystemConfig::new`] validation.
pub fn classic(
    processors: u32,
    networks: u32,
    kind: NetworkKind,
    inputs: u32,
    outputs: u32,
    resources_per_port: u32,
) -> Result<CandidateTopology, ConfigError> {
    SystemConfig::new(
        processors,
        networks,
        kind,
        inputs,
        outputs,
        resources_per_port,
    )
    .map(CandidateTopology::Classic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_validates_structure() {
        // 4 clusters of 8 procs, 4 uplinks each -> 16-port core.
        let c = ClusteredXbar::new(4, 8, 4, 2).expect("valid");
        assert_eq!(c.core_size(), 16);
        let t = CandidateTopology::Clustered(c);
        assert_eq!(t.processors(), 32);
        assert_eq!(t.total_resources(), 32);
        assert_eq!(t.to_string(), "32/4x8>16 CLX/2");
        // Core must be a power of two.
        assert!(ClusteredXbar::new(3, 8, 2, 2).is_err());
        // Concentrator: uplinks can't exceed inputs.
        assert!(ClusteredXbar::new(4, 2, 4, 2).is_err());
        // Overflow-checked products.
        assert!(ClusteredXbar::new(1 << 16, 1 << 16, 1 << 16, 1).is_err());
        assert!(ClusteredXbar::new(1 << 16, 1 << 16, 1 << 15, 4).is_err());
    }

    #[test]
    fn multilane_validates_structure() {
        let m = MultiLaneOmega::new(2, 16, 2, 2).expect("valid");
        let t = CandidateTopology::MultiLane(m);
        assert_eq!(t.processors(), 32);
        assert_eq!(t.total_resources(), 64);
        assert_eq!(t.to_string(), "32/2x16x16 OMEGA*2/2");
        assert!(MultiLaneOmega::new(1, 12, 2, 2).is_err());
        assert!(MultiLaneOmega::new(1, 16, 9, 2).is_err());
        assert!(MultiLaneOmega::new(1 << 20, 1 << 12, 1, 1).is_err());
        assert!(MultiLaneOmega::new(1 << 10, 1 << 10, 1, 1 << 12).is_err());
    }

    #[test]
    fn classic_passthrough() {
        let t = classic(16, 16, NetworkKind::SharedBus, 1, 1, 2).expect("valid");
        assert_eq!(t.to_string(), "16/16x1x1 SBUS/2");
        assert_eq!(t.total_ports(), 16);
        assert_eq!(t.family_token(), "SBUS");
    }
}
