//! # rsin-provision — cost-aware provisioning over the configuration space
//!
//! The paper's comparative question — which `p / i×j×k NET / r` system is
//! most cost-effective at a given load — turned into a search tool:
//!
//! - [`topo`]: candidate topologies — the classic single-class systems
//!   plus two composites (clustered crossbars feeding an Omega core,
//!   multi-lane Omega fabrics), all with overflow-checked dimensions so
//!   thousands of processors enumerate safely.
//! - [`cost`]: Table-I switch-point/bus-tap hardware counts and a
//!   user-overridable unit-price model.
//! - [`slo`]: the delay evaluator — analytic chains (warm-started and
//!   cached) where they exist, parallel DES where they don't, with a
//!   saturation guard in front of both.
//! - [`search`]: guided coordinate descent per shape with monotone
//!   pruning on the `r` axis, Pareto frontier output, DES confirmation of
//!   the winner, and an optional degraded-mode recheck.
//!
//! # Example
//!
//! Find the cheapest shared-bus organization of 16 processors meeting a
//! normalized-delay SLO at the paper's reference load:
//!
//! ```
//! use rsin_provision::{search, Family, SearchSpec};
//!
//! let mut spec = SearchSpec::new(16, 0.3, 0.1, 1.0)?;
//! spec.families = vec![Family::Sbus];
//! spec.confirm = None; // skip the DES confirmation in this doc test
//! let report = search(&spec)?;
//! let winner = report.winner.expect("feasible at this load");
//! println!("{} at cost {}", winner.topo, winner.cost);
//! # Ok::<(), rsin_core::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod netmodel;
pub mod search;
pub mod slo;
pub mod topo;

pub use cost::{hardware, CostModel, Hardware};
pub use netmodel::{ClusteredXbarNet, MultiLaneOmegaNet};
pub use search::{search, Candidate, Confirmation, Family, SearchReport, SearchSpec};
pub use slo::{
    build_network, DelayOutcome, DelayValue, EvalCounters, EvalQuality, Evaluator, Method,
    TrafficProfile, EVAL_SEED,
};
pub use topo::{classic, CandidateTopology, ClusteredXbar, MultiLaneOmega};
