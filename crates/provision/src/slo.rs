//! The SLO evaluator: "does configuration C meet delay target D under
//! traffic profile T?"
//!
//! The evaluator prefers the analytic chains and falls back to simulation
//! only where no chain covers the topology:
//!
//! * **SBUS** partitions are exact shared-bus chains
//!   ([`rsin_queueing::SharedBusChain`]); solves go through the cached,
//!   seed-threading entry point so a sweep reuses both retained solutions
//!   and converged rate matrices.
//! * **XBAR** partitions with `k ≤ 3` output buses are exact small-`m`
//!   chains ([`rsin_queueing::SmallCrossbarChain`]) with π-vector seed
//!   threading.
//! * Everything else — Omega/Cube fabrics, wide crossbars, and the
//!   composite topologies — runs the parallel DES
//!   ([`rsin_core::estimate_delay_jobs`]).
//!
//! The traffic profile is **absolute** (λ, µ_n, µ_s fixed for the whole
//! search). This is what makes the search's monotone pruning sound: under
//! a fixed offered load, adding resources (or ports, or lanes) at the same
//! shape never increases delay. A relative convention (ρ against each
//! candidate's own pool) would re-scale λ per candidate and break that
//! ordering.

use crate::netmodel::{ClusteredXbarNet, MultiLaneOmegaNet};
use crate::topo::CandidateTopology;
use rsin_core::{
    estimate_delay_jobs, ConfigError, NetworkKind, ResourceNetwork, SimOptions, Workload,
};
use rsin_omega::{Admission, OmegaNetwork};
use rsin_queueing::{
    solve_shared_bus_chained, traffic, SharedBusParams, SharedBusSeed, SmallCrossbarChain,
    SmallCrossbarParams, SmallCrossbarSeed, SolveError,
};
use rsin_sbus::{Arbitration, SharedBusNetwork};
use rsin_xbar::{CrossbarNetwork, CrossbarPolicy};
use std::collections::HashMap;

/// Replication seed shared by every DES evaluation (the paper's year, as
/// elsewhere in the workspace).
pub const EVAL_SEED: u64 = 1983;

/// An absolute traffic profile: per-processor arrival rate and the two
/// stage rates, fixed for an entire search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficProfile {
    /// Per-processor task arrival rate λ.
    pub lambda: f64,
    /// Transmission rate µ_n.
    pub mu_n: f64,
    /// Service rate µ_s.
    pub mu_s: f64,
}

impl TrafficProfile {
    /// Builds a profile from explicit rates.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when any rate is non-positive or non-finite.
    pub fn new(lambda: f64, mu_n: f64, mu_s: f64) -> Result<Self, ConfigError> {
        for (v, what) in [
            (lambda, "lambda must be positive and finite"),
            (mu_n, "mu_n must be positive and finite"),
            (mu_s, "mu_s must be positive and finite"),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::Invalid { what: what.into() });
            }
        }
        Ok(TrafficProfile { lambda, mu_n, mu_s })
    }

    /// The paper's reference convention: µ_n = 1, µ_s = `ratio`, and λ set
    /// so that intensity `rho` holds at the reference pool of `R = 2p`
    /// resources (the figures' plotting convention). The resulting λ is
    /// then held fixed across every candidate of the search.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] for `rho` outside `(0, 1)`, a bad `ratio`,
    /// or a reference pool `2p` that overflows `u32`.
    pub fn reference(p: u32, rho: f64, ratio: f64) -> Result<Self, ConfigError> {
        if !(rho.is_finite() && rho > 0.0 && rho < 1.0) {
            return Err(ConfigError::Invalid {
                what: format!("traffic intensity must be in (0, 1), got {rho}"),
            });
        }
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(ConfigError::Invalid {
                what: format!("mu_s/mu_n ratio must be positive and finite, got {ratio}"),
            });
        }
        let Some(reference_pool) = p.checked_mul(2) else {
            return Err(ConfigError::Invalid {
                what: format!("reference resource pool 2*{p} overflows u32"),
            });
        };
        let mu_n = 1.0;
        let mu_s = ratio;
        let lambda = traffic::lambda_for_intensity(p, reference_pool, rho, mu_n, mu_s);
        TrafficProfile::new(lambda, mu_n, mu_s)
    }

    /// The profile as a simulator workload.
    ///
    /// # Panics
    ///
    /// Does not panic: the rates were validated at construction.
    #[must_use]
    pub fn workload(&self) -> Workload {
        Workload::new(self.lambda, self.mu_n, self.mu_s).expect("rates validated at construction")
    }
}

/// Simulation effort for DES evaluations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalQuality {
    /// Warmup tasks discarded per replication.
    pub warmup: u64,
    /// Measured tasks per replication.
    pub measured: u64,
    /// Independent replications (95% CI).
    pub reps: usize,
    /// Worker threads for the replications (estimates are identical for
    /// every value).
    pub jobs: usize,
}

impl EvalQuality {
    /// Search-loop effort: enough to rank candidates.
    #[must_use]
    pub fn quick(jobs: usize) -> Self {
        EvalQuality {
            warmup: 500,
            measured: 4_000,
            reps: 2,
            jobs,
        }
    }

    /// Confirmation effort: tighter CI for the winners.
    #[must_use]
    pub fn confirm(jobs: usize) -> Self {
        EvalQuality {
            warmup: 2_000,
            measured: 16_000,
            reps: 5,
            jobs,
        }
    }

    pub(crate) fn sim_options(&self) -> SimOptions {
        SimOptions {
            warmup_tasks: self.warmup,
            measured_tasks: self.measured,
        }
    }
}

/// How a delay figure was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Exact shared-bus matrix-geometric chain.
    SbusChain,
    /// Exact small-`m` crossbar chain.
    XbarChain,
    /// Parallel discrete-event simulation.
    Des,
}

impl Method {
    /// Short token for reports.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            Method::SbusChain => "sbus-chain",
            Method::XbarChain => "xbar-chain",
            Method::Des => "des",
        }
    }
}

/// A delay figure for one candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayValue {
    /// Normalized mean queueing delay `d · µ_s`.
    pub normalized_delay: f64,
    /// 95% CI half-width (0 for analytic values).
    pub half_width: f64,
    /// How the figure was obtained.
    pub method: Method,
}

/// Outcome of evaluating one candidate under the profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayOutcome {
    /// The candidate is stable; here is its delay.
    Value(DelayValue),
    /// The offered load meets or exceeds the candidate's capacity (no
    /// steady state; the delay target is unreachable).
    Saturated,
}

impl DelayOutcome {
    /// Whether this outcome meets a normalized-delay target.
    #[must_use]
    pub fn meets(&self, target: f64) -> bool {
        match self {
            DelayOutcome::Value(v) => v.normalized_delay <= target,
            DelayOutcome::Saturated => false,
        }
    }
}

/// Evaluation counters, reported by the search driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalCounters {
    /// Candidates answered by an analytic chain.
    pub analytic: u64,
    /// Candidates answered by simulation.
    pub des: u64,
    /// Candidates rejected by the saturation guard without any solve.
    pub guarded: u64,
}

/// The evaluator: dispatches candidates to the cheapest adequate model,
/// threading warm-start seeds across solves.
#[derive(Debug)]
pub struct Evaluator {
    profile: TrafficProfile,
    quality: EvalQuality,
    /// Shared-bus seeds keyed by the per-bus resource count (`R` matrices
    /// transfer across `p` and λ, never across `r`).
    sbus_seeds: HashMap<u32, SharedBusSeed>,
    /// Crossbar seeds keyed by `(buses, resources_per_bus)` (π vectors
    /// transfer only within one per-level state-space shape).
    xbar_seeds: HashMap<(u32, u32), SmallCrossbarSeed>,
    counters: EvalCounters,
}

impl Evaluator {
    /// Builds an evaluator for one search's profile and effort.
    #[must_use]
    pub fn new(profile: TrafficProfile, quality: EvalQuality) -> Self {
        Evaluator {
            profile,
            quality,
            sbus_seeds: HashMap::new(),
            xbar_seeds: HashMap::new(),
            counters: EvalCounters::default(),
        }
    }

    /// The profile this evaluator holds fixed.
    #[must_use]
    pub fn profile(&self) -> TrafficProfile {
        self.profile
    }

    /// Snapshot of the dispatch counters.
    #[must_use]
    pub fn counters(&self) -> EvalCounters {
        self.counters
    }

    /// Evaluates one candidate's normalized delay under the profile.
    pub fn evaluate(&mut self, topo: &CandidateTopology) -> DelayOutcome {
        if !self.stable_enough(topo) {
            self.counters.guarded += 1;
            return DelayOutcome::Saturated;
        }
        match topo {
            CandidateTopology::Classic(c) if c.kind() == NetworkKind::SharedBus => {
                self.eval_sbus_chain(c.inputs(), c.outputs() * c.resources_per_port())
            }
            CandidateTopology::Classic(c)
                if c.kind() == NetworkKind::Crossbar && c.outputs() <= 3 =>
            {
                self.eval_xbar_chain(c.inputs(), c.outputs(), c.resources_per_port())
            }
            _ => self.eval_des(topo),
        }
    }

    /// Evaluates by DES regardless of analytic coverage — the confirmation
    /// pass for winners found analytically.
    pub fn evaluate_des(&mut self, topo: &CandidateTopology) -> DelayOutcome {
        if !self.stable_enough(topo) {
            self.counters.guarded += 1;
            return DelayOutcome::Saturated;
        }
        self.eval_des(topo)
    }

    /// The saturation guard: the offered load must sit clearly inside both
    /// the transmission and the service capacity. The bound is generous
    /// (real fabrics block below it), so passing the guard does not imply
    /// stability — failing it implies saturation.
    fn stable_enough(&self, topo: &CandidateTopology) -> bool {
        let offered = f64::from(topo.processors()) * self.profile.lambda;
        let transmission = f64::from(max_circuits(topo)) * self.profile.mu_n;
        let service = f64::from(topo.total_resources()) * self.profile.mu_s;
        offered < 0.95 * transmission.min(service)
    }

    fn eval_sbus_chain(&mut self, procs_per_bus: u32, resources_per_bus: u32) -> DelayOutcome {
        let params = SharedBusParams {
            processors: procs_per_bus,
            resources: resources_per_bus,
            lambda: self.profile.lambda,
            mu_n: self.profile.mu_n,
            mu_s: self.profile.mu_s,
        };
        self.counters.analytic += 1;
        let seed = self.sbus_seeds.get(&resources_per_bus);
        match solve_shared_bus_chained(params, seed) {
            Ok((sol, next_seed)) => {
                if let Some(s) = next_seed {
                    self.sbus_seeds.insert(resources_per_bus, s);
                }
                DelayOutcome::Value(DelayValue {
                    normalized_delay: sol.normalized_delay,
                    half_width: 0.0,
                    method: Method::SbusChain,
                })
            }
            Err(SolveError::Unstable { .. }) => DelayOutcome::Saturated,
            // NoConvergence should not occur for validated stable points;
            // treat it as saturation rather than crashing a long search.
            Err(_) => DelayOutcome::Saturated,
        }
    }

    fn eval_xbar_chain(&mut self, procs: u32, buses: u32, resources_per_bus: u32) -> DelayOutcome {
        let params = SmallCrossbarParams {
            processors: procs,
            buses,
            resources_per_bus,
            lambda: self.profile.lambda,
            mu_n: self.profile.mu_n,
            mu_s: self.profile.mu_s,
        };
        self.counters.analytic += 1;
        let chain = match SmallCrossbarChain::new(params) {
            Ok(c) => c,
            Err(SolveError::Unstable { .. }) => return DelayOutcome::Saturated,
            Err(_) => return DelayOutcome::Saturated,
        };
        let key = (buses, resources_per_bus);
        let seed = self.xbar_seeds.get(&key);
        match chain.solve_seeded(seed) {
            Ok((sol, next_seed)) => {
                self.xbar_seeds.insert(key, next_seed);
                DelayOutcome::Value(DelayValue {
                    normalized_delay: sol.normalized_delay,
                    half_width: 0.0,
                    method: Method::XbarChain,
                })
            }
            Err(_) => DelayOutcome::Saturated,
        }
    }

    fn eval_des(&mut self, topo: &CandidateTopology) -> DelayOutcome {
        self.counters.des += 1;
        let workload = self.profile.workload();
        let opts = self.quality.sim_options();
        let topo = *topo;
        let est = estimate_delay_jobs(
            move || build_network(&topo),
            &workload,
            &opts,
            EVAL_SEED,
            self.quality.reps,
            self.quality.jobs,
        );
        DelayOutcome::Value(DelayValue {
            normalized_delay: est.normalized_delay,
            half_width: est.half_width,
            method: Method::Des,
        })
    }
}

/// Upper bound on simultaneously held circuits — the transmission-side
/// capacity the saturation guard checks against.
fn max_circuits(topo: &CandidateTopology) -> u32 {
    match topo {
        CandidateTopology::Classic(c) => match c.kind() {
            // One transmission per bus at a time.
            NetworkKind::SharedBus => c.networks(),
            _ => c.networks() * c.inputs().min(c.outputs()),
        },
        CandidateTopology::Clustered(c) => c.core_size(),
        CandidateTopology::MultiLane(m) => m.networks() * m.size(),
    }
}

/// Builds the DES model of a candidate.
///
/// # Panics
///
/// Panics if the candidate's kind and its validated dimensions disagree
/// (impossible for values produced by the `topo` constructors).
#[must_use]
pub fn build_network(topo: &CandidateTopology) -> Box<dyn ResourceNetwork> {
    match topo {
        CandidateTopology::Classic(c) => match c.kind() {
            NetworkKind::SharedBus => Box::new(
                SharedBusNetwork::from_config(c, Arbitration::FixedPriority).expect("kind checked"),
            ),
            NetworkKind::Crossbar => Box::new(
                CrossbarNetwork::from_config(c, CrossbarPolicy::FixedPriority)
                    .expect("kind checked"),
            ),
            NetworkKind::Omega | NetworkKind::Cube => Box::new(
                OmegaNetwork::from_config(c, Admission::Simultaneous).expect("kind checked"),
            ),
        },
        CandidateTopology::Clustered(c) => Box::new(ClusteredXbarNet::new(*c)),
        CandidateTopology::MultiLane(m) => Box::new(MultiLaneOmegaNet::new(*m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::classic;

    fn quick_eval(p: u32, rho: f64, ratio: f64) -> Evaluator {
        let profile = TrafficProfile::reference(p, rho, ratio).expect("valid profile");
        Evaluator::new(profile, EvalQuality::quick(1))
    }

    #[test]
    fn analytic_dispatch_covers_sbus_and_small_xbar() {
        let mut ev = quick_eval(16, 0.2, 0.1);
        let sbus = classic(16, 16, NetworkKind::SharedBus, 1, 1, 2).expect("valid");
        let xbar = classic(16, 8, NetworkKind::Crossbar, 2, 2, 2).expect("valid");
        assert!(matches!(
            ev.evaluate(&sbus),
            DelayOutcome::Value(DelayValue {
                method: Method::SbusChain,
                ..
            })
        ));
        assert!(matches!(
            ev.evaluate(&xbar),
            DelayOutcome::Value(DelayValue {
                method: Method::XbarChain,
                ..
            })
        ));
        assert_eq!(ev.counters().analytic, 2);
        assert_eq!(ev.counters().des, 0);
    }

    #[test]
    fn des_fallback_covers_omega_and_composites() {
        let mut ev = quick_eval(16, 0.2, 0.1);
        let omega = classic(16, 1, NetworkKind::Omega, 16, 16, 2).expect("valid");
        match ev.evaluate(&omega) {
            DelayOutcome::Value(v) => {
                assert_eq!(v.method, Method::Des);
                assert!(v.normalized_delay >= 0.0);
            }
            DelayOutcome::Saturated => panic!("moderate load must be stable"),
        }
        assert_eq!(ev.counters().des, 1);
    }

    #[test]
    fn saturation_guard_rejects_hopeless_candidates() {
        let mut ev = quick_eval(16, 0.3, 0.1);
        // One bus, one resource for 16 processors at rho=0.3 of a 32-pool:
        // hopeless, and the guard must say so without a solve.
        let tiny = classic(16, 1, NetworkKind::SharedBus, 16, 1, 1).expect("valid");
        assert_eq!(ev.evaluate(&tiny), DelayOutcome::Saturated);
        assert_eq!(ev.counters().guarded, 1);
        assert!(!DelayOutcome::Saturated.meets(f64::INFINITY));
    }

    #[test]
    fn delay_is_monotone_in_resources_at_fixed_shape() {
        // The pruning premise, checked on the exact chain: more resources
        // per bus never raises delay under a fixed absolute profile.
        let mut ev = quick_eval(16, 0.3, 0.1);
        let mut last = f64::INFINITY;
        for r in [2u32, 4, 8] {
            let cfg = classic(16, 16, NetworkKind::SharedBus, 1, 1, r).expect("valid");
            match ev.evaluate(&cfg) {
                DelayOutcome::Value(v) => {
                    assert!(
                        v.normalized_delay <= last + 1e-12,
                        "delay rose from {last} to {} at r={r}",
                        v.normalized_delay
                    );
                    last = v.normalized_delay;
                }
                DelayOutcome::Saturated => panic!("reference load must be feasible at r={r}"),
            }
        }
    }
}
