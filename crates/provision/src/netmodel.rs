//! DES models of the composite topologies — the simulation fallback the
//! SLO evaluator uses where no analytic chain exists.
//!
//! Both models implement [`ResourceNetwork`] over link-level circuit
//! switching on an [`OmegaTopology`]: a request claims every interstage
//! link of its destination-tag route (respecting each link's lane
//! capacity), holds them through transmission, and releases them when
//! service begins — the same lifecycle the classic Omega model follows,
//! with two structural twists:
//!
//! * [`ClusteredXbarNet`] concentrates `j_c` processors per cluster onto
//!   `u` uplink trunks through a nonblocking crossbar, so at most `u`
//!   circuits per cluster are in flight and the core fabric is smaller
//!   than `p`.
//! * [`MultiLaneOmegaNet`] gives every link a lane capacity > 1, so two
//!   circuits sharing a link no longer conflict until the lanes fill.
//!
//! Scheduling is deterministic (no RNG draws): processors are scanned from
//! a rotating start each cycle, and each grants the first destination port
//! with a free resource and a free route, also scanned from a rotating
//! start. The rotation keeps long-run fairness without consuming
//! simulation randomness, so replicated runs stay a pure function of the
//! replication seed.

use crate::topo::{ClusteredXbar, MultiLaneOmega};
use rsin_core::{Grant, NetworkCounters, ResourceNetwork};
use rsin_des::SimRng;
use rsin_topology::{Multistage, OmegaTopology, Route};
use std::collections::HashMap;

/// Link-occupancy state of one (or several) Omega fabrics, with a lane
/// capacity per link.
#[derive(Clone, Debug)]
struct LinkFabric {
    topo: OmegaTopology,
    size: usize,
    lanes: u8,
    /// Occupancy per copy, flattened `[stage][wire]`.
    load: Vec<Vec<u8>>,
}

impl LinkFabric {
    fn new(copies: usize, size: usize, lanes: u8) -> Self {
        let topo = OmegaTopology::new(size).expect("validated power-of-two size");
        let stages = topo.stages() as usize;
        LinkFabric {
            topo,
            size,
            lanes,
            load: vec![vec![0u8; stages * size]; copies],
        }
    }

    fn slot(&self, link: rsin_topology::Link) -> usize {
        link.stage as usize * self.size + link.wire
    }

    fn route_free(&self, copy: usize, route: &Route) -> bool {
        route
            .links
            .iter()
            .all(|&l| self.load[copy][self.slot(l)] < self.lanes)
    }

    fn claim(&mut self, copy: usize, route: &Route) {
        for &l in &route.links {
            let s = self.slot(l);
            self.load[copy][s] += 1;
        }
    }

    fn release(&mut self, copy: usize, route: &Route) {
        for &l in &route.links {
            let s = self.slot(l);
            debug_assert!(self.load[copy][s] > 0, "releasing a free link");
            self.load[copy][s] -= 1;
        }
    }
}

/// One in-flight circuit: where it terminates and what it still holds.
#[derive(Clone, Debug)]
struct Circuit {
    /// Global output port.
    port: usize,
    /// Fabric copy the route runs through.
    copy: usize,
    /// The held route; emptied once transmission ends (links released).
    route: Option<Route>,
    /// Uplink slot held through transmission (clustered model only).
    uplink: Option<usize>,
}

/// Shared port-side state: busy counts, fault status, circuits.
#[derive(Clone, Debug)]
struct PortPool {
    resources_per_port: u32,
    busy: Vec<u32>,
    up: Vec<bool>,
}

impl PortPool {
    fn new(ports: usize, resources_per_port: u32) -> Self {
        PortPool {
            resources_per_port,
            busy: vec![0; ports],
            up: vec![true; ports],
        }
    }

    fn has_free(&self, port: usize) -> bool {
        self.up[port] && self.busy[port] < self.resources_per_port
    }
}

/// Clustered crossbars feeding a shared Omega core (see module docs).
#[derive(Clone, Debug)]
pub struct ClusteredXbarNet {
    spec: ClusteredXbar,
    fabric: LinkFabric,
    /// One flag per core input slot; cluster `c` owns
    /// `[c*u, (c+1)*u)`.
    uplink_used: Vec<bool>,
    pool: PortPool,
    circuits: HashMap<usize, Circuit>,
    rotate: usize,
    counters: NetworkCounters,
}

impl ClusteredXbarNet {
    /// Builds the network for a validated clustered topology.
    #[must_use]
    pub fn new(spec: ClusteredXbar) -> Self {
        let s = spec.core_size() as usize;
        ClusteredXbarNet {
            spec,
            fabric: LinkFabric::new(1, s, 1),
            uplink_used: vec![false; s],
            pool: PortPool::new(s, spec.resources_per_port()),
            circuits: HashMap::new(),
            rotate: 0,
            counters: NetworkCounters::default(),
        }
    }

    /// Tries to place one processor's request; returns the grant on
    /// success.
    fn try_place(&mut self, processor: usize) -> Option<Grant> {
        let u = self.spec.uplinks() as usize;
        let cluster = processor / self.spec.cluster_inputs() as usize;
        let s = self.spec.core_size() as usize;
        let base = cluster * u;
        // The cluster crossbar is nonblocking: any free uplink slot serves.
        let free_uplinks: Vec<usize> = (base..base + u).filter(|&i| !self.uplink_used[i]).collect();
        if free_uplinks.is_empty() {
            return None;
        }
        // Scan destinations from the rotating start; for each port with a
        // free resource, try every free uplink until a route fits.
        for step in 0..s {
            let port = (self.rotate + step) % s;
            if !self.pool.has_free(port) {
                continue;
            }
            for &uplink in &free_uplinks {
                let route = self.fabric.topo.route(uplink, port);
                if self.fabric.route_free(0, &route) {
                    self.fabric.claim(0, &route);
                    self.counters.boxes_traversed += route.links.len() as u64;
                    self.uplink_used[uplink] = true;
                    self.pool.busy[port] += 1;
                    self.circuits.insert(
                        processor,
                        Circuit {
                            port,
                            copy: 0,
                            route: Some(route),
                            uplink: Some(uplink),
                        },
                    );
                    return Some(Grant { processor, port });
                }
            }
        }
        None
    }
}

impl ResourceNetwork for ClusteredXbarNet {
    fn processors(&self) -> usize {
        (self.spec.clusters() * self.spec.cluster_inputs()) as usize
    }

    fn total_resources(&self) -> usize {
        (self.spec.core_size() * self.spec.resources_per_port()) as usize
    }

    fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
        let p = pending.len();
        let mut grants = Vec::new();
        self.rotate = self.rotate.wrapping_add(1);
        for step in 0..p {
            let proc = (self.rotate + step) % p;
            if !pending[proc] || self.circuits.contains_key(&proc) {
                continue;
            }
            self.counters.attempts += 1;
            match self.try_place(proc) {
                Some(g) => grants.push(g),
                None => self.counters.rejections += 1,
            }
        }
        grants
    }

    fn end_transmission(&mut self, grant: Grant) {
        let c = self
            .circuits
            .get_mut(&grant.processor)
            .expect("transmission ends on a held circuit");
        if let Some(route) = c.route.take() {
            self.fabric.release(c.copy, &route);
        }
        if let Some(uplink) = c.uplink.take() {
            self.uplink_used[uplink] = false;
        }
    }

    fn end_service(&mut self, grant: Grant) {
        let c = self
            .circuits
            .remove(&grant.processor)
            .expect("service ends on a held circuit");
        // A port failure zeroes its busy count and drops its circuits, so
        // a straggling end_service for it must not underflow.
        if self.pool.busy[c.port] > 0 {
            self.pool.busy[c.port] -= 1;
        }
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn fail_resource(&mut self, port: usize) -> bool {
        if port >= self.pool.up.len() || !self.pool.up[port] {
            return false;
        }
        self.pool.up[port] = false;
        self.pool.busy[port] = 0;
        self.counters.resource_failures += 1;
        // Drop every circuit terminating at the port, releasing whatever
        // it still holds; the simulator requeues the casualties.
        let victims: Vec<usize> = self
            .circuits
            .iter()
            .filter(|(_, c)| c.port == port)
            .map(|(&p, _)| p)
            .collect();
        for v in victims {
            let c = self.circuits.remove(&v).expect("listed above");
            if let Some(route) = &c.route {
                self.fabric.release(c.copy, route);
            }
            if let Some(uplink) = c.uplink {
                self.uplink_used[uplink] = false;
            }
        }
        true
    }

    fn repair_resource(&mut self, port: usize) -> bool {
        if port >= self.pool.up.len() || self.pool.up[port] {
            return false;
        }
        self.pool.up[port] = true;
        self.counters.resource_repairs += 1;
        true
    }

    fn label(&self) -> &'static str {
        "CLX"
    }
}

/// A multi-lane Omega fabric (see module docs).
#[derive(Clone, Debug)]
pub struct MultiLaneOmegaNet {
    spec: MultiLaneOmega,
    fabric: LinkFabric,
    pool: PortPool,
    circuits: HashMap<usize, Circuit>,
    rotate: usize,
    counters: NetworkCounters,
}

impl MultiLaneOmegaNet {
    /// Builds the network for a validated multi-lane topology.
    ///
    /// # Panics
    ///
    /// Panics if `lanes > 8` (excluded by the topology's constructor).
    #[must_use]
    pub fn new(spec: MultiLaneOmega) -> Self {
        let size = spec.size() as usize;
        let copies = spec.networks() as usize;
        let lanes = u8::try_from(spec.lanes()).expect("lanes validated <= 8");
        MultiLaneOmegaNet {
            spec,
            fabric: LinkFabric::new(copies, size, lanes),
            pool: PortPool::new(copies * size, spec.resources_per_port()),
            circuits: HashMap::new(),
            rotate: 0,
            counters: NetworkCounters::default(),
        }
    }

    fn try_place(&mut self, processor: usize) -> Option<Grant> {
        let size = self.spec.size() as usize;
        let copy = processor / size;
        let src = processor % size;
        for step in 0..size {
            let local = (self.rotate + step) % size;
            let port = copy * size + local;
            if !self.pool.has_free(port) {
                continue;
            }
            let route = self.fabric.topo.route(src, local);
            if self.fabric.route_free(copy, &route) {
                self.fabric.claim(copy, &route);
                self.counters.boxes_traversed += route.links.len() as u64;
                self.pool.busy[port] += 1;
                self.circuits.insert(
                    processor,
                    Circuit {
                        port,
                        copy,
                        route: Some(route),
                        uplink: None,
                    },
                );
                return Some(Grant { processor, port });
            }
        }
        None
    }
}

impl ResourceNetwork for MultiLaneOmegaNet {
    fn processors(&self) -> usize {
        (self.spec.networks() * self.spec.size()) as usize
    }

    fn total_resources(&self) -> usize {
        (self.spec.networks() * self.spec.size() * self.spec.resources_per_port()) as usize
    }

    fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
        let p = pending.len();
        let mut grants = Vec::new();
        self.rotate = self.rotate.wrapping_add(1);
        for step in 0..p {
            let proc = (self.rotate + step) % p;
            if !pending[proc] || self.circuits.contains_key(&proc) {
                continue;
            }
            self.counters.attempts += 1;
            match self.try_place(proc) {
                Some(g) => grants.push(g),
                None => self.counters.rejections += 1,
            }
        }
        grants
    }

    fn end_transmission(&mut self, grant: Grant) {
        let c = self
            .circuits
            .get_mut(&grant.processor)
            .expect("transmission ends on a held circuit");
        if let Some(route) = c.route.take() {
            self.fabric.release(c.copy, &route);
        }
    }

    fn end_service(&mut self, grant: Grant) {
        let c = self
            .circuits
            .remove(&grant.processor)
            .expect("service ends on a held circuit");
        if self.pool.busy[c.port] > 0 {
            self.pool.busy[c.port] -= 1;
        }
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn fail_resource(&mut self, port: usize) -> bool {
        if port >= self.pool.up.len() || !self.pool.up[port] {
            return false;
        }
        self.pool.up[port] = false;
        self.pool.busy[port] = 0;
        self.counters.resource_failures += 1;
        let victims: Vec<usize> = self
            .circuits
            .iter()
            .filter(|(_, c)| c.port == port)
            .map(|(&p, _)| p)
            .collect();
        for v in victims {
            let c = self.circuits.remove(&v).expect("listed above");
            if let Some(route) = &c.route {
                self.fabric.release(c.copy, route);
            }
        }
        true
    }

    fn repair_resource(&mut self, port: usize) -> bool {
        if port >= self.pool.up.len() || self.pool.up[port] {
            return false;
        }
        self.pool.up[port] = true;
        self.counters.resource_repairs += 1;
        true
    }

    fn label(&self) -> &'static str {
        "MLOMEGA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_cycle(net: &mut dyn ResourceNetwork, pending: &[bool]) -> Vec<Grant> {
        let mut rng = SimRng::new(7);
        net.request_cycle(pending, &mut rng)
    }

    #[test]
    fn clustered_concentration_caps_in_flight_circuits_per_cluster() {
        // 2 clusters of 4 procs, 1 uplink each -> 2-port core: at most one
        // circuit per cluster regardless of demand.
        let spec = ClusteredXbar::new(2, 4, 1, 4).expect("valid");
        let mut net = ClusteredXbarNet::new(spec);
        let pending = vec![true; 8];
        let grants = drive_cycle(&mut net, &pending);
        assert_eq!(grants.len(), 2, "one uplink per cluster");
        let more = drive_cycle(&mut net, &pending);
        assert!(more.is_empty(), "uplinks are saturated");
        // Finishing one transmission frees the uplink for a clustermate.
        net.end_transmission(grants[0]);
        let refill = drive_cycle(&mut net, &pending);
        assert_eq!(refill.len(), 1);
        net.end_service(grants[0]);
    }

    #[test]
    fn multilane_lanes_lift_link_conflicts() {
        // In a 4-port Omega, sources 0 and 1 to the same-box destinations
        // share the stage-0 output link region under heavy demand; with
        // enough lanes every processor can hold a circuit at once.
        let lanes2 = MultiLaneOmega::new(1, 4, 4, 1).expect("valid");
        let mut net = MultiLaneOmegaNet::new(lanes2);
        let pending = vec![true; 4];
        let grants = drive_cycle(&mut net, &pending);
        assert_eq!(grants.len(), 4, "4 lanes make the fabric nonblocking");

        let lanes1 = MultiLaneOmega::new(1, 4, 1, 1).expect("valid");
        let mut net1 = MultiLaneOmegaNet::new(lanes1);
        let g1 = drive_cycle(&mut net1, &pending);
        assert!(
            g1.len() >= 2,
            "distinct ports with free links must still connect"
        );
        assert!(g1.len() <= 4);
    }

    #[test]
    fn grants_never_double_and_release_restores_capacity() {
        let spec = MultiLaneOmega::new(2, 4, 2, 1).expect("valid");
        let mut net = MultiLaneOmegaNet::new(spec);
        let pending = vec![true; 8];
        let grants = drive_cycle(&mut net, &pending);
        let mut seen = std::collections::HashSet::new();
        for g in &grants {
            assert!(seen.insert(g.processor), "double grant for {}", g.processor);
        }
        // Full lifecycle: all capacity returns.
        for g in &grants {
            net.end_transmission(*g);
        }
        for g in &grants {
            net.end_service(*g);
        }
        assert!(net.circuits.is_empty());
        assert!(net.pool.busy.iter().all(|&b| b == 0));
        assert!(net
            .fabric
            .load
            .iter()
            .all(|copy| copy.iter().all(|&l| l == 0)));
    }

    #[test]
    fn resource_fault_drops_circuits_and_blocks_the_port() {
        let spec = ClusteredXbar::new(2, 2, 2, 1).expect("valid");
        let mut net = ClusteredXbarNet::new(spec);
        let pending = vec![true; 4];
        let grants = drive_cycle(&mut net, &pending);
        assert!(!grants.is_empty());
        let hit = grants[0].port;
        assert!(net.fail_resource(hit));
        assert!(!net.fail_resource(hit), "double fault refused");
        // The casualty's circuit is gone; its processor can request again,
        // but never lands on the dead port.
        let again = drive_cycle(&mut net, &pending);
        assert!(again.iter().all(|g| g.port != hit));
        assert!(net.repair_resource(hit));
        assert!(!net.repair_resource(hit));
        let counters = net.take_counters();
        assert_eq!(counters.resource_failures, 1);
        assert_eq!(counters.resource_repairs, 1);
    }
}
