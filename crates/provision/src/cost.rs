//! The hardware cost model behind the paper's cost-effectiveness framing.
//!
//! Section VI weighs `COST_net` against `COST_res` without committing to
//! absolute units; this module makes the comparison computable. Network
//! hardware is counted in two structural units:
//!
//! * **Switch points** — active crosspoints. A `j×k` crossbar has `j·k`
//!   (Table I cells); a square Omega/Cube fabric of size `j` has
//!   `(j/2)·log2 j` interchange boxes of 4 switch points each, i.e.
//!   `2·j·log2 j` — the `O(N log N)` vs `O(N²)` hardware argument the
//!   paper's Section V makes. A multi-lane fabric duplicates its box
//!   datapaths per lane.
//! * **Bus taps** — passive connections to a time-shared bus: `j + 1` per
//!   bus (its processors plus the resource pool port).
//!
//! Resources and processors carry their own unit costs. All four unit
//! prices are user-overridable; the defaults put one resource at 8 switch
//! points, the regime the paper's reference comparison (and Table II's
//! middle rows) lives in.

use crate::topo::CandidateTopology;
use rsin_core::NetworkKind;

/// Structural hardware counts of a candidate, in the two network units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hardware {
    /// Active crosspoints (crossbar cells, interchange-box points).
    pub switch_points: u64,
    /// Passive bus taps.
    pub bus_taps: u64,
}

/// Counts the network hardware of a candidate topology.
#[must_use]
pub fn hardware(topo: &CandidateTopology) -> Hardware {
    match topo {
        CandidateTopology::Classic(c) => {
            let i = u64::from(c.networks());
            let j = u64::from(c.inputs());
            let k = u64::from(c.outputs());
            match c.kind() {
                NetworkKind::SharedBus => Hardware {
                    switch_points: 0,
                    bus_taps: i * (j + 1),
                },
                NetworkKind::Crossbar => Hardware {
                    switch_points: i * j * k,
                    bus_taps: 0,
                },
                NetworkKind::Omega | NetworkKind::Cube => Hardware {
                    switch_points: i * 2 * j * u64::from(j.trailing_zeros()),
                    bus_taps: 0,
                },
            }
        }
        CandidateTopology::Clustered(c) => {
            let clusters = u64::from(c.clusters());
            let jc = u64::from(c.cluster_inputs());
            let u = u64::from(c.uplinks());
            let s = u64::from(c.core_size());
            Hardware {
                switch_points: clusters * jc * u + 2 * s * u64::from(s.trailing_zeros()),
                bus_taps: 0,
            }
        }
        CandidateTopology::MultiLane(m) => {
            let i = u64::from(m.networks());
            let j = u64::from(m.size());
            let lanes = u64::from(m.lanes());
            Hardware {
                switch_points: i * lanes * 2 * j * u64::from(j.trailing_zeros()),
                bus_taps: 0,
            }
        }
    }
}

/// Unit prices combining hardware counts into one scalar cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Price of one active switch point.
    pub per_switch_point: f64,
    /// Price of one passive bus tap.
    pub per_bus_tap: f64,
    /// Price of one resource.
    pub per_resource: f64,
    /// Price of one processor (usually 0: `p` is fixed per search, so it
    /// shifts every candidate equally).
    pub per_processor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_switch_point: 1.0,
            per_bus_tap: 1.0,
            per_resource: 8.0,
            per_processor: 0.0,
        }
    }
}

impl CostModel {
    /// Total cost of a candidate under these unit prices.
    #[must_use]
    pub fn cost(&self, topo: &CandidateTopology) -> f64 {
        let hw = hardware(topo);
        hw.switch_points as f64 * self.per_switch_point
            + hw.bus_taps as f64 * self.per_bus_tap
            + f64::from(topo.total_resources()) * self.per_resource
            + f64::from(topo.processors()) * self.per_processor
    }

    /// Validates that every unit price is finite and non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        [
            self.per_switch_point,
            self.per_bus_tap,
            self.per_resource,
            self.per_processor,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{classic, ClusteredXbar, MultiLaneOmega};

    #[test]
    fn table_counts_match_the_paper_classes() {
        // 16 private buses: 16 * (1 + 1) taps, no switch points.
        let sbus = classic(16, 16, NetworkKind::SharedBus, 1, 1, 2).expect("valid");
        assert_eq!(
            hardware(&sbus),
            Hardware {
                switch_points: 0,
                bus_taps: 32
            }
        );
        // One 16x32 crossbar: 512 cells.
        let xbar = classic(16, 1, NetworkKind::Crossbar, 16, 32, 1).expect("valid");
        assert_eq!(hardware(&xbar).switch_points, 512);
        // One 16x16 Omega: (16/2)*4 boxes * 4 points = 2*16*4 = 128 —
        // the O(N log N) count that undercuts the crossbar's O(N^2).
        let omega = classic(16, 1, NetworkKind::Omega, 16, 16, 2).expect("valid");
        assert_eq!(hardware(&omega).switch_points, 128);
        assert!(hardware(&omega).switch_points < hardware(&xbar).switch_points);
    }

    #[test]
    fn composites_count_both_layers() {
        // 4 clusters of 8x4 crossbars (128 cells) + 16-port core (128).
        let clx = CandidateTopology::Clustered(ClusteredXbar::new(4, 8, 4, 2).expect("valid"));
        assert_eq!(hardware(&clx).switch_points, 128 + 128);
        // Two lanes double the fabric.
        let one = CandidateTopology::MultiLane(MultiLaneOmega::new(1, 16, 1, 2).expect("valid"));
        let two = CandidateTopology::MultiLane(MultiLaneOmega::new(1, 16, 2, 2).expect("valid"));
        assert_eq!(
            hardware(&two).switch_points,
            2 * hardware(&one).switch_points
        );
    }

    #[test]
    fn default_model_prices_resources_above_switch_points() {
        let m = CostModel::default();
        assert!(m.is_valid());
        let omega = classic(16, 1, NetworkKind::Omega, 16, 16, 2).expect("valid");
        let xbar = classic(16, 1, NetworkKind::Crossbar, 16, 32, 1).expect("valid");
        // Equal resource totals: the cheaper fabric decides.
        assert!(m.cost(&omega) < m.cost(&xbar));
        assert!(!CostModel {
            per_resource: f64::NAN,
            ..m
        }
        .is_valid());
    }
}
