//! The search driver: guided coordinate descent over the configuration
//! axes, with monotone pruning and a Pareto frontier output.
//!
//! The space factors into **shapes** (a family plus its structural
//! dimensions — partition count, fabric size, output buses, lanes) times
//! the **resource axis** `r`. Under a fixed absolute traffic profile,
//! delay is monotone nonincreasing in `r` at a fixed shape, so the driver
//! descends each shape's `r` axis by binary search: `O(log r_max)`
//! evaluations find the cheapest feasible `r`, and every unevaluated
//! config below the highest observed failure is *pruned* — inferred
//! infeasible without a solve. The pruned set is reported (and sampled
//! into [`SearchReport::pruned_examples`]) so its soundness is testable.
//!
//! The output is not just an argmin: every shape's cheapest feasible
//! configuration becomes a candidate, and the driver reports the Pareto
//! frontier of (cost, delay) — the configs for which no cheaper candidate
//! is also faster. The winner (cheapest feasible, ties to lower delay) can
//! be confirmed by an independent DES run with CI-based tolerance and
//! optionally re-checked with one resource port failed.

use crate::cost::CostModel;
use crate::slo::{
    build_network, DelayOutcome, DelayValue, EvalCounters, EvalQuality, Evaluator, TrafficProfile,
    EVAL_SEED,
};
use crate::topo::{classic, CandidateTopology, ClusteredXbar, MultiLaneOmega};
use rsin_core::{simulate_faulty, ConfigError, FaultOptions, NetworkKind};
use rsin_des::{replicate_par, FaultPlan, FaultTarget, SimRng, SimTime};
use rsin_queueing::shared_bus_cache_stats;
use std::collections::BTreeSet;

/// A topology family the search can explore.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Partitioned shared buses (analytic).
    Sbus,
    /// Partitioned crossbars (analytic for `k ≤ 3`, DES beyond).
    Xbar,
    /// Partitioned Omega fabrics (DES).
    Omega,
    /// Partitioned indirect binary n-cubes (DES).
    Cube,
    /// Clustered crossbars feeding an Omega core (DES).
    Clustered,
    /// Multi-lane Omega fabrics (DES).
    MultiLane,
}

impl Family {
    /// Every family, in report order.
    pub const ALL: [Family; 6] = [
        Family::Sbus,
        Family::Xbar,
        Family::Omega,
        Family::Cube,
        Family::Clustered,
        Family::MultiLane,
    ];

    /// The families whose evaluation never needs the simulator.
    pub const ANALYTIC: [Family; 2] = [Family::Sbus, Family::Xbar];

    /// Short token (CLI value and report label).
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            Family::Sbus => "sbus",
            Family::Xbar => "xbar",
            Family::Omega => "omega",
            Family::Cube => "cube",
            Family::Clustered => "clx",
            Family::MultiLane => "mlomega",
        }
    }
}

impl std::str::FromStr for Family {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sbus" => Ok(Family::Sbus),
            "xbar" => Ok(Family::Xbar),
            "omega" => Ok(Family::Omega),
            "cube" => Ok(Family::Cube),
            "clx" => Ok(Family::Clustered),
            "mlomega" => Ok(Family::MultiLane),
            other => Err(ConfigError::Invalid {
                what: format!(
                    "unknown family {other:?} (expected sbus|xbar|omega|cube|clx|mlomega)"
                ),
            }),
        }
    }
}

/// What to search: the load point, the SLO, the families, the budget.
#[derive(Clone, Debug)]
pub struct SearchSpec {
    /// Processor count `p` (fixed per search).
    pub processors: u32,
    /// Traffic intensity at the reference pool `R = 2p`.
    pub rho: f64,
    /// Service/transmission ratio `µ_s/µ_n`.
    pub ratio: f64,
    /// SLO: maximum acceptable normalized queueing delay `d · µ_s`.
    pub target: f64,
    /// Largest `r` the descent may reach per shape.
    pub max_resources_per_port: u32,
    /// Families to explore.
    pub families: Vec<Family>,
    /// Unit prices.
    pub cost_model: CostModel,
    /// Simulation effort for search-loop DES evaluations.
    pub quality: EvalQuality,
    /// Independent DES confirmation of the winner (`None` skips it).
    pub confirm: Option<EvalQuality>,
    /// Re-check the winner with one resource port failed.
    pub fault_recheck: bool,
}

impl SearchSpec {
    /// A spec with workspace defaults: every family, `r ≤ 64`, quick
    /// search quality, DES confirmation on, fault recheck off.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] for a zero `p`, a `rho` outside `(0, 1)`,
    /// a bad `ratio`, or a non-positive `target` (validated here so the
    /// search itself cannot fail late on bad numbers).
    pub fn new(processors: u32, rho: f64, ratio: f64, target: f64) -> Result<Self, ConfigError> {
        if processors == 0 {
            return Err(ConfigError::Invalid {
                what: "need at least one processor".into(),
            });
        }
        // Validates rho/ratio ranges and the 2p reference pool.
        TrafficProfile::reference(processors, rho, ratio)?;
        if !(target.is_finite() && target > 0.0) {
            return Err(ConfigError::Invalid {
                what: format!("delay target must be positive and finite, got {target}"),
            });
        }
        Ok(SearchSpec {
            processors,
            rho,
            ratio,
            target,
            max_resources_per_port: 64,
            families: Family::ALL.to_vec(),
            cost_model: CostModel::default(),
            quality: EvalQuality::quick(rsin_des::default_jobs()),
            confirm: Some(EvalQuality::confirm(rsin_des::default_jobs())),
            fault_recheck: false,
        })
    }
}

/// One feasible configuration the search produced.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The configuration.
    pub topo: CandidateTopology,
    /// Its cost under the spec's model.
    pub cost: f64,
    /// Its delay, as evaluated during the search.
    pub delay: DelayValue,
}

/// An independent DES check of the winner.
#[derive(Clone, Copy, Debug)]
pub struct Confirmation {
    /// DES normalized delay.
    pub normalized_delay: f64,
    /// 95% CI half-width of the DES estimate.
    pub half_width: f64,
    /// Whether the DES value meets the target within tolerance
    /// (`target + half_width + 5%` relative slack).
    pub meets_target: bool,
    /// Whether the DES value agrees with the search's figure within
    /// tolerance (`half_width + 5%` relative slack).
    pub agrees_with_search: bool,
}

/// Everything a search run learned.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Processor count searched.
    pub processors: u32,
    /// The SLO target.
    pub target: f64,
    /// Pareto frontier of (cost, delay), cheapest first.
    pub frontier: Vec<Candidate>,
    /// Cheapest feasible configuration (ties broken by lower delay).
    pub winner: Option<Candidate>,
    /// Independent DES check of the winner, when requested.
    pub confirmation: Option<Confirmation>,
    /// DES check of the winner with one resource port failed, when
    /// requested (informational: the SLO is not re-enforced degraded).
    pub degraded: Option<Confirmation>,
    /// Configurations in the enumerated space.
    pub total_configs: u64,
    /// Configurations actually evaluated.
    pub evaluated: u64,
    /// Configurations inferred infeasible by monotonicity (never solved).
    pub pruned_infeasible: u64,
    /// Feasible-but-dominated configurations skipped above the descent's
    /// stopping point.
    pub pruned_dominated: u64,
    /// A sample of the pruned-infeasible set, for soundness auditing.
    pub pruned_examples: Vec<CandidateTopology>,
    /// Evaluator dispatch counters.
    pub eval: EvalCounters,
    /// Shared-bus cache hits observed during this search.
    pub cache_hits: u64,
    /// Shared-bus cache misses observed during this search.
    pub cache_misses: u64,
}

impl SearchReport {
    /// Fraction of the space never evaluated (pruned either way).
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        if self.total_configs == 0 {
            0.0
        } else {
            (self.total_configs - self.evaluated) as f64 / self.total_configs as f64
        }
    }
}

/// One structural shape; `r` is the remaining free axis.
#[derive(Clone, Copy, Debug)]
enum Shape {
    Classic {
        networks: u32,
        kind: NetworkKind,
        inputs: u32,
        outputs: u32,
    },
    Clustered {
        clusters: u32,
        cluster_inputs: u32,
        uplinks: u32,
    },
    MultiLane {
        networks: u32,
        size: u32,
        lanes: u32,
    },
}

impl Shape {
    fn at_r(&self, p: u32, r: u32) -> Option<CandidateTopology> {
        match *self {
            Shape::Classic {
                networks,
                kind,
                inputs,
                outputs,
            } => classic(p, networks, kind, inputs, outputs, r).ok(),
            Shape::Clustered {
                clusters,
                cluster_inputs,
                uplinks,
            } => ClusteredXbar::new(clusters, cluster_inputs, uplinks, r)
                .ok()
                .map(CandidateTopology::Clustered),
            Shape::MultiLane {
                networks,
                size,
                lanes,
            } => MultiLaneOmega::new(networks, size, lanes, r)
                .ok()
                .map(CandidateTopology::MultiLane),
        }
    }
}

fn divisors(p: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 1u32;
    while u64::from(d) * u64::from(d) <= u64::from(p) {
        if p.is_multiple_of(d) {
            out.push(d);
            if d != p / d {
                out.push(p / d);
            }
        }
        d += 1;
    }
    out.sort_unstable();
    out
}

/// Output-bus ladder for crossbar shapes: the analytically covered counts
/// plus power-of-two steps, capped so wide fabrics stay enumerable.
const XBAR_OUTPUTS: [u32; 7] = [1, 2, 3, 4, 8, 16, 32];

/// Lane ladder for multi-lane Omega shapes.
const LANES: [u32; 3] = [1, 2, 4];

fn shapes_for(family: Family, p: u32) -> Vec<Shape> {
    let mut shapes = Vec::new();
    match family {
        Family::Sbus => {
            for i in divisors(p) {
                shapes.push(Shape::Classic {
                    networks: i,
                    kind: NetworkKind::SharedBus,
                    inputs: p / i,
                    outputs: 1,
                });
            }
        }
        Family::Xbar => {
            for i in divisors(p) {
                let j = p / i;
                for k in XBAR_OUTPUTS {
                    if k <= j.saturating_mul(2) {
                        shapes.push(Shape::Classic {
                            networks: i,
                            kind: NetworkKind::Crossbar,
                            inputs: j,
                            outputs: k,
                        });
                    }
                }
            }
        }
        Family::Omega | Family::Cube => {
            let kind = if family == Family::Omega {
                NetworkKind::Omega
            } else {
                NetworkKind::Cube
            };
            for i in divisors(p) {
                let j = p / i;
                if j.is_power_of_two() && j >= 2 {
                    shapes.push(Shape::Classic {
                        networks: i,
                        kind,
                        inputs: j,
                        outputs: j,
                    });
                }
            }
        }
        Family::Clustered => {
            for c in divisors(p) {
                let jc = p / c;
                let mut u = 1u32;
                while u <= jc && u <= 64 {
                    if let Some(core) = c.checked_mul(u) {
                        if core.is_power_of_two() && core >= 2 && core <= p {
                            shapes.push(Shape::Clustered {
                                clusters: c,
                                cluster_inputs: jc,
                                uplinks: u,
                            });
                        }
                    }
                    u *= 2;
                }
            }
        }
        Family::MultiLane => {
            for i in divisors(p) {
                let size = p / i;
                if size.is_power_of_two() && size >= 2 {
                    for lanes in LANES {
                        shapes.push(Shape::MultiLane {
                            networks: i,
                            size,
                            lanes,
                        });
                    }
                }
            }
        }
    }
    shapes
}

/// Result of descending one shape's `r` axis.
struct Descent {
    candidate: Option<Candidate>,
    evaluated: u64,
    total: u64,
    inferred_fail: Vec<u32>,
    inferred_dominated: u64,
}

/// Binary-searches the minimum feasible `r` of one shape.
///
/// Feasibility is monotone in `r`; constructibility (checked dimension
/// products) is anti-monotone, so the feasible region is an interval
/// `[min_r, r_cap]` and `O(log r_max)` evaluations locate its edge.
fn descend_r(
    shape: &Shape,
    p: u32,
    r_max: u32,
    target: f64,
    cost_model: &CostModel,
    ev: &mut Evaluator,
) -> Descent {
    // Largest constructible r (dimension products are monotone in r).
    let mut r_cap = r_max;
    while r_cap >= 1 && shape.at_r(p, r_cap).is_none() {
        r_cap /= 2;
    }
    if r_cap == 0 {
        return Descent {
            candidate: None,
            evaluated: 0,
            total: 0,
            inferred_fail: Vec::new(),
            inferred_dominated: 0,
        };
    }
    let mut touched: BTreeSet<u32> = BTreeSet::new();
    let mut results: Vec<(u32, DelayOutcome)> = Vec::new();
    let mut eval_at = |r: u32, ev: &mut Evaluator| -> bool {
        let topo = shape.at_r(p, r).expect("r <= r_cap is constructible");
        let out = ev.evaluate(&topo);
        touched.insert(r);
        let ok = out.meets(target);
        results.push((r, out));
        ok
    };
    // The shape is feasible at all iff it is feasible at r_cap.
    if !eval_at(r_cap, ev) {
        let inferred_fail = (1..r_cap).collect();
        return Descent {
            candidate: None,
            evaluated: 1,
            total: u64::from(r_cap),
            inferred_fail,
            inferred_dominated: 0,
        };
    }
    let (mut lo, mut hi) = (1u32, r_cap);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if eval_at(mid, ev) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let min_r = lo;
    let delay = results
        .iter()
        .find_map(|(r, out)| match out {
            DelayOutcome::Value(v) if *r == min_r => Some(*v),
            _ => None,
        })
        .expect("the minimal feasible r was evaluated with a value");
    let topo = shape.at_r(p, min_r).expect("constructible");
    let inferred_fail: Vec<u32> = (1..min_r).filter(|r| !touched.contains(r)).collect();
    let inferred_dominated = (min_r + 1..=r_cap).filter(|r| !touched.contains(r)).count() as u64;
    Descent {
        candidate: Some(Candidate {
            cost: cost_model.cost(&topo),
            topo,
            delay,
        }),
        evaluated: touched.len() as u64,
        total: u64::from(r_cap),
        inferred_fail,
        inferred_dominated,
    }
}

/// The Pareto frontier of (cost, delay): cheapest first, each strictly
/// faster than every cheaper candidate.
fn pareto_frontier(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.sort_by(|a, b| {
        a.cost.total_cmp(&b.cost).then(
            a.delay
                .normalized_delay
                .total_cmp(&b.delay.normalized_delay),
        )
    });
    let mut frontier: Vec<Candidate> = Vec::new();
    for c in candidates {
        let dominated = frontier
            .iter()
            .any(|f| f.delay.normalized_delay <= c.delay.normalized_delay);
        if !dominated {
            frontier.push(c);
        }
    }
    frontier
}

fn confirm_winner(
    winner: &Candidate,
    profile: TrafficProfile,
    quality: EvalQuality,
    target: f64,
) -> Confirmation {
    let mut confirm_ev = Evaluator::new(profile, quality);
    match confirm_ev.evaluate_des(&winner.topo) {
        DelayOutcome::Value(v) => {
            let slack = v.half_width + 0.05 * winner.delay.normalized_delay.max(target);
            Confirmation {
                normalized_delay: v.normalized_delay,
                half_width: v.half_width,
                meets_target: v.normalized_delay <= target + slack,
                agrees_with_search: (v.normalized_delay - winner.delay.normalized_delay).abs()
                    <= slack,
            }
        }
        DelayOutcome::Saturated => Confirmation {
            normalized_delay: f64::INFINITY,
            half_width: 0.0,
            meets_target: false,
            agrees_with_search: false,
        },
    }
}

/// DES delay of the winner with one resource port held failed for the
/// whole run.
fn degraded_check(
    winner: &Candidate,
    profile: TrafficProfile,
    quality: EvalQuality,
    target: f64,
) -> Confirmation {
    let workload = profile.workload();
    let opts = quality.sim_options();
    let plan = FaultPlan::new().fail_at(SimTime::new(0.0), FaultTarget::Resource(0));
    let fopts = FaultOptions::default();
    let base = SimRng::new(EVAL_SEED ^ 0x00FA);
    let topo = winner.topo;
    let out = replicate_par(&base, quality.reps, 0.95, quality.jobs, |_, mut rng| {
        let mut net = build_network(&topo);
        match simulate_faulty(net.as_mut(), &workload, &opts, &plan, &fopts, &mut rng) {
            Ok(rep) => rep.normalized_delay(&workload),
            Err(_) => f64::INFINITY,
        }
    });
    let delay = out.mean();
    let half_width = out.interval.map_or(0.0, |ci| ci.half_width);
    let slack = half_width + 0.05 * winner.delay.normalized_delay.max(target);
    Confirmation {
        normalized_delay: delay,
        half_width,
        meets_target: delay <= target + slack,
        agrees_with_search: (delay - winner.delay.normalized_delay).abs() <= slack,
    }
}

/// Runs a full provisioning search.
///
/// # Errors
///
/// [`ConfigError::Invalid`] for an invalid spec (bad rates, empty family
/// list, zero resource budget, invalid cost model).
pub fn search(spec: &SearchSpec) -> Result<SearchReport, ConfigError> {
    if spec.families.is_empty() {
        return Err(ConfigError::Invalid {
            what: "need at least one family to search".into(),
        });
    }
    if spec.max_resources_per_port == 0 {
        return Err(ConfigError::Invalid {
            what: "need a positive resource budget".into(),
        });
    }
    if !spec.cost_model.is_valid() {
        return Err(ConfigError::Invalid {
            what: "cost model prices must be finite and non-negative".into(),
        });
    }
    let profile = TrafficProfile::reference(spec.processors, spec.rho, spec.ratio)?;
    if !(spec.target.is_finite() && spec.target > 0.0) {
        return Err(ConfigError::Invalid {
            what: format!(
                "delay target must be positive and finite, got {}",
                spec.target
            ),
        });
    }
    let cache_before = shared_bus_cache_stats();
    let mut ev = Evaluator::new(profile, spec.quality);
    let mut candidates = Vec::new();
    let mut total_configs = 0u64;
    let mut evaluated = 0u64;
    let mut pruned_infeasible = 0u64;
    let mut pruned_dominated = 0u64;
    let mut pruned_examples: Vec<CandidateTopology> = Vec::new();
    let mut families = spec.families.clone();
    families.dedup();
    for family in families {
        for shape in shapes_for(family, spec.processors) {
            let d = descend_r(
                &shape,
                spec.processors,
                spec.max_resources_per_port,
                spec.target,
                &spec.cost_model,
                &mut ev,
            );
            total_configs += d.total;
            evaluated += d.evaluated;
            pruned_infeasible += d.inferred_fail.len() as u64;
            pruned_dominated += d.inferred_dominated;
            // Keep a small spread of pruned configs per shape for auditing.
            for &r in d.inferred_fail.iter().rev().take(2) {
                if pruned_examples.len() < 16 {
                    if let Some(t) = shape.at_r(spec.processors, r) {
                        pruned_examples.push(t);
                    }
                }
            }
            candidates.extend(d.candidate);
        }
    }
    let frontier = pareto_frontier(candidates);
    // Cheapest feasible overall; the frontier is cost-sorted, and its
    // first entry has the lowest cost (ties resolved to lower delay by
    // the frontier's sort).
    let winner = frontier.first().copied();
    let confirmation = match (&winner, spec.confirm) {
        (Some(w), Some(q)) => Some(confirm_winner(w, profile, q, spec.target)),
        _ => None,
    };
    let degraded = match (&winner, spec.fault_recheck) {
        (Some(w), true) => Some(degraded_check(
            w,
            profile,
            spec.confirm.unwrap_or(spec.quality),
            spec.target,
        )),
        _ => None,
    };
    let cache_after = shared_bus_cache_stats();
    Ok(SearchReport {
        processors: spec.processors,
        target: spec.target,
        frontier,
        winner,
        confirmation,
        degraded,
        total_configs,
        evaluated,
        pruned_infeasible,
        pruned_dominated,
        pruned_examples,
        eval: ev.counters(),
        cache_hits: cache_after.hits - cache_before.hits,
        cache_misses: cache_after.misses - cache_before.misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::Method;

    fn sbus_spec(p: u32, rho: f64, ratio: f64, target: f64) -> SearchSpec {
        let mut spec = SearchSpec::new(p, rho, ratio, target).expect("valid spec");
        spec.families = vec![Family::Sbus];
        spec.confirm = None;
        spec.max_resources_per_port = 16;
        spec
    }

    #[test]
    fn divisors_are_complete_and_sorted() {
        assert_eq!(divisors(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
    }

    #[test]
    fn sbus_search_finds_a_partitioned_winner_on_the_reference_grid() {
        // Self-calibrating acceptance check near the paper's p=16, R=32
        // point: take the delay of the known-good fully partitioned
        // 16/16x1x1 SBUS/2 system as the SLO. The single shared bus is
        // far slower at this load (Fig. 4's separation), so the winner
        // must be a multi-bus SBUS config at least as cheap as the
        // reference.
        let profile = TrafficProfile::reference(16, 0.3, 0.1).expect("valid");
        let mut ev = Evaluator::new(profile, EvalQuality::quick(1));
        let reference = classic(16, 16, NetworkKind::SharedBus, 1, 1, 2).expect("valid");
        let DelayOutcome::Value(ref_delay) = ev.evaluate(&reference) else {
            panic!("reference config must be stable at rho=0.3");
        };
        let target = ref_delay.normalized_delay * 1.05;
        let spec = sbus_spec(16, 0.3, 0.1, target);
        let report = search(&spec).expect("search runs");
        let winner = report.winner.expect("a feasible config exists");
        assert_eq!(winner.topo.family_token(), "SBUS");
        assert!(winner.delay.normalized_delay <= target);
        assert!(
            winner.cost <= spec.cost_model.cost(&reference),
            "winner {} costs {} > reference {}",
            winner.topo,
            winner.cost,
            spec.cost_model.cost(&reference)
        );
        let CandidateTopology::Classic(cfg) = winner.topo else {
            panic!("SBUS family yields classic configs");
        };
        assert!(
            cfg.networks() > 1,
            "a single bus cannot meet the partitioned reference's delay"
        );
        // Everything went through the analytic chain.
        assert_eq!(report.eval.des, 0);
        assert!(report.evaluated > 0);
        assert!(report.pruned_fraction() > 0.0, "binary search must prune");
    }

    #[test]
    fn pruned_examples_are_actually_infeasible() {
        // Monotone-pruning soundness: every config the search skipped as
        // inferred-infeasible must really fail the SLO when evaluated.
        let profile = TrafficProfile::reference(16, 0.3, 0.1).expect("valid");
        let mut ev = Evaluator::new(profile, EvalQuality::quick(1));
        let reference = classic(16, 16, NetworkKind::SharedBus, 1, 1, 4).expect("valid");
        let DelayOutcome::Value(ref_delay) = ev.evaluate(&reference) else {
            panic!("reference config must be stable");
        };
        // A tight target forces failures low on each r axis.
        let target = ref_delay.normalized_delay * 1.01;
        let spec = sbus_spec(16, 0.3, 0.1, target);
        let report = search(&spec).expect("search runs");
        assert!(
            !report.pruned_examples.is_empty(),
            "a tight target must prune something"
        );
        let mut audit = Evaluator::new(profile, EvalQuality::quick(1));
        for topo in &report.pruned_examples {
            assert!(
                !audit.evaluate(topo).meets(target),
                "pruned config {topo} actually meets the SLO"
            );
        }
    }

    #[test]
    fn frontier_is_pareto_and_cost_sorted() {
        let spec = sbus_spec(16, 0.3, 0.1, 5.0);
        let report = search(&spec).expect("search runs");
        let f = &report.frontier;
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].cost <= w[1].cost, "frontier must be cost-sorted");
            assert!(
                w[0].delay.normalized_delay > w[1].delay.normalized_delay,
                "paying more must buy strictly lower delay on the frontier"
            );
        }
        assert!(report.winner.is_some());
    }

    #[test]
    fn confirmation_checks_the_winner_by_des() {
        let mut spec = sbus_spec(8, 0.3, 0.1, 2.0);
        spec.confirm = Some(EvalQuality {
            warmup: 200,
            measured: 2_000,
            reps: 3,
            jobs: 1,
        });
        spec.fault_recheck = true;
        let report = search(&spec).expect("search runs");
        let conf = report.confirmation.expect("confirmation requested");
        assert!(conf.half_width >= 0.0);
        assert!(
            conf.agrees_with_search,
            "DES {} vs analytic {} disagree beyond tolerance",
            conf.normalized_delay,
            report.winner.expect("winner").delay.normalized_delay
        );
        let degraded = report.degraded.expect("fault recheck requested");
        // One failed port costs capacity, so degraded delay can only be
        // worse than or close to the healthy figure.
        assert!(degraded.normalized_delay + 1e-9 >= conf.normalized_delay - conf.half_width);
    }

    #[test]
    fn winner_method_tokens_are_stable() {
        assert_eq!(Method::SbusChain.token(), "sbus-chain");
        assert_eq!("clx".parse::<Family>().expect("ok"), Family::Clustered);
        assert!("bogus".parse::<Family>().is_err());
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        assert!(SearchSpec::new(0, 0.3, 0.1, 1.0).is_err());
        assert!(SearchSpec::new(16, 1.5, 0.1, 1.0).is_err());
        assert!(SearchSpec::new(16, 0.3, -0.1, 1.0).is_err());
        assert!(SearchSpec::new(16, 0.3, 0.1, 0.0).is_err());
        let mut spec = SearchSpec::new(16, 0.3, 0.1, 1.0).expect("valid");
        spec.families.clear();
        assert!(search(&spec).is_err());
        let mut spec2 = SearchSpec::new(16, 0.3, 0.1, 1.0).expect("valid");
        spec2.max_resources_per_port = 0;
        assert!(search(&spec2).is_err());
    }
}
