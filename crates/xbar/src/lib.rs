//! # rsin-xbar — the crossbar (multiple-shared-bus) RSIN (Section IV)
//!
//! A `p × m` crossbar whose every output column is a bus carrying `r`
//! resources, scheduled *in the fabric itself*: each crosspoint cell is
//! eleven gates and a latch implementing the paper's Table-I truth table;
//! request signals sweep the rows and resource-availability signals sweep
//! the columns in a 45° wave, closing crosspoints where they meet. A full
//! request cycle costs at most `4(p+m)` gate delays — independent of how
//! many requests are served — versus `O(p·log m)` for a centralized
//! scheduler serving the same batch.
//!
//! - [`Cell`] / [`Mode`]: the Table-I cell (exhaustively tested).
//! - [`CrossbarFabric`]: the wave-propagation array with request and reset
//!   cycles and gate-delay accounting.
//! - [`CrossbarNetwork`] / [`CrossbarPolicy`]: the simulatable
//!   [`ResourceNetwork`](rsin_core::ResourceNetwork), with the paper's
//!   asymmetric fixed-priority fabric or the POLYP-style random token.
//! - [`CentralScheduler`]: the sequential baseline's cost model.
//!
//! # Example
//!
//! ```
//! use rsin_xbar::CrossbarFabric;
//!
//! // Fig. 6: requests meet availability in a wave; low rows win ties.
//! let mut fabric = CrossbarFabric::new(4, 2);
//! let grants = fabric.request_cycle(&[true, true, true, true], &[true, true]);
//! assert_eq!(grants, vec![(0, 0), (1, 1)]);
//! assert_eq!(fabric.request_cycle_gate_delay(), 4 * (4 + 2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitslice;
mod cell;
mod central;
mod fabric;
mod model;

pub use bitslice::BitFabric;
pub use cell::{Cell, Mode, REQUEST_GATE_DELAY, RESET_GATE_DELAY};
pub use central::CentralScheduler;
pub use fabric::CrossbarFabric;
pub use model::{CrossbarNetwork, CrossbarPolicy, WrongKindError};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use rsin_core::{simulate, SimOptions, SystemConfig, Workload};
    use rsin_des::SimRng;
    use rsin_queueing::approx::{crossbar_heavy_load, crossbar_light_load, CrossbarParams};

    fn simulate_delay(cfg: &SystemConfig, w: &Workload, seed: u64) -> f64 {
        let mut net =
            CrossbarNetwork::from_config(cfg, CrossbarPolicy::FixedPriority).expect("xbar");
        let mut rng = SimRng::new(seed);
        let opts = SimOptions {
            warmup_tasks: 5_000,
            measured_tasks: 60_000,
        };
        simulate(&mut net, w, &opts, &mut rng).mean_delay()
    }

    /// Section IV: "the approximate delays are very close to the simulation
    /// results for µ_s·d ≤ 1" — light load matches the private-bus view.
    #[test]
    fn light_load_matches_paper_approximation() {
        let cfg: SystemConfig = "16/1x16x16 XBAR/2".parse().expect("valid");
        let w = Workload::for_intensity(&cfg, 0.2, 0.1).expect("valid");
        let sim = simulate_delay(&cfg, &w, 31);
        let approx = crossbar_light_load(&CrossbarParams {
            processors: 16,
            buses: 16,
            resources_per_bus: 2,
            lambda: w.lambda(),
            mu_n: w.mu_n(),
            mu_s: w.mu_s(),
        })
        .expect("stable")
        .mean_queue_delay;
        assert!(
            sim * w.mu_s() <= 1.0,
            "test must sit in the light-load regime"
        );
        let rel = (sim - approx).abs() / approx.max(1e-9);
        assert!(
            rel < 0.15,
            "sim {sim} vs light-load approx {approx} (rel {rel})"
        );
    }

    /// Heavy load: delay must land between the light-load (optimistic) and
    /// heavy-load (partitioned) approximations' neighborhood.
    #[test]
    fn heavy_load_bracketed_by_approximations() {
        // With only 4 buses at ratio 1.0, the network saturates at ρ = 0.5;
        // ρ = 0.4 is ~80% of that capacity — squarely heavy load.
        let cfg: SystemConfig = "16/1x16x4 XBAR/4".parse().expect("valid");
        let w = Workload::for_intensity(&cfg, 0.4, 1.0).expect("valid");
        let sim = simulate_delay(&cfg, &w, 33);
        let params = CrossbarParams {
            processors: 16,
            buses: 4,
            resources_per_bus: 4,
            lambda: w.lambda(),
            mu_n: w.mu_n(),
            mu_s: w.mu_s(),
        };
        let light = crossbar_light_load(&params)
            .expect("stable")
            .mean_queue_delay;
        let heavy = crossbar_heavy_load(&params)
            .expect("stable")
            .mean_queue_delay;
        assert!(
            sim > light * 0.9 && sim < heavy * 1.5,
            "sim {sim} should sit between light {light} and heavy {heavy} regimes"
        );
    }

    /// The small-m Markov chain (Section IV: the stage analysis "can only
    /// be applied when m is very small") must agree with the gate-level
    /// crossbar simulation. The chain pools all queued tasks (it ignores
    /// per-processor port serialization — exact for m = 1, optimistic for
    /// m ≥ 2), so the comparison runs where per-processor utilization is
    /// low and the pooling error is secondary.
    #[test]
    fn small_m_exact_chain_matches_simulation() {
        use rsin_queueing::{SmallCrossbarChain, SmallCrossbarParams};
        let cfg: SystemConfig = "16/1x16x2 XBAR/2".parse().expect("valid");
        let w = Workload::new(0.02, 1.0, 0.5).expect("valid");
        let chain = SmallCrossbarChain::new(SmallCrossbarParams {
            processors: 16,
            buses: 2,
            resources_per_bus: 2,
            lambda: w.lambda(),
            mu_n: w.mu_n(),
            mu_s: w.mu_s(),
        })
        .expect("stable")
        .solve()
        .expect("solves");
        let sim = simulate_delay(&cfg, &w, 41);
        // Pooling makes the chain a lower bound; the missing piece is the
        // wait behind the task's *own* processor port, an M/M/1-like term
        // W_own = λ/(µ_n(µ_n − λ)). The simulation must land between the
        // chain and the chain plus twice that correction.
        let own = w.lambda() / (w.mu_n() * (w.mu_n() - w.lambda()));
        let lo = chain.mean_queue_delay * 0.98;
        let hi = chain.mean_queue_delay + 2.0 * own;
        assert!(
            sim > lo && sim < hi,
            "sim {sim} outside [{lo}, {hi}] around the pooled chain"
        );
    }

    /// More resources per bus reduce delay when resources are the
    /// bottleneck (µ_s/µ_n small — Fig. 7's message).
    #[test]
    fn extra_resources_help_when_resources_bottleneck() {
        let cfg1: SystemConfig = "8/1x8x8 XBAR/1".parse().expect("valid");
        let cfg2: SystemConfig = "8/1x8x8 XBAR/2".parse().expect("valid");
        // Same per-processor arrival rate for a fair comparison.
        let w = Workload::new(0.08, 1.0, 0.1).expect("valid");
        let d1 = simulate_delay(&cfg1, &w, 35);
        let d2 = simulate_delay(&cfg2, &w, 35);
        assert!(d2 < d1, "doubling resources must cut delay: {d2} vs {d1}");
    }
}
