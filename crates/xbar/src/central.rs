//! Centralized crossbar scheduling baseline (Section IV's comparison).
//!
//! A centralized scheduler serves requests sequentially: it finds a free
//! resource with an `O(log₂ m)` priority circuit and decodes/sets the
//! crosspoint in `O(log₂(p·m))` — so `p` simultaneous requests cost
//! `O(p·log₂ m)` gate delays, versus the distributed fabric's flat
//! `4(p+m)`. Because the crossbar is nonblocking, the *allocation* a
//! centralized scheduler produces is the same; only the latency scales
//! differently. This module models that cost so the comparison can be
//! benchmarked.

/// Gate-delay cost model of a centralized crossbar scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CentralScheduler {
    p: usize,
    m: usize,
}

impl CentralScheduler {
    /// A scheduler for a `p × m` crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `m == 0`.
    #[must_use]
    pub fn new(p: usize, m: usize) -> Self {
        assert!(p > 0 && m > 0, "dimensions must be positive");
        CentralScheduler { p, m }
    }

    /// Gate delays to serve a single request: priority-circuit search plus
    /// crosspoint decode.
    #[must_use]
    pub fn per_request_gate_delay(&self) -> u32 {
        let log_m = usize::BITS - (self.m - 1).leading_zeros().min(usize::BITS - 1);
        let log_pm = usize::BITS - (self.p * self.m - 1).leading_zeros().min(usize::BITS - 1);
        log_m.max(1) + log_pm.max(1)
    }

    /// Gate delays to serve `n` simultaneous requests sequentially.
    #[must_use]
    pub fn batch_gate_delay(&self, n: usize) -> u64 {
        n as u64 * u64::from(self.per_request_gate_delay())
    }

    /// Allocates greedily: requester order, first free bus. On a crossbar
    /// this is maximal (the fabric is nonblocking), so the result matches
    /// the distributed wave's cardinality.
    #[must_use]
    pub fn allocate(&self, requests: &[bool], available: &[bool]) -> Vec<(usize, usize)> {
        assert_eq!(requests.len(), self.p, "requests length");
        assert_eq!(available.len(), self.m, "available length");
        let mut free: Vec<usize> = (0..self.m).filter(|&j| available[j]).collect();
        let mut grants = Vec::new();
        for (i, &req) in requests.iter().enumerate() {
            if !req {
                continue;
            }
            if let Some(j) = free.first().copied() {
                free.remove(0);
                grants.push((i, j));
            }
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::CrossbarFabric;

    #[test]
    fn per_request_cost_is_logarithmic() {
        let s = CentralScheduler::new(16, 32);
        // log2(32) + log2(512) = 5 + 9.
        assert_eq!(s.per_request_gate_delay(), 14);
    }

    #[test]
    fn batch_cost_is_linear_in_requests() {
        let s = CentralScheduler::new(16, 32);
        assert_eq!(s.batch_gate_delay(16), 16 * 14);
    }

    #[test]
    fn distributed_wave_beats_sequential_scheduler_at_scale() {
        // The paper's headline: distributed = 4(p+m) total vs centralized
        // p·O(log m) — the crossover favors distributed for large p.
        let p = 64;
        let m = 64;
        let fabric = CrossbarFabric::new(p, m);
        let central = CentralScheduler::new(p, m);
        assert!(
            u64::from(fabric.request_cycle_gate_delay()) < central.batch_gate_delay(p),
            "distributed {} vs centralized {}",
            fabric.request_cycle_gate_delay(),
            central.batch_gate_delay(p)
        );
    }

    #[test]
    fn allocation_cardinality_matches_distributed_fabric() {
        let central = CentralScheduler::new(4, 3);
        let mut fabric = CrossbarFabric::new(4, 3);
        let requests = [true, false, true, true];
        let available = [true, true, false];
        let c = central.allocate(&requests, &available);
        let d = fabric.request_cycle(&requests, &available);
        assert_eq!(c.len(), d.len(), "both maximal on a nonblocking fabric");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn no_requests_or_no_buses() {
        let s = CentralScheduler::new(2, 2);
        assert!(s.allocate(&[false, false], &[true, true]).is_empty());
        assert!(s.allocate(&[true, true], &[false, false]).is_empty());
    }
}
