//! Bit-sliced compilation of the Table-I crossbar: whole rows of cells
//! evaluated as branchless `u64` lane operations.
//!
//! [`CrossbarFabric`](crate::CrossbarFabric) sweeps the request wave cell by
//! cell. But the Table-I transition function admits a closed form over an
//! entire row at once. For a requesting row with latch lanes `L`, failed
//! lanes `F`, and incoming availability lanes `A`:
//!
//! * *transparent* cells (`F & !L`) forward both signals unchanged, so the
//!   cells that can stop the wave are `A & (!F | L)` — the **candidate**
//!   lanes;
//! * the wave latches (or is absorbed by an existing latch) at the *lowest*
//!   candidate lane — a parallel-prefix select, [`lowest_set`], replacing the
//!   O(m) daisy chain;
//! * after the wave, every latched cell has driven `Y' = Y & !latch`: the
//!   row's entire effect on the availability wave is `A &= !L` (candidate
//!   analysis shows latched lanes before the absorption point carry `A = 0`
//!   already, so the blanket mask is exact);
//! * an idle row only performs that same masking, and an idle row with no
//!   latches is a no-op — so the cycle iterates exactly the lanes of
//!   `requests | rows_with_latches`.
//!
//! The evaluator is fault-aware by construction: a degraded mask simply sets
//! lanes in `F`, which removes them from the candidate set without branching.
//! Tail lanes (columns `m..64*ceil(m/64)`) are kept zero in every vector —
//! the lane-layout invariant of `rsin-bitslice`.

use crate::cell::{REQUEST_GATE_DELAY, RESET_GATE_DELAY};
use rsin_bitslice::{
    clear_bit, lowest_set, pack_bools, set_bit, tail_mask, test_bit, words_for, WORD_BITS,
};

/// A gate-level `p × m` crossbar with rows packed into `u64` lanes.
///
/// Drop-in equivalent of [`CrossbarFabric`](crate::CrossbarFabric): same
/// constructor, same cycle API, same grants in the same order, bit-for-bit —
/// property tests fuzz the two against each other, including stuck-open
/// faults and widths that are not multiples of 64.
///
/// # Examples
///
/// ```
/// use rsin_xbar::BitFabric;
///
/// let mut fabric = BitFabric::new(2, 2);
/// let grants = fabric.request_cycle(&[true, true], &[true, true]);
/// assert_eq!(grants, vec![(0, 0), (1, 1)]);
/// ```
#[derive(Clone, Debug)]
pub struct BitFabric {
    p: usize,
    m: usize,
    /// Words per row (`ceil(m / 64)`).
    wpr: usize,
    /// Valid-lane mask for the last word of each row.
    tail: u64,
    /// Closed latches, `p` rows of `wpr` words.
    latch: Vec<u64>,
    /// Stuck-open cells, same layout.
    failed: Vec<u64>,
    /// Bit `i` set when row `i` holds at least one latch — the packed
    /// equivalent of the naive fabric's row census.
    rows_with_latch: Vec<u64>,
    /// Reusable buffers so steady-state cycles allocate nothing.
    scratch_avail: Vec<u64>,
    scratch_req: Vec<u64>,
}

impl BitFabric {
    /// Creates a fabric with `p` processor rows and `m` bus columns, all
    /// latches open.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `m == 0`.
    #[must_use]
    pub fn new(p: usize, m: usize) -> Self {
        assert!(p > 0 && m > 0, "fabric dimensions must be positive");
        let wpr = words_for(m);
        BitFabric {
            p,
            m,
            wpr,
            tail: tail_mask(m),
            latch: vec![0; p * wpr],
            failed: vec![0; p * wpr],
            rows_with_latch: vec![0; words_for(p)],
            scratch_avail: Vec::new(),
            scratch_req: Vec::new(),
        }
    }

    /// Processor rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.p
    }

    /// Bus columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.m
    }

    /// Whether processor `i` currently holds bus `j`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn is_connected(&self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        test_bit(&self.latch[i * self.wpr..], j)
    }

    /// Whether cell `(i, j)` is marked failed (stuck open).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn is_failed(&self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        test_bit(&self.failed[i * self.wpr..], j)
    }

    /// Marks cell `(i, j)` stuck open. Returns `true` if the cell was
    /// healthy. Fail-open: a currently held connection keeps blocking its
    /// column until reset, but the lane leaves the candidate set for good.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn fail_cell(&mut self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        let was = test_bit(&self.failed[i * self.wpr..], j);
        set_bit(&mut self.failed[i * self.wpr..], j);
        !was
    }

    /// Clears the failure mark on cell `(i, j)`. Returns `true` if the cell
    /// was failed.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn repair_cell(&mut self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        let was = test_bit(&self.failed[i * self.wpr..], j);
        clear_bit(&mut self.failed[i * self.wpr..], j);
        was
    }

    /// Runs one request cycle (allocating convenience wrapper).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths don't match the fabric dimensions.
    pub fn request_cycle(&mut self, requests: &[bool], available: &[bool]) -> Vec<(usize, usize)> {
        let mut grants = Vec::new();
        self.request_cycle_into(requests, available, &mut grants);
        grants
    }

    /// [`BitFabric::request_cycle`] writing the grants into a caller-provided
    /// buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths don't match the fabric dimensions.
    pub fn request_cycle_into(
        &mut self,
        requests: &[bool],
        available: &[bool],
        grants: &mut Vec<(usize, usize)>,
    ) {
        assert_eq!(requests.len(), self.p, "requests length");
        assert_eq!(available.len(), self.m, "available length");
        let mut req = std::mem::take(&mut self.scratch_req);
        pack_bools(requests, &mut req);
        let mut avail = std::mem::take(&mut self.scratch_avail);
        pack_bools(available, &mut avail);
        self.request_cycle_packed(&req, &mut avail, grants);
        self.scratch_req = req;
        self.scratch_avail = avail;
    }

    /// The packed request wave: `req` holds `p` request lanes, `avail` holds
    /// `m` availability lanes and is updated in place to the wave's output
    /// (`Y_{p,j}`). Grants are appended in row-major order, matching the
    /// naive sweep exactly.
    ///
    /// # Panics
    ///
    /// Panics if the word counts don't match the fabric dimensions, or if
    /// tail lanes are set (debug builds).
    pub fn request_cycle_packed(
        &mut self,
        req: &[u64],
        avail: &mut [u64],
        grants: &mut Vec<(usize, usize)>,
    ) {
        assert_eq!(req.len(), words_for(self.p), "request word count");
        assert_eq!(avail.len(), self.wpr, "availability word count");
        debug_assert_eq!(
            avail[self.wpr - 1] & !self.tail,
            0,
            "tail lanes must be zero"
        );
        grants.clear();
        let wpr = self.wpr;
        for (rw, &req_word) in req.iter().enumerate() {
            // Rows that are neither requesting nor holding a latch cannot
            // affect the wave; skip them wholesale.
            let mut active = req_word | self.rows_with_latch[rw];
            while active != 0 {
                let bit = lowest_set(active);
                active &= !bit;
                let i = rw * WORD_BITS + bit.trailing_zeros() as usize;
                let base = i * wpr;
                if req_word & bit != 0 {
                    // Parallel-prefix grant: the wave stops at the lowest
                    // candidate lane (availability on a non-transparent cell).
                    for (w, &a) in avail.iter().enumerate() {
                        let latch_w = self.latch[base + w];
                        let cand = a & (!self.failed[base + w] | latch_w);
                        if cand != 0 {
                            let lane = lowest_set(cand);
                            if latch_w & lane == 0 {
                                self.latch[base + w] |= lane;
                                self.rows_with_latch[rw] |= bit;
                                grants.push((i, w * WORD_BITS + lane.trailing_zeros() as usize));
                            }
                            break;
                        }
                    }
                }
                // Every latched cell drives Y' = Y & !latch; lanes the wave
                // was absorbed on are latched too, so one mask covers all.
                for (w, a) in avail.iter_mut().enumerate() {
                    *a &= !self.latch[base + w];
                }
            }
        }
    }

    /// [`BitFabric::request_cycle_packed`] specialized to callers that
    /// guarantee every column latched by a *previous* cycle is already
    /// unavailable in `avail` — exactly the resource-network invariant,
    /// where a latched column is a held bus and the availability predicate
    /// masks it out. Under that precondition a latched, non-requesting row
    /// can never change a grant (its mask only clears bits that are
    /// already zero), so the wave walks requesting rows only. Grants are
    /// identical to [`BitFabric::request_cycle_packed`]; the final state of
    /// `avail` may differ on the columns such skipped rows would have
    /// masked.
    ///
    /// # Panics
    ///
    /// Panics if the word counts don't match the fabric dimensions, or
    /// (debug builds) if tail lanes are set or the held-column precondition
    /// is violated.
    pub fn request_cycle_packed_assuming_held(
        &mut self,
        req: &[u64],
        avail: &mut [u64],
        grants: &mut Vec<(usize, usize)>,
    ) {
        assert_eq!(req.len(), words_for(self.p), "request word count");
        assert_eq!(avail.len(), self.wpr, "availability word count");
        debug_assert_eq!(
            avail[self.wpr - 1] & !self.tail,
            0,
            "tail lanes must be zero"
        );
        #[cfg(debug_assertions)]
        for (rw, &latched) in self.rows_with_latch.iter().enumerate() {
            let mut rows = latched;
            while rows != 0 {
                let bit = lowest_set(rows);
                rows &= !bit;
                let base = (rw * WORD_BITS + bit.trailing_zeros() as usize) * self.wpr;
                for (w, a) in avail.iter().enumerate() {
                    debug_assert_eq!(
                        a & self.latch[base + w],
                        0,
                        "caller advertised a latched (held) column as available"
                    );
                }
            }
        }
        grants.clear();
        let wpr = self.wpr;
        for (rw, &req_word) in req.iter().enumerate() {
            let mut active = req_word;
            while active != 0 {
                let bit = lowest_set(active);
                active &= !bit;
                let i = rw * WORD_BITS + bit.trailing_zeros() as usize;
                let base = i * wpr;
                for (w, &a) in avail.iter().enumerate() {
                    let latch_w = self.latch[base + w];
                    let cand = a & (!self.failed[base + w] | latch_w);
                    if cand != 0 {
                        let lane = lowest_set(cand);
                        if latch_w & lane == 0 {
                            self.latch[base + w] |= lane;
                            self.rows_with_latch[rw] |= bit;
                            grants.push((i, w * WORD_BITS + lane.trailing_zeros() as usize));
                        }
                        break;
                    }
                }
                for (w, a) in avail.iter_mut().enumerate() {
                    *a &= !self.latch[base + w];
                }
            }
        }
    }

    /// [`BitFabric::request_cycle_packed_assuming_held`] specialized to a
    /// cycle with exactly one requesting row — the dominant shape of an
    /// uncontended simulation, where each decision epoch serves the single
    /// processor whose arrival triggered it. With no later row to observe
    /// the availability wave, `avail` is read without being consumed, so
    /// the caller skips both the working copy and the post-grant masking
    /// pass. Returns the granted column, if any; latch state advances
    /// exactly as the general wave would.
    ///
    /// # Panics
    ///
    /// Panics if `i` or the word count is out of range, or (debug builds)
    /// if tail lanes are set or the held-column precondition is violated.
    pub fn request_single_assuming_held(&mut self, i: usize, avail: &[u64]) -> Option<usize> {
        assert!(i < self.p, "row out of range");
        assert_eq!(avail.len(), self.wpr, "availability word count");
        debug_assert_eq!(
            avail[self.wpr - 1] & !self.tail,
            0,
            "tail lanes must be zero"
        );
        #[cfg(debug_assertions)]
        for (rw, &latched) in self.rows_with_latch.iter().enumerate() {
            let mut rows = latched;
            while rows != 0 {
                let bit = lowest_set(rows);
                rows &= !bit;
                let base = (rw * WORD_BITS + bit.trailing_zeros() as usize) * self.wpr;
                for (w, a) in avail.iter().enumerate() {
                    debug_assert_eq!(
                        a & self.latch[base + w],
                        0,
                        "caller advertised a latched (held) column as available"
                    );
                }
            }
        }
        let base = i * self.wpr;
        for (w, &a) in avail.iter().enumerate() {
            let latch_w = self.latch[base + w];
            let cand = a & (!self.failed[base + w] | latch_w);
            if cand != 0 {
                let lane = lowest_set(cand);
                if latch_w & lane == 0 {
                    self.latch[base + w] |= lane;
                    set_bit(&mut self.rows_with_latch, i);
                    return Some(w * WORD_BITS + lane.trailing_zeros() as usize);
                }
                return None;
            }
        }
        None
    }

    /// Runs one reset cycle: every processor `i` with `resets[i]` set
    /// relinquishes all its connections.
    ///
    /// # Panics
    ///
    /// Panics if `resets.len() != p`.
    pub fn reset_cycle(&mut self, resets: &[bool]) {
        assert_eq!(resets.len(), self.p, "resets length");
        for (i, &reset) in resets.iter().enumerate() {
            if reset {
                self.reset_row(i);
            }
        }
    }

    /// Runs the reset wave for processor row `i` alone: the wave forwards
    /// `X` through every cell (failed or not) and opens each latch it
    /// crosses, so the packed effect is zeroing the row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= p`.
    pub fn reset_row(&mut self, i: usize) {
        assert!(i < self.p, "row out of range");
        self.latch[i * self.wpr..(i + 1) * self.wpr].fill(0);
        clear_bit(&mut self.rows_with_latch, i);
    }

    /// Worst-case request-cycle length in gate delays: `4(p + m)` — the
    /// emulated hardware's timing is unchanged by how we evaluate it.
    #[must_use]
    pub fn request_cycle_gate_delay(&self) -> u32 {
        REQUEST_GATE_DELAY * (self.p + self.m) as u32
    }

    /// Worst-case reset-cycle length in gate delays: `p + m`.
    #[must_use]
    pub fn reset_cycle_gate_delay(&self) -> u32 {
        RESET_GATE_DELAY * (self.p + self.m) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrossbarFabric;

    #[test]
    fn mirrors_basic_fabric_behaviour() {
        let mut f = BitFabric::new(2, 1);
        assert_eq!(f.request_cycle(&[true, true], &[true]), vec![(0, 0)]);
        assert!(f.is_connected(0, 0));
        // Held bus blocks a re-broadcast availability.
        assert!(f.request_cycle(&[false, true], &[true]).is_empty());
        f.reset_row(0);
        assert!(!f.is_connected(0, 0));
        assert_eq!(f.request_cycle(&[false, true], &[true]), vec![(1, 0)]);
    }

    #[test]
    fn gate_delays_match_section_iv() {
        let f = BitFabric::new(16, 32);
        assert_eq!(f.request_cycle_gate_delay(), 4 * 48);
        assert_eq!(f.reset_cycle_gate_delay(), 48);
    }

    #[test]
    fn wide_row_grants_across_word_boundaries() {
        // 70 columns: only column 68 (word 1) is available.
        let mut f = BitFabric::new(1, 70);
        let mut avail = vec![false; 70];
        avail[68] = true;
        assert_eq!(f.request_cycle(&[true], &avail), vec![(0, 68)]);
        assert!(f.is_connected(0, 68));
    }

    /// Bit-for-bit fuzz against the cell-by-cell reference fabric: random
    /// interleavings of request cycles, row resets, cell failures and
    /// repairs, across widths spanning word boundaries and lane tails.
    #[test]
    fn bitslice_matches_cell_sweep_exactly() {
        for &(p, m) in &[
            (5usize, 4usize),
            (4, 5),
            (3, 70),
            (2, 130),
            (66, 3),
            (16, 64),
        ] {
            let mut bits = BitFabric::new(p, m);
            let mut cells = CrossbarFabric::new(p, m);
            let mut state = 0x9e37_79b9_u64 ^ ((p as u64) << 32 | m as u64);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u32
            };
            let mut g_bits = Vec::new();
            let mut g_cells = Vec::new();
            for round in 0..600 {
                match next() % 4 {
                    0 | 1 => {
                        let requests: Vec<bool> = (0..p).map(|_| next() % 2 == 0).collect();
                        let available: Vec<bool> = (0..m).map(|_| next() % 3 != 0).collect();
                        bits.request_cycle_into(&requests, &available, &mut g_bits);
                        cells.request_cycle_into(&requests, &available, &mut g_cells);
                        assert_eq!(g_bits, g_cells, "{p}x{m} round {round}");
                    }
                    2 => {
                        let i = next() as usize % p;
                        bits.reset_row(i);
                        cells.reset_row(i);
                    }
                    _ => {
                        let (i, j) = (next() as usize % p, next() as usize % m);
                        if next() % 2 == 0 {
                            assert_eq!(bits.fail_cell(i, j), cells.fail_cell(i, j));
                        } else {
                            assert_eq!(bits.repair_cell(i, j), cells.repair_cell(i, j));
                        }
                    }
                }
                for i in 0..p {
                    for j in 0..m {
                        assert_eq!(
                            bits.is_connected(i, j),
                            cells.is_connected(i, j),
                            "latch ({i},{j}) diverged at {p}x{m} round {round}"
                        );
                        assert_eq!(bits.is_failed(i, j), cells.is_failed(i, j));
                    }
                }
            }
        }
    }
}
