//! The distributed-scheduling crossbar cell (Section IV, Table I).
//!
//! Each cell `C_{i,j}` couples processor row `i` to bus column `j` and holds
//! one control latch. A request signal `X` sweeps along the row, a
//! resource-availability signal `Y` sweeps down the column, and where both
//! meet the latch closes the crosspoint — with no central controller. The
//! paper realizes the cell in eleven gates and one latch, with a worst-case
//! gate delay of four in request mode and one in reset mode; this module is
//! a cycle-accurate software model of the same truth table.

/// Operating mode of the fabric (a single shared MODE line in hardware).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Processors may acquire free resources.
    Request,
    /// Processors may relinquish previously acquired resources.
    Reset,
}

/// Worst-case gate delays of the paper's 11-gate cell realization.
pub const REQUEST_GATE_DELAY: u32 = 4;
/// Worst-case reset-mode gate delay of the cell.
pub const RESET_GATE_DELAY: u32 = 1;

/// One crosspoint cell: the control latch plus the Table-I combinational
/// logic.
///
/// # Examples
///
/// ```
/// use rsin_xbar::{Cell, Mode};
///
/// let mut cell = Cell::new();
/// // Request meets availability: the latch closes, and both signals are
/// // absorbed (the request is satisfied; the bus is taken).
/// let (x_out, y_out) = cell.step(Mode::Request, true, true);
/// assert!(cell.is_connected());
/// assert!(!x_out && !y_out);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cell {
    latch: bool,
}

impl Cell {
    /// A cell with the latch off.
    #[must_use]
    pub fn new() -> Self {
        Cell { latch: false }
    }

    /// Whether the crosspoint is currently closed (processor connected to
    /// this bus).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.latch
    }

    /// Applies one (X, Y) input pair in `mode`, returning
    /// `(X_{i,j+1}, Y_{i+1,j})` and updating the latch per Table I.
    ///
    /// Request mode:
    ///
    /// | X | Y | X′ | Y′ | latch |
    /// |---|---|----|----|-------|
    /// | 0 | 0 | 0  | 0  | —     |
    /// | 0 | 1 | 0  | !L | —     |
    /// | 1 | 0 | 1  | 0  | —     |
    /// | 1 | 1 | 0  | 0  | set   |
    ///
    /// The `X=0, Y=1` row is the re-broadcast guard: a fresh availability
    /// signal passes only if this cell is not already holding the bus, so a
    /// later release elsewhere in the column cannot disturb an existing
    /// connection.
    ///
    /// Reset mode (X = relinquish):
    ///
    /// | X | Y | X′ | Y′ | latch |
    /// |---|---|----|----|-------|
    /// | 0 | 0 | 0  | 0  | —     |
    /// | 0 | 1 | 0  | 1  | —     |
    /// | 1 | 0 | 1  | 0  | reset |
    /// | 1 | 1 | 1  | 1  | reset |
    pub fn step(&mut self, mode: Mode, x: bool, y: bool) -> (bool, bool) {
        match mode {
            Mode::Request => match (x, y) {
                (false, false) => (false, false),
                (false, true) => (false, !self.latch),
                (true, false) => (true, false),
                (true, true) => {
                    self.latch = true;
                    (false, false)
                }
            },
            Mode::Reset => {
                if x {
                    self.latch = false;
                }
                (x, y)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive check of Table I over every (mode, X, Y, latch) input.
    #[test]
    fn truth_table_exhaustive() {
        // (mode, x, y, latch_before) -> (x', y', latch_after)
        let cases = [
            (Mode::Request, false, false, false, false, false, false),
            (Mode::Request, false, false, true, false, false, true),
            (Mode::Request, false, true, false, false, true, false),
            (Mode::Request, false, true, true, false, false, true),
            (Mode::Request, true, false, false, true, false, false),
            (Mode::Request, true, false, true, true, false, true),
            (Mode::Request, true, true, false, false, false, true),
            (Mode::Request, true, true, true, false, false, true),
            (Mode::Reset, false, false, false, false, false, false),
            (Mode::Reset, false, false, true, false, false, true),
            (Mode::Reset, false, true, false, false, true, false),
            (Mode::Reset, false, true, true, false, true, true),
            (Mode::Reset, true, false, false, true, false, false),
            (Mode::Reset, true, false, true, true, false, false),
            (Mode::Reset, true, true, false, true, true, false),
            (Mode::Reset, true, true, true, true, true, false),
        ];
        for (mode, x, y, before, ex, ey, after) in cases {
            let mut cell = Cell { latch: before };
            let (ox, oy) = cell.step(mode, x, y);
            assert_eq!(
                (ox, oy, cell.latch),
                (ex, ey, after),
                "mode {mode:?} x={x} y={y} latch={before}"
            );
        }
    }

    #[test]
    fn request_sets_latch_only_on_both_signals() {
        let mut cell = Cell::new();
        cell.step(Mode::Request, true, false);
        assert!(!cell.is_connected());
        cell.step(Mode::Request, false, true);
        assert!(!cell.is_connected());
        cell.step(Mode::Request, true, true);
        assert!(cell.is_connected());
    }

    #[test]
    fn connected_cell_blocks_fresh_availability() {
        // The race-condition guard from Section IV: a re-broadcast Y must
        // not pass through a cell that holds the bus.
        let mut cell = Cell { latch: true };
        let (_, y_out) = cell.step(Mode::Request, false, true);
        assert!(!y_out);
    }

    #[test]
    fn reset_clears_row_and_passes_signals() {
        let mut cell = Cell { latch: true };
        let (x_out, y_out) = cell.step(Mode::Reset, true, true);
        assert!(!cell.is_connected());
        assert!(x_out && y_out, "reset mode forwards both signals");
    }

    #[test]
    fn gate_delay_constants_match_paper() {
        assert_eq!(REQUEST_GATE_DELAY, 4);
        assert_eq!(RESET_GATE_DELAY, 1);
    }
}
