//! The crossbar fabric: a `p × m` array of Table-I cells swept by the
//! request/reset wave (Section IV, Fig. 6).
//!
//! In each cycle the signals "propagate from the top left corner at 45° to
//! the bottom right corner in a wave-like motion"; the maximum signal path
//! crosses `p + m` cells, so a request cycle costs at most `4(p+m)` gate
//! delays and a reset cycle `p+m`. Because `X_{i,j+1}` and `Y_{i+1,j}`
//! depend only on `(X_{i,j}, Y_{i,j})` and the local latch, a row-major
//! sweep computes the wave's fixed point exactly.

use crate::cell::{Cell, Mode, REQUEST_GATE_DELAY, RESET_GATE_DELAY};

/// How many closed latches a processor row holds — the fabric's shortcut
/// table. Most sweeps never need to touch a row's cells at all: an idle row
/// with no connection leaves the wave untouched, and an idle row holding one
/// bus only masks that bus's availability. Both facts follow directly from
/// Table I, so the shortcuts reproduce the full sweep bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RowLink {
    /// No latch closed in this row.
    None,
    /// Exactly one latch closed, at the given column.
    One(u32),
    /// Two or more latches closed (only reachable through direct fabric use;
    /// the simulators hold at most one bus per processor).
    Many,
}

/// A gate-level `p × m` distributed-scheduling crossbar.
///
/// # Examples
///
/// ```
/// use rsin_xbar::CrossbarFabric;
///
/// let mut fabric = CrossbarFabric::new(2, 2);
/// // Both processors request; both buses advertise availability.
/// let grants = fabric.request_cycle(&[true, true], &[true, true]);
/// assert_eq!(grants, vec![(0, 0), (1, 1)]);
/// ```
#[derive(Clone, Debug)]
pub struct CrossbarFabric {
    p: usize,
    m: usize,
    cells: Vec<Cell>,
    /// Stuck-open cells: a failed cell forwards both wave signals unchanged
    /// and can never close its latch, so the wave routes around it.
    failed: Vec<bool>,
    /// Per-row latch census; lets request/reset cycles skip rows whose cells
    /// cannot affect the wave.
    row_link: Vec<RowLink>,
    /// Reusable column-wave buffer for request cycles (the `Y` signals as
    /// the wave sweeps down), so steady-state cycles allocate nothing.
    col_y: Vec<bool>,
}

impl CrossbarFabric {
    /// Creates a fabric with `p` processor rows and `m` bus columns, all
    /// latches open.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `m == 0`.
    #[must_use]
    pub fn new(p: usize, m: usize) -> Self {
        assert!(p > 0 && m > 0, "fabric dimensions must be positive");
        CrossbarFabric {
            p,
            m,
            cells: vec![Cell::new(); p * m],
            failed: vec![false; p * m],
            row_link: vec![RowLink::None; p],
            col_y: Vec::new(),
        }
    }

    /// Processor rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.p
    }

    /// Bus columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.m
    }

    fn cell(&mut self, i: usize, j: usize) -> &mut Cell {
        &mut self.cells[i * self.m + j]
    }

    /// Whether processor `i` currently holds bus `j`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn is_connected(&self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        self.cells[i * self.m + j].is_connected()
    }

    /// Whether cell `(i, j)` is marked failed (stuck open).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn is_failed(&self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        self.failed[i * self.m + j]
    }

    /// Marks cell `(i, j)` stuck open. Returns `true` if the cell was
    /// healthy. The fault is fail-open: a connection the cell currently
    /// holds keeps behaving as a closed crosspoint until the normal reset
    /// cycle releases it, but the latch can never close again afterward.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn fail_cell(&mut self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        !std::mem::replace(&mut self.failed[i * self.m + j], true)
    }

    /// Clears the failure mark on cell `(i, j)`. Returns `true` if the cell
    /// was failed.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn repair_cell(&mut self, i: usize, j: usize) -> bool {
        assert!(i < self.p && j < self.m, "cell index out of range");
        std::mem::replace(&mut self.failed[i * self.m + j], false)
    }

    /// Runs one request cycle.
    ///
    /// `requests[i]` is processor `i`'s `X_{i,0}` signal; `available[j]` is
    /// resource controller `j`'s `Y_{0,j}` signal (bus free **and** ≥ 1 free
    /// resource). Returns the newly closed crosspoints `(processor, bus)` in
    /// row order — the fabric's fixed-priority asymmetry is visible here:
    /// low-index processors meet availability signals first.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths don't match the fabric dimensions.
    pub fn request_cycle(&mut self, requests: &[bool], available: &[bool]) -> Vec<(usize, usize)> {
        let mut grants = Vec::new();
        self.request_cycle_into(requests, available, &mut grants);
        grants
    }

    /// [`CrossbarFabric::request_cycle`] writing the grants into a
    /// caller-provided buffer (cleared first), so steady-state cycles
    /// allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths don't match the fabric dimensions.
    pub fn request_cycle_into(
        &mut self,
        requests: &[bool],
        available: &[bool],
        grants: &mut Vec<(usize, usize)>,
    ) {
        assert_eq!(requests.len(), self.p, "requests length");
        assert_eq!(available.len(), self.m, "available length");
        grants.clear();
        let mut col_y = std::mem::take(&mut self.col_y);
        col_y.clear();
        col_y.extend_from_slice(available);
        for (i, &request) in requests.iter().enumerate() {
            let base = i * self.m;
            match (request, self.row_link[i]) {
                // Idle row, no latch: every cell either passes both signals
                // through (X=0 with an open latch leaves Y unchanged) or is
                // stuck open — the wave crosses untouched.
                (false, RowLink::None) => {}
                // Idle row holding one bus: the only Table-I effect of the
                // sweep is the held cell blocking its column's availability
                // (Y' = !latch); failed-but-connected cells behave the same.
                (false, RowLink::One(c)) => col_y[c as usize] = false,
                // Idle row holding several buses: same masking, per column.
                (false, RowLink::Many) => {
                    for (j, y) in col_y.iter_mut().enumerate() {
                        if self.cells[base + j].is_connected() {
                            *y = false;
                        }
                    }
                }
                // Requesting row with no latch: X sweeps right past busy
                // columns unchanged until it meets the first availability,
                // where the latch closes and absorbs both signals. Every
                // cell after the grant sees X=0 and an open latch, so the
                // sweep can stop at the grant.
                (true, RowLink::None) => {
                    let mut x = true;
                    for (j, y) in col_y.iter_mut().enumerate() {
                        let idx = base + j;
                        if self.failed[idx] {
                            // Stuck-open cell: both signals pass straight
                            // through (no latch here to hold a connection).
                            continue;
                        }
                        let (x_next, y_next) = self.cells[idx].step(Mode::Request, x, *y);
                        x = x_next;
                        *y = y_next;
                        if self.cells[idx].is_connected() {
                            grants.push((i, j));
                            self.row_link[i] = RowLink::One(j as u32);
                            break;
                        }
                    }
                }
                // Requesting row that already holds a bus: run the full
                // Table-I sweep (an already-connected cell absorbs both
                // signals on X=1, Y=1), then re-count the row's latches.
                (true, _) => {
                    let mut x = true;
                    for (j, y) in col_y.iter_mut().enumerate() {
                        let idx = base + j;
                        if self.failed[idx] && !self.cells[idx].is_connected() {
                            continue;
                        }
                        let was = self.cells[idx].is_connected();
                        let (x_next, y_next) = self.cells[idx].step(Mode::Request, x, *y);
                        if !was && self.cells[idx].is_connected() {
                            grants.push((i, j));
                        }
                        x = x_next;
                        *y = y_next;
                    }
                    self.rescan_row_link(i);
                }
            }
            // X_{i,m} is fed back to the processor: true means "resubmit
            // next cycle" — the caller sees this implicitly by not being in
            // `grants`.
        }
        self.col_y = col_y;
    }

    /// Recounts the closed latches in row `i` after a sweep that may have
    /// changed them in ways the shortcuts can't track.
    fn rescan_row_link(&mut self, i: usize) {
        let base = i * self.m;
        let mut link = RowLink::None;
        for j in 0..self.m {
            if self.cells[base + j].is_connected() {
                link = match link {
                    RowLink::None => RowLink::One(j as u32),
                    _ => RowLink::Many,
                };
            }
        }
        self.row_link[i] = link;
    }

    /// Runs one reset cycle: every processor `i` with `resets[i]` set
    /// relinquishes all its connections (in this design a row holds at most
    /// one).
    ///
    /// # Panics
    ///
    /// Panics if `resets.len() != p`.
    pub fn reset_cycle(&mut self, resets: &[bool]) {
        assert_eq!(resets.len(), self.p, "resets length");
        for (i, &reset) in resets.iter().enumerate() {
            if reset {
                self.reset_row(i);
            }
        }
    }

    /// Runs the reset wave for processor row `i` alone — equivalent to
    /// [`CrossbarFabric::reset_cycle`] with only that bit set (a row whose
    /// `X` is low passes reset-mode signals through unchanged), without the
    /// caller materializing a reset vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= p`.
    pub fn reset_row(&mut self, i: usize) {
        assert!(i < self.p, "row out of range");
        // The reset wave forwards X unchanged through every cell, clearing
        // each latch it crosses — so its only effect is opening the row's
        // closed latches, which the row census names directly.
        match self.row_link[i] {
            RowLink::None => {}
            RowLink::One(c) => {
                let _ = self.cells[i * self.m + c as usize].step(Mode::Reset, true, false);
            }
            RowLink::Many => {
                let mut x = true;
                for j in 0..self.m {
                    // Column Y values are irrelevant to the latch in reset
                    // mode.
                    let (x_next, _) = self.cell(i, j).step(Mode::Reset, x, false);
                    x = x_next;
                }
            }
        }
        self.row_link[i] = RowLink::None;
    }

    /// Worst-case request-cycle length in gate delays: `4(p + m)`.
    #[must_use]
    pub fn request_cycle_gate_delay(&self) -> u32 {
        REQUEST_GATE_DELAY * (self.p + self.m) as u32
    }

    /// Worst-case reset-cycle length in gate delays: `p + m`.
    #[must_use]
    pub fn reset_cycle_gate_delay(&self) -> u32 {
        RESET_GATE_DELAY * (self.p + self.m) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetry_favors_low_index_processors() {
        // One available bus, two requesters: processor 0 wins.
        let mut f = CrossbarFabric::new(2, 1);
        let grants = f.request_cycle(&[true, true], &[true]);
        assert_eq!(grants, vec![(0, 0)]);
    }

    #[test]
    fn matching_is_maximal_on_complete_fabric() {
        // A crossbar is nonblocking: the wave must always grant
        // min(#requests, #available) connections.
        for (p, m) in [(4, 4), (6, 3), (3, 6)] {
            let mut f = CrossbarFabric::new(p, m);
            let grants = f.request_cycle(&vec![true; p], &vec![true; m]);
            assert_eq!(grants.len(), p.min(m), "{p}x{m}");
            // At most one grant per row and per column.
            let mut rows = vec![false; p];
            let mut cols = vec![false; m];
            for (i, j) in grants {
                assert!(!rows[i] && !cols[j]);
                rows[i] = true;
                cols[j] = true;
            }
        }
    }

    #[test]
    fn existing_connections_survive_new_cycles() {
        let mut f = CrossbarFabric::new(2, 2);
        let g1 = f.request_cycle(&[true, false], &[true, true]);
        assert_eq!(g1, vec![(0, 0)]);
        // New cycle: processor 1 requests; bus 0 is held so its controller
        // drops Y_0; bus 1 is advertised.
        let g2 = f.request_cycle(&[false, true], &[false, true]);
        assert_eq!(g2, vec![(1, 1)]);
        assert!(f.is_connected(0, 0), "first connection undisturbed");
        assert!(f.is_connected(1, 1));
    }

    #[test]
    fn rebroadcast_does_not_steal_held_bus() {
        // The Section IV race: processor 0 holds bus 0; a fresh Y on column 0
        // (say after an erroneous re-broadcast) must pass over row 0 without
        // disturbing it and may serve processor 1.
        let mut f = CrossbarFabric::new(2, 1);
        let _ = f.request_cycle(&[true, false], &[true]);
        assert!(f.is_connected(0, 0));
        let grants = f.request_cycle(&[false, true], &[true]);
        // The connected cell blocks Y (Y' = !latch), so processor 1 cannot
        // double-book the bus.
        assert!(grants.is_empty());
        assert!(f.is_connected(0, 0));
    }

    #[test]
    fn reset_clears_only_the_resetting_row() {
        let mut f = CrossbarFabric::new(2, 2);
        let _ = f.request_cycle(&[true, true], &[true, true]);
        f.reset_cycle(&[true, false]);
        assert!(!f.is_connected(0, 0));
        assert!(f.is_connected(1, 1));
    }

    #[test]
    fn unsatisfied_requests_grant_nothing() {
        let mut f = CrossbarFabric::new(2, 2);
        let grants = f.request_cycle(&[true, true], &[false, false]);
        assert!(grants.is_empty());
    }

    #[test]
    fn gate_delays_match_section_iv() {
        let f = CrossbarFabric::new(16, 32);
        assert_eq!(f.request_cycle_gate_delay(), 4 * 48);
        assert_eq!(f.reset_cycle_gate_delay(), 48);
    }

    #[test]
    fn failed_cell_routes_request_around_it() {
        // Cell (0,0) is stuck open: processor 0's request passes over bus 0
        // and lands on bus 1; the availability of bus 0 survives for row 1.
        let mut f = CrossbarFabric::new(2, 2);
        assert!(f.fail_cell(0, 0));
        assert!(!f.fail_cell(0, 0), "double-fail reports already failed");
        let grants = f.request_cycle(&[true, true], &[true, true]);
        assert_eq!(grants, vec![(0, 1), (1, 0)]);
        assert!(!f.is_connected(0, 0), "failed cell can never latch");
    }

    #[test]
    fn repaired_cell_participates_again() {
        let mut f = CrossbarFabric::new(1, 1);
        f.fail_cell(0, 0);
        assert!(f.request_cycle(&[true], &[true]).is_empty());
        assert!(f.repair_cell(0, 0));
        assert!(!f.repair_cell(0, 0), "double-repair reports healthy");
        assert_eq!(f.request_cycle(&[true], &[true]), vec![(0, 0)]);
    }

    #[test]
    fn fail_open_preserves_existing_connection_until_reset() {
        let mut f = CrossbarFabric::new(2, 1);
        let _ = f.request_cycle(&[true, false], &[true]);
        assert!(f.is_connected(0, 0));
        f.fail_cell(0, 0);
        // While held, the connected (failed) cell still blocks fresh Y.
        assert!(f.request_cycle(&[false, true], &[true]).is_empty());
        // The normal release path still works...
        f.reset_cycle(&[true, false]);
        assert!(!f.is_connected(0, 0));
        // ...but afterward the cell is out of the scheduling fabric.
        assert!(f.request_cycle(&[true, false], &[true]).is_empty());
        let grants = f.request_cycle(&[false, true], &[true]);
        assert_eq!(grants, vec![(1, 0)], "healthy rows still reach the bus");
    }

    /// The unshortcut fabric: a plain row-major Table-I sweep with no row
    /// census, as the fabric was originally written. The shortcut paths must
    /// reproduce it bit for bit.
    struct NaiveFabric {
        m: usize,
        cells: Vec<Cell>,
        failed: Vec<bool>,
    }

    impl NaiveFabric {
        fn new(p: usize, m: usize) -> Self {
            NaiveFabric {
                m,
                cells: vec![Cell::new(); p * m],
                failed: vec![false; p * m],
            }
        }

        fn request_cycle(&mut self, requests: &[bool], available: &[bool]) -> Vec<(usize, usize)> {
            let mut col_y = available.to_vec();
            let mut grants = Vec::new();
            for (i, &request) in requests.iter().enumerate() {
                let mut x = request;
                for (j, y) in col_y.iter_mut().enumerate() {
                    let idx = i * self.m + j;
                    if self.failed[idx] && !self.cells[idx].is_connected() {
                        continue;
                    }
                    let was = self.cells[idx].is_connected();
                    let (x_next, y_next) = self.cells[idx].step(Mode::Request, x, *y);
                    if !was && self.cells[idx].is_connected() {
                        grants.push((i, j));
                    }
                    x = x_next;
                    *y = y_next;
                }
            }
            grants
        }

        fn reset_row(&mut self, i: usize) {
            let mut x = true;
            for j in 0..self.m {
                let (x_next, _) = self.cells[i * self.m + j].step(Mode::Reset, x, false);
                x = x_next;
            }
        }
    }

    #[test]
    fn shortcuts_match_naive_sweep_exactly() {
        // Random interleavings of request cycles, row resets, failures and
        // repairs: the row-census shortcuts must leave the fabric in exactly
        // the state the plain sweep produces, and grant the same pairs in
        // the same order.
        let (p, m) = (5, 4);
        let mut fast = CrossbarFabric::new(p, m);
        let mut naive = NaiveFabric::new(p, m);
        // Small deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..2_000 {
            match next() % 4 {
                0 | 1 => {
                    let requests: Vec<bool> = (0..p).map(|_| next() % 2 == 0).collect();
                    let available: Vec<bool> = (0..m).map(|_| next() % 3 != 0).collect();
                    let g_fast = fast.request_cycle(&requests, &available);
                    let g_naive = naive.request_cycle(&requests, &available);
                    assert_eq!(g_fast, g_naive);
                }
                2 => {
                    let i = next() as usize % p;
                    fast.reset_row(i);
                    naive.reset_row(i);
                }
                _ => {
                    let idx = next() as usize % (p * m);
                    let (i, j) = (idx / m, idx % m);
                    if next() % 2 == 0 {
                        fast.fail_cell(i, j);
                        naive.failed[idx] = true;
                    } else {
                        fast.repair_cell(i, j);
                        naive.failed[idx] = false;
                    }
                }
            }
            for i in 0..p {
                for j in 0..m {
                    assert_eq!(
                        fast.is_connected(i, j),
                        naive.cells[i * m + j].is_connected(),
                        "latch ({i},{j}) diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn skipped_rows_leave_wave_intact() {
        // Processor 1 requests while 0 is idle: the availability wave passes
        // row 0 untouched and serves row 1.
        let mut f = CrossbarFabric::new(3, 2);
        let grants = f.request_cycle(&[false, true, false], &[true, true]);
        assert_eq!(grants, vec![(1, 0)]);
    }
}
