//! The crossbar RSIN as a simulatable [`ResourceNetwork`].
//!
//! `i` independent `j × k` crossbars; every output column is a bus carrying
//! `r` resources. A column advertises availability (`Y_{0,j} = 1`) exactly
//! when its bus is idle **and** at least one of its resources is free; the
//! gate-level fabric of [`CrossbarFabric`] resolves each request cycle.

use crate::bitslice::BitFabric;
use crate::fabric::CrossbarFabric;
use rsin_core::{
    default_resolver_engine, Grant, NetworkCounters, PendingSet, ResolverEngine, ResourceNetwork,
    SystemConfig,
};
use rsin_des::SimRng;

/// How winners are chosen when several processors contend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CrossbarPolicy {
    /// The paper's daisy-chained fabric: deterministic wave, low indices
    /// win (asymmetric).
    #[default]
    FixedPriority,
    /// The POLYP-style circulating token: a uniformly random pending
    /// processor wins each free bus.
    RandomToken,
}

/// The fabric evaluator behind a partition: the bit-sliced compilation
/// (default) or the original cell-by-cell sweep kept as the reference
/// oracle. Both produce identical grants in identical order — the
/// `bitslice` property tests and the DES equivalence suite enforce it.
#[derive(Debug)]
enum Fabric {
    Bit(BitFabric),
    Cells(CrossbarFabric),
}

impl Fabric {
    fn new(engine: ResolverEngine, p: usize, m: usize) -> Self {
        match engine {
            ResolverEngine::Bitslice => Fabric::Bit(BitFabric::new(p, m)),
            ResolverEngine::Reference => Fabric::Cells(CrossbarFabric::new(p, m)),
        }
    }

    fn engine(&self) -> ResolverEngine {
        match self {
            Fabric::Bit(_) => ResolverEngine::Bitslice,
            Fabric::Cells(_) => ResolverEngine::Reference,
        }
    }

    fn reset_row(&mut self, i: usize) {
        match self {
            Fabric::Bit(f) => f.reset_row(i),
            Fabric::Cells(f) => f.reset_row(i),
        }
    }

    fn is_failed(&self, i: usize, j: usize) -> bool {
        match self {
            Fabric::Bit(f) => f.is_failed(i, j),
            Fabric::Cells(f) => f.is_failed(i, j),
        }
    }

    fn fail_cell(&mut self, i: usize, j: usize) -> bool {
        match self {
            Fabric::Bit(f) => f.fail_cell(i, j),
            Fabric::Cells(f) => f.fail_cell(i, j),
        }
    }

    fn repair_cell(&mut self, i: usize, j: usize) -> bool {
        match self {
            Fabric::Bit(f) => f.repair_cell(i, j),
            Fabric::Cells(f) => f.repair_cell(i, j),
        }
    }

    fn request_cycle_gate_delay(&self) -> u32 {
        match self {
            Fabric::Bit(f) => f.request_cycle_gate_delay(),
            Fabric::Cells(f) => f.request_cycle_gate_delay(),
        }
    }
}

#[derive(Debug)]
struct Partition {
    fabric: Fabric,
    /// Which local processor holds each bus during transmission.
    held_by: Vec<Option<usize>>,
    busy_resources: Vec<u32>,
    /// Whether each output column's resource pool is online.
    pool_up: Vec<bool>,
    /// Packed image of the availability predicate, maintained incrementally:
    /// bit `j` set iff `pool_up[j] && held_by[j].is_none() &&
    /// busy_resources[j] < r`. Lets the bit-sliced wave start from a
    /// one-word copy instead of re-deriving and re-packing the predicate
    /// every cycle. The cell-by-cell reference path deliberately keeps
    /// re-deriving it from the scalar fields, so an incremental-update bug
    /// here shows up as an engine divergence in the equivalence tests.
    avail: Vec<u64>,
}

impl Partition {
    /// Re-evaluates the availability bit of column `j` after any of its
    /// inputs changed.
    fn refresh_avail(&mut self, j: usize, resources_per_bus: u32) {
        if self.pool_up[j]
            && self.held_by[j].is_none()
            && self.busy_resources[j] < resources_per_bus
        {
            rsin_bitslice::set_bit(&mut self.avail, j);
        } else {
            rsin_bitslice::clear_bit(&mut self.avail, j);
        }
    }
}

/// A partitioned distributed-scheduling crossbar RSIN.
///
/// # Examples
///
/// ```
/// use rsin_core::{ResourceNetwork, SystemConfig};
/// use rsin_xbar::{CrossbarNetwork, CrossbarPolicy};
///
/// let cfg: SystemConfig = "16/1x16x32 XBAR/1".parse()?;
/// let net = CrossbarNetwork::from_config(&cfg, CrossbarPolicy::FixedPriority)?;
/// assert_eq!(net.processors(), 16);
/// assert_eq!(net.total_resources(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CrossbarNetwork {
    inputs: usize,
    outputs: usize,
    resources_per_bus: u32,
    policy: CrossbarPolicy,
    partitions: Vec<Partition>,
    counters: NetworkCounters,
    scratch: CycleScratch,
}

/// Reusable per-cycle buffers (the partition being swept), so request
/// cycles in steady state allocate only the returned grant vector.
#[derive(Debug, Default)]
struct CycleScratch {
    requests: Vec<bool>,
    available: Vec<bool>,
    req_words: Vec<u64>,
    avail_words: Vec<u64>,
    procs: Vec<usize>,
    buses: Vec<usize>,
    local: Vec<(usize, usize)>,
}

/// Error building a [`CrossbarNetwork`] from a config of the wrong kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrongKindError {
    /// The kind found in the configuration.
    pub found: rsin_core::NetworkKind,
}

impl std::fmt::Display for WrongKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected an XBAR configuration, got {}", self.found)
    }
}

impl std::error::Error for WrongKindError {}

impl CrossbarNetwork {
    /// Builds the network described by `config` (kind must be
    /// [`NetworkKind::Crossbar`](rsin_core::NetworkKind::Crossbar)).
    ///
    /// # Errors
    ///
    /// [`WrongKindError`] when the configuration names another network type.
    pub fn from_config(
        config: &SystemConfig,
        policy: CrossbarPolicy,
    ) -> Result<Self, WrongKindError> {
        if config.kind() != rsin_core::NetworkKind::Crossbar {
            return Err(WrongKindError {
                found: config.kind(),
            });
        }
        Ok(CrossbarNetwork::new(
            config.networks() as usize,
            config.inputs() as usize,
            config.outputs() as usize,
            config.resources_per_port(),
            policy,
        ))
    }

    /// Builds `partitions` independent `inputs × outputs` crossbars with
    /// `resources_per_bus` resources on every output column, using the
    /// process-default resolver engine.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn new(
        partitions: usize,
        inputs: usize,
        outputs: usize,
        resources_per_bus: u32,
        policy: CrossbarPolicy,
    ) -> Self {
        CrossbarNetwork::new_with_engine(
            partitions,
            inputs,
            outputs,
            resources_per_bus,
            policy,
            default_resolver_engine(),
        )
    }

    /// [`CrossbarNetwork::new`] with an explicit fabric evaluator — the
    /// bit-sliced compilation or the cell-by-cell reference oracle.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn new_with_engine(
        partitions: usize,
        inputs: usize,
        outputs: usize,
        resources_per_bus: u32,
        policy: CrossbarPolicy,
        engine: ResolverEngine,
    ) -> Self {
        assert!(
            partitions > 0 && inputs > 0 && outputs > 0,
            "counts must be positive"
        );
        assert!(resources_per_bus > 0, "resources per bus must be positive");
        CrossbarNetwork {
            inputs,
            outputs,
            resources_per_bus,
            policy,
            partitions: (0..partitions)
                .map(|_| {
                    let mut avail = vec![u64::MAX; rsin_bitslice::words_for(outputs)];
                    if let Some(last) = avail.last_mut() {
                        *last &= rsin_bitslice::tail_mask(outputs);
                    }
                    Partition {
                        fabric: Fabric::new(engine, inputs, outputs),
                        held_by: vec![None; outputs],
                        busy_resources: vec![0; outputs],
                        pool_up: vec![true; outputs],
                        avail,
                    }
                })
                .collect(),
            counters: NetworkCounters::default(),
            scratch: CycleScratch::default(),
        }
    }

    /// The scheduling policy in force.
    #[must_use]
    pub fn policy(&self) -> CrossbarPolicy {
        self.policy
    }

    /// The fabric evaluator in force.
    #[must_use]
    pub fn resolver_engine(&self) -> ResolverEngine {
        self.partitions[0].fabric.engine()
    }

    /// Worst-case request-cycle cost of one partition in gate delays,
    /// `4(j + k)` (Section IV).
    #[must_use]
    pub fn request_cycle_gate_delay(&self) -> u32 {
        self.partitions[0].fabric.request_cycle_gate_delay()
    }

    /// One partition's request cycle. `pslice` and `req_words` are the
    /// partition's pending processors in unpacked and packed form — the
    /// caller supplies both views of the *same* set. Appends grants in
    /// global coordinates and updates the attempt/rejection counters.
    fn partition_cycle(
        &mut self,
        pi: usize,
        pslice: &[bool],
        req_words: &[u64],
        rng: &mut SimRng,
        grants: &mut Vec<Grant>,
    ) {
        let n_pending = rsin_bitslice::count_ones(req_words) as u64;
        if n_pending == 0 {
            return;
        }
        self.counters.attempts += n_pending;
        let base = pi * self.inputs;
        let resources_per_bus = self.resources_per_bus;
        let CycleScratch {
            requests,
            available,
            avail_words,
            procs,
            buses,
            local,
            ..
        } = &mut self.scratch;
        let part = &mut self.partitions[pi];
        match self.policy {
            CrossbarPolicy::FixedPriority => match &mut part.fabric {
                Fabric::Bit(f) => {
                    // Fast path: the packed availability image is kept
                    // current by `refresh_avail`, so the wave starts
                    // from a word copy instead of a predicate sweep —
                    // and since a held bus is never advertised as
                    // available, the wave may skip idle latched rows.
                    if n_pending == 1 {
                        // Lone requester: no later row observes the
                        // availability wave, so `avail` is read in
                        // place — no copy, no masking pass.
                        let (rw, word) = req_words
                            .iter()
                            .enumerate()
                            .find(|&(_, &w)| w != 0)
                            .expect("n_pending > 0");
                        let li = rw * 64 + word.trailing_zeros() as usize;
                        local.clear();
                        local.extend(
                            f.request_single_assuming_held(li, &part.avail)
                                .map(|lj| (li, lj)),
                        );
                    } else {
                        avail_words.clear();
                        avail_words.extend_from_slice(&part.avail);
                        f.request_cycle_packed_assuming_held(req_words, avail_words, local);
                    }
                }
                Fabric::Cells(f) => {
                    // Reference oracle: re-derive the predicate from
                    // the scalar fields so an incremental-update bug in
                    // `avail` diverges from this path and is caught.
                    requests.clear();
                    requests.extend_from_slice(pslice);
                    available.clear();
                    available.extend((0..self.outputs).map(|j| {
                        part.pool_up[j]
                            && part.held_by[j].is_none()
                            && part.busy_resources[j] < resources_per_bus
                    }));
                    f.request_cycle_into(requests, available, local);
                }
            },
            CrossbarPolicy::RandomToken => {
                // Token scheme: each free bus captures a random pending
                // processor; equivalently match shuffled lists. A pair
                // that lands on a failed crosspoint cannot connect and
                // is rejected for this cycle. Candidate lists are built
                // in ascending order from the scalar predicate, so RNG
                // consumption is identical under both engines.
                procs.clear();
                procs.extend((0..self.inputs).filter(|&l| pslice[l]));
                buses.clear();
                buses.extend((0..self.outputs).filter(|&j| {
                    part.pool_up[j]
                        && part.held_by[j].is_none()
                        && part.busy_resources[j] < resources_per_bus
                }));
                rng.shuffle(procs);
                rng.shuffle(buses);
                local.clear();
                local.extend(
                    procs
                        .iter()
                        .zip(buses.iter())
                        .map(|(&li, &lj)| (li, lj))
                        .filter(|&(li, lj)| !part.fabric.is_failed(li, lj)),
                );
            }
        }
        self.counters.rejections += n_pending - local.len() as u64;
        for &(li, lj) in local.iter() {
            part.held_by[lj] = Some(li);
            part.refresh_avail(lj, resources_per_bus);
            grants.push(Grant {
                processor: base + li,
                port: pi * self.outputs + lj,
            });
        }
    }
}

impl ResourceNetwork for CrossbarNetwork {
    fn processors(&self) -> usize {
        self.partitions.len() * self.inputs
    }

    fn total_resources(&self) -> usize {
        self.partitions.len() * self.outputs * self.resources_per_bus as usize
    }

    fn request_cycle(&mut self, pending: &[bool], rng: &mut SimRng) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.request_cycle_into(pending, rng, &mut grants);
        grants
    }

    fn request_cycle_into(&mut self, pending: &[bool], rng: &mut SimRng, grants: &mut Vec<Grant>) {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        grants.clear();
        // The scratch word buffer is moved out for the sweep so each
        // partition call can borrow the rest of `self` mutably.
        let mut req_words = std::mem::take(&mut self.scratch.req_words);
        for pi in 0..self.partitions.len() {
            let base = pi * self.inputs;
            let pslice = &pending[base..base + self.inputs];
            rsin_bitslice::pack_bools(pslice, &mut req_words);
            self.partition_cycle(pi, pslice, &req_words, rng, grants);
        }
        self.scratch.req_words = req_words;
    }

    fn request_cycle_pending(
        &mut self,
        pending: PendingSet<'_>,
        rng: &mut SimRng,
        grants: &mut Vec<Grant>,
    ) {
        if self.partitions.len() == 1 {
            // Single-partition crossbar: the partition's bits are the global
            // bits, so the simulator's packed words feed the wave directly —
            // no per-epoch repack at all.
            assert_eq!(
                pending.bools.len(),
                self.processors(),
                "pending vector size"
            );
            grants.clear();
            self.partition_cycle(0, pending.bools, pending.words, rng, grants);
        } else {
            self.request_cycle_into(pending.bools, rng, grants);
        }
    }

    fn end_transmission(&mut self, grant: Grant) {
        let pi = grant.port / self.outputs;
        let lj = grant.port % self.outputs;
        let part = &mut self.partitions[pi];
        let holder = part.held_by[lj].take().expect("bus was held");
        debug_assert_eq!(holder + pi * self.inputs, grant.processor);
        if self.policy == CrossbarPolicy::FixedPriority {
            // Break the circuit in the fabric: the holder's reset wave.
            part.fabric.reset_row(holder);
        }
        part.busy_resources[lj] += 1;
        debug_assert!(part.busy_resources[lj] <= self.resources_per_bus);
        part.refresh_avail(lj, self.resources_per_bus);
    }

    fn end_service(&mut self, grant: Grant) {
        let pi = grant.port / self.outputs;
        let lj = grant.port % self.outputs;
        let part = &mut self.partitions[pi];
        if !part.pool_up[lj] {
            // The pool failed and was cleared while this task was in
            // flight; nothing is held any more.
            return;
        }
        debug_assert!(part.busy_resources[lj] > 0, "no busy resource to free");
        part.busy_resources[lj] -= 1;
        part.refresh_avail(lj, self.resources_per_bus);
    }

    fn fail_resource(&mut self, port: usize) -> bool {
        let pi = port / self.outputs;
        let lj = port % self.outputs;
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        if !part.pool_up[lj] {
            return false;
        }
        part.pool_up[lj] = false;
        // Per the trait contract: release every circuit and busy count at
        // this port internally; the simulator requeues the casualties.
        if let Some(holder) = part.held_by[lj].take() {
            if self.policy == CrossbarPolicy::FixedPriority {
                part.fabric.reset_row(holder);
            }
        }
        part.busy_resources[lj] = 0;
        part.refresh_avail(lj, self.resources_per_bus);
        self.counters.resource_failures += 1;
        true
    }

    fn repair_resource(&mut self, port: usize) -> bool {
        let pi = port / self.outputs;
        let lj = port % self.outputs;
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        if part.pool_up[lj] {
            return false;
        }
        part.pool_up[lj] = true;
        part.refresh_avail(lj, self.resources_per_bus);
        self.counters.resource_repairs += 1;
        true
    }

    fn fail_element(&mut self, element: usize) -> bool {
        // Element pi·(j·k) + i·k + j = crosspoint cell (i, j) of partition
        // pi. The cell sticks open (fail-open: an established circuit
        // keeps behaving as connected until its normal reset).
        let cells = self.inputs * self.outputs;
        let (pi, rem) = (element / cells, element % cells);
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        let accepted = part
            .fabric
            .fail_cell(rem / self.outputs, rem % self.outputs);
        if accepted {
            self.counters.element_failures += 1;
        }
        accepted
    }

    fn repair_element(&mut self, element: usize) -> bool {
        let cells = self.inputs * self.outputs;
        let (pi, rem) = (element / cells, element % cells);
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        let accepted = part
            .fabric
            .repair_cell(rem / self.outputs, rem % self.outputs);
        if accepted {
            self.counters.element_repairs += 1;
        }
        accepted
    }

    fn fault_elements(&self) -> usize {
        self.partitions.len() * self.inputs * self.outputs
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn label(&self) -> &'static str {
        "XBAR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(n: usize, set: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in set {
            v[i] = true;
        }
        v
    }

    fn pack(bools: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; bools.len().div_ceil(64)];
        for (i, &b) in bools.iter().enumerate() {
            if b {
                words[i >> 6] |= 1 << (i & 63);
            }
        }
        words
    }

    /// The packed entry point must be indistinguishable from the unpacked
    /// one: same grants in the same order, same counters, same RNG
    /// consumption — across policies and across the single-partition fast
    /// path vs the multi-partition fallback.
    #[test]
    fn packed_pending_entry_matches_unpacked() {
        for policy in [CrossbarPolicy::FixedPriority, CrossbarPolicy::RandomToken] {
            for parts in [1usize, 2] {
                let p = parts * 8;
                let mut by_bools = CrossbarNetwork::new(parts, 8, 4, 2, policy);
                let mut by_words = CrossbarNetwork::new(parts, 8, 4, 2, policy);
                let mut rng_a = SimRng::new(0xfeed);
                let mut rng_b = SimRng::new(0xfeed);
                let mut pick = SimRng::new(7);
                let mut ga = Vec::new();
                let mut gb = Vec::new();
                let mut held: Vec<Grant> = Vec::new();
                for round in 0..200 {
                    let mut req: Vec<bool> = (0..p).map(|_| pick.chance(0.4)).collect();
                    // A processor holds at most one circuit (assumption (f)):
                    // never re-request one whose grant is still outstanding.
                    for g in &held {
                        req[g.processor] = false;
                    }
                    by_bools.request_cycle_into(&req, &mut rng_a, &mut ga);
                    by_words.request_cycle_pending(
                        PendingSet {
                            bools: &req,
                            words: &pack(&req),
                        },
                        &mut rng_b,
                        &mut gb,
                    );
                    assert_eq!(ga, gb, "round {round} grants diverged");
                    held.extend(ga.iter().copied());
                    // Retire a few circuits so availability keeps churning.
                    while held.len() > 3 {
                        let g = held.remove(0);
                        by_bools.end_transmission(g);
                        by_words.end_transmission(g);
                        by_bools.end_service(g);
                        by_words.end_service(g);
                    }
                }
                assert_eq!(by_bools.take_counters(), by_words.take_counters());
                assert_eq!(
                    rng_a.next_u64(),
                    rng_b.next_u64(),
                    "RNG consumption diverged"
                );
            }
        }
    }

    #[test]
    fn grants_are_maximal_matchings() {
        let mut net = CrossbarNetwork::new(1, 4, 2, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let grants = net.request_cycle(&pending(4, &[0, 1, 2, 3]), &mut rng);
        assert_eq!(grants.len(), 2, "two buses, two grants");
    }

    #[test]
    fn bus_held_during_transmission_blocks_its_resources() {
        let mut net = CrossbarNetwork::new(1, 2, 1, 2, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        assert_eq!(g.len(), 1);
        // Bus held: even with a free resource behind it, no second grant.
        assert!(net.request_cycle(&pending(2, &[1]), &mut rng).is_empty());
        net.end_transmission(g[0]);
        // Bus released, one resource busy, one free: grant flows.
        assert_eq!(net.request_cycle(&pending(2, &[1]), &mut rng).len(), 1);
    }

    #[test]
    fn full_port_blocks_until_service_ends() {
        let mut net = CrossbarNetwork::new(1, 2, 1, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        net.end_transmission(g[0]);
        assert!(net.request_cycle(&pending(2, &[1]), &mut rng).is_empty());
        net.end_service(g[0]);
        assert_eq!(net.request_cycle(&pending(2, &[1]), &mut rng).len(), 1);
    }

    #[test]
    fn partitions_are_independent() {
        let mut net = CrossbarNetwork::new(2, 2, 2, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(4, &[0, 2]), &mut rng);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].port / 2, 0, "first grant in partition 0");
        assert_eq!(g[1].port / 2, 1, "second grant in partition 1");
    }

    #[test]
    fn random_token_covers_all_processors() {
        let mut net = CrossbarNetwork::new(1, 3, 1, 1, CrossbarPolicy::RandomToken);
        let mut rng = SimRng::new(5);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let g = net.request_cycle(&pending(3, &[0, 1, 2]), &mut rng);
            assert_eq!(g.len(), 1);
            seen[g[0].processor] = true;
            net.end_transmission(g[0]);
            net.end_service(g[0]);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fixed_priority_is_asymmetric() {
        let mut net = CrossbarNetwork::new(1, 3, 1, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(5);
        for _ in 0..10 {
            let g = net.request_cycle(&pending(3, &[0, 1, 2]), &mut rng);
            assert_eq!(g[0].processor, 0, "low index always wins");
            net.end_transmission(g[0]);
            net.end_service(g[0]);
        }
    }

    #[test]
    fn from_config_checks_kind() {
        let cfg: SystemConfig = "16/16x1x1 SBUS/2".parse().expect("valid");
        assert!(CrossbarNetwork::from_config(&cfg, CrossbarPolicy::FixedPriority).is_err());
        let cfg: SystemConfig = "16/4x4x4 XBAR/2".parse().expect("valid");
        let net =
            CrossbarNetwork::from_config(&cfg, CrossbarPolicy::FixedPriority).expect("xbar config");
        assert_eq!(net.processors(), 16);
        assert_eq!(net.total_resources(), 32);
        assert_eq!(net.request_cycle_gate_delay(), 4 * 8);
    }

    #[test]
    fn failed_pool_advertises_nothing_until_repair() {
        let mut net = CrossbarNetwork::new(1, 2, 1, 2, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        assert_eq!(g.len(), 1);
        // Pool dies mid-transmission: the held bus is released internally.
        assert!(net.fail_resource(0));
        assert!(!net.fail_resource(0), "already down");
        assert!(net.request_cycle(&pending(2, &[1]), &mut rng).is_empty());
        assert!(net.repair_resource(0));
        // Full capacity restored: bus free, both resources free.
        assert_eq!(net.request_cycle(&pending(2, &[1]), &mut rng).len(), 1);
        let c = net.take_counters();
        assert_eq!(c.resource_failures, 1);
        assert_eq!(c.resource_repairs, 1);
    }

    #[test]
    fn failed_cell_masks_crosspoint_under_both_policies() {
        for policy in [CrossbarPolicy::FixedPriority, CrossbarPolicy::RandomToken] {
            let mut net = CrossbarNetwork::new(1, 2, 1, 1, policy);
            let mut rng = SimRng::new(3);
            // Element 0 = cell (0, 0): processor 0 can no longer reach the
            // only bus, but processor 1 still can.
            assert!(net.fail_element(0));
            assert!(!net.fail_element(0), "already failed");
            assert!(net.request_cycle(&pending(2, &[0]), &mut rng).is_empty());
            let g = net.request_cycle(&pending(2, &[1]), &mut rng);
            assert_eq!(g.len(), 1, "{policy:?}");
            assert_eq!(g[0].processor, 1);
            net.end_transmission(g[0]);
            net.end_service(g[0]);
            assert!(net.repair_element(0));
            assert_eq!(net.request_cycle(&pending(2, &[0]), &mut rng).len(), 1);
        }
    }

    #[test]
    fn fault_element_space_covers_every_cell() {
        let net = CrossbarNetwork::new(2, 4, 3, 1, CrossbarPolicy::FixedPriority);
        assert_eq!(net.fault_elements(), 2 * 4 * 3);
        let mut net = net;
        assert!(!net.fail_element(24), "out of range is rejected");
    }

    /// Bit-sliced vs reference network, driven through the full
    /// `ResourceNetwork` surface with identical RNG streams: grants,
    /// counters, and fault bookkeeping must match exactly under both
    /// policies, including degraded cell masks and pool failures.
    #[test]
    fn engines_agree_through_the_network_surface() {
        for policy in [CrossbarPolicy::FixedPriority, CrossbarPolicy::RandomToken] {
            let (parts, p, m, r) = (2usize, 3usize, 5usize, 2u32);
            let procs = parts * p;
            let mut bit =
                CrossbarNetwork::new_with_engine(parts, p, m, r, policy, ResolverEngine::Bitslice);
            let mut cells =
                CrossbarNetwork::new_with_engine(parts, p, m, r, policy, ResolverEngine::Reference);
            assert_eq!(bit.resolver_engine(), ResolverEngine::Bitslice);
            assert_eq!(cells.resolver_engine(), ResolverEngine::Reference);
            let mut rng_a = SimRng::new(97);
            let mut rng_b = SimRng::new(97);
            let mut state = 0xdead_beef_u64 ^ policy as u64;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u32
            };
            let mut live: Vec<Grant> = Vec::new();
            for _ in 0..1_500 {
                match next() % 8 {
                    0..=3 => {
                        let mut busy = vec![false; procs];
                        for g in &live {
                            busy[g.processor] = true;
                        }
                        let pending: Vec<bool> =
                            (0..procs).map(|i| !busy[i] && next() % 2 == 0).collect();
                        let ga = bit.request_cycle(&pending, &mut rng_a);
                        let gb = cells.request_cycle(&pending, &mut rng_b);
                        assert_eq!(ga, gb, "{policy:?}");
                        live.extend(ga);
                    }
                    4 => {
                        if !live.is_empty() {
                            let g = live.swap_remove(next() as usize % live.len());
                            bit.end_transmission(g);
                            cells.end_transmission(g);
                            bit.end_service(g);
                            cells.end_service(g);
                        }
                    }
                    5 => {
                        let e = next() as usize % bit.fault_elements();
                        assert_eq!(bit.fail_element(e), cells.fail_element(e));
                    }
                    6 => {
                        let e = next() as usize % bit.fault_elements();
                        assert_eq!(bit.repair_element(e), cells.repair_element(e));
                    }
                    _ => {
                        let port = next() as usize % (parts * m);
                        if next() % 2 == 0 {
                            assert_eq!(bit.fail_resource(port), cells.fail_resource(port));
                            // The pool clears its held circuit internally;
                            // drop the casualty from our live list too.
                            live.retain(|g| g.port != port);
                        } else {
                            assert_eq!(bit.repair_resource(port), cells.repair_resource(port));
                        }
                    }
                }
            }
            assert_eq!(bit.take_counters(), cells.take_counters(), "{policy:?}");
        }
    }

    #[test]
    fn counters_accumulate_and_drain() {
        let mut net = CrossbarNetwork::new(1, 3, 1, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(2);
        let _ = net.request_cycle(&pending(3, &[0, 1, 2]), &mut rng);
        let c = net.take_counters();
        assert_eq!(c.attempts, 3);
        assert_eq!(c.rejections, 2);
        assert_eq!(net.take_counters(), NetworkCounters::default());
    }
}
